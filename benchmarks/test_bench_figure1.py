"""Regenerates Figure 1 (pin/performance/bandwidth trends) + §4.3."""

from repro.experiments import figure1

from conftest import emit, run_once


def test_bench_figure1(benchmark):
    result = run_once(benchmark, figure1.run)
    emit("Figure 1: physical microprocessor trends", figure1.render(result))
    assert 12 < result.pin_fit.percent_per_year < 20
    assert 2000 <= result.extrapolation.pins_2006 <= 3000
