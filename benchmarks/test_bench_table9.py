"""Regenerates Tables 9/10 (per-factor inefficiency decomposition)."""

from repro.experiments import table9

from conftest import emit, run_once

MAX_REFS = 150_000


def test_bench_table9(benchmark):
    result = run_once(benchmark, table9.run, max_refs=MAX_REFS)
    emit("Table 9: inefficiency gap per factor", table9.render(result))
    emit(
        "Table 10: experiment pairs",
        "\n".join(
            f"  {factor:<16s} {exp1}  vs  {exp2}"
            for factor, (exp1, exp2) in table9.TABLE10.items()
        ),
    )
    assert set(result.factors) == set(table9.CACHE_SIZE_FOR)
