"""Regenerates Table 7 (traffic ratios, 32B-block direct-mapped caches)."""

from repro.experiments import table7

from conftest import emit, run_once

#: References per benchmark; raise for a higher-fidelity (slower) run.
MAX_REFS = 300_000


def test_bench_table7(benchmark):
    result = run_once(benchmark, table7.run, max_refs=MAX_REFS)
    emit("Table 7: traffic ratios", table7.render(result))
    # Headline: reasonably-sized caches cut traffic to the same order as
    # the paper's 0.51 mean.
    assert 0.3 < result.mean_ratio_64kb_up < 1.3
