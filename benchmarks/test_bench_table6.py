"""Regenerates Table 6 (f_L vs f_B, experiment A vs F)."""

from repro.experiments import table6

from conftest import emit, run_once

MAX_REFS = 12_000


def test_bench_table6(benchmark):
    result = run_once(benchmark, table6.run, max_refs=MAX_REFS)
    emit("Table 6: latency vs bandwidth stalls", table6.render(result))
    # The paper's reversal: bandwidth overtakes latency on machine F for
    # most non-cache-bound benchmarks.
    reversed_count = sum(1 for row in result.rows if row.f_b_f > row.f_l_f)
    assert reversed_count >= len(result.rows) // 2
