"""Regenerates Table 3 (benchmarks, inputs, paper vs repro scale)."""

from repro.experiments import table3

from conftest import emit, run_once


def test_bench_table3(benchmark):
    result = run_once(benchmark, table3.run)
    emit("Table 3: benchmark traces", table3.render(result))
    assert len(result.rows) == 14
