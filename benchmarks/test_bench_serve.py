"""Benchmark: the simulation service under closed-loop client load.

Drives ``scripts/load_serve.py``'s fleet against a real in-process
server — sockets, admission queue, scheduler, coalescer all live — and
reports end-to-end latency percentiles plus the coalescing hit rate.
The committed ``BENCH_serve.json`` baseline is regenerated with::

    PYTHONPATH=src python scripts/load_serve.py
"""

import sys
import threading
from pathlib import Path

from conftest import emit, run_once

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "scripts"))

from load_serve import render, run_load  # noqa: E402

CLIENTS = 8
REQUESTS = 3
DISTINCT = 4


def test_bench_serve_closed_loop(benchmark):
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, SimulationServer

    server = SimulationServer(ServeConfig(port=0, queue_depth=256))
    thread = threading.Thread(
        target=server.run, kwargs={"install_signals": False}, daemon=True
    )
    thread.start()
    assert server.ready.wait(10)
    host, port = server.address
    try:
        summary = run_once(
            benchmark,
            run_load,
            lambda: ServeClient(f"http://{host}:{port}", timeout=120.0),
            clients=CLIENTS,
            requests=REQUESTS,
            distinct=DISTINCT,
            max_refs=20_000,
        )
    finally:
        server.shutdown()
        thread.join(timeout=30)

    emit("Simulation service: closed-loop load", render(summary))
    assert summary["completed"] == CLIENTS * REQUESTS
    assert summary["latency_s"]["p50"] <= summary["latency_s"]["p99"]
    # The fleet only ever issues DISTINCT unique requests, so the
    # coalescer must have absorbed the rest of the submissions.
    assert summary["coalescing"]["submitted"] <= DISTINCT * REQUESTS + DISTINCT
    assert summary["coalescing"]["hit_rate"] > 0.0
