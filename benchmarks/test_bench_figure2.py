"""Regenerates Figure 2 (processing vs bandwidth balance schedules)."""

from repro.experiments import figure2

from conftest import emit, run_once


def test_bench_figure2(benchmark):
    result = run_once(benchmark, figure2.run)
    emit("Figure 2: processing vs bandwidth balance", figure2.render(result))
    assert result.balancing_growth["TMM"] > 1.9
