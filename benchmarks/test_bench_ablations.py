"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation toggles one mechanism and reports its effect, quantifying
the paper's qualitative arguments:

* MTC bypass on/off (Section 5.2's fourth MTC property);
* write-validate vs write-allocate in the MTC (Table 10, experiment V);
* tagged prefetch on/off (experiments D vs E);
* MSHR depth (blocking vs lockup-free, experiments A vs C);
* in-order vs out-of-order issue (experiments C vs D).
"""

from repro.cpu import experiment
from repro.cpu.machine import decompose_experiment
from repro.mem.cache import AllocatePolicy
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.workloads import get_workload

from conftest import emit, run_once

TRAFFIC_REFS = 150_000
TIMING_REFS = 10_000


def test_bench_ablation_mtc_bypass(benchmark):
    trace = get_workload("Compress").generate(seed=0, max_refs=TRAFFIC_REFS)

    def measure():
        with_bypass = MinimalTrafficCache(
            MTCConfig(size_bytes=16 * 1024, bypass=True)
        ).simulate(trace)
        without = MinimalTrafficCache(
            MTCConfig(size_bytes=16 * 1024, bypass=False)
        ).simulate(trace)
        return with_bypass.total_traffic_bytes, without.total_traffic_bytes

    with_bypass, without = run_once(benchmark, measure)
    emit(
        "Ablation: MTC bypass",
        f"with bypass:    {with_bypass / 1024:.0f} KB\n"
        f"without bypass: {without / 1024:.0f} KB\n"
        f"bypass saves {(1 - with_bypass / without):.1%} of minimal traffic",
    )
    assert with_bypass <= without


def test_bench_ablation_write_validate(benchmark):
    trace = get_workload("Eqntott").generate(seed=0, max_refs=TRAFFIC_REFS)

    def measure():
        wv = MinimalTrafficCache(
            MTCConfig(size_bytes=16 * 1024, allocate=AllocatePolicy.WRITE_VALIDATE)
        ).simulate(trace)
        wa = MinimalTrafficCache(
            MTCConfig(size_bytes=16 * 1024, allocate=AllocatePolicy.WRITE_ALLOCATE)
        ).simulate(trace)
        return wv.total_traffic_bytes, wa.total_traffic_bytes

    wv, wa = run_once(benchmark, measure)
    emit(
        "Ablation: write-validate vs write-allocate (Eqntott MTC)",
        f"write-validate: {wv / 1024:.0f} KB\n"
        f"write-allocate: {wa / 1024:.0f} KB ({wa / wv:.2f}x more)",
    )
    assert wv <= wa


def test_bench_ablation_prefetch(benchmark):
    workload = get_workload("Swm")

    def measure():
        d = decompose_experiment(workload, experiment("D"), max_refs=TIMING_REFS)
        e = decompose_experiment(workload, experiment("E"), max_refs=TIMING_REFS)
        return d, e

    d, e = run_once(benchmark, measure)
    emit(
        "Ablation: tagged prefetch (experiment D vs E, Swm)",
        f"D (no prefetch): f_L={d.decomposition.f_l:.2f} "
        f"f_B={d.decomposition.f_b:.2f} "
        f"L1/L2 traffic={d.full_memory_stats.l1_l2_traffic_bytes / 1024:.0f} KB\n"
        f"E (prefetch):    f_L={e.decomposition.f_l:.2f} "
        f"f_B={e.decomposition.f_b:.2f} "
        f"L1/L2 traffic={e.full_memory_stats.l1_l2_traffic_bytes / 1024:.0f} KB",
    )
    # Prefetch trades latency stalls for traffic (and bandwidth stalls).
    assert (
        e.full_memory_stats.l1_l2_traffic_bytes
        >= d.full_memory_stats.l1_l2_traffic_bytes
    )


def test_bench_ablation_mshr_depth(benchmark):
    workload = get_workload("Su2cor")

    def measure():
        blocking = decompose_experiment(
            workload, experiment("A"), max_refs=TIMING_REFS
        )
        lockup_free = decompose_experiment(
            workload, experiment("C"), max_refs=TIMING_REFS
        )
        return blocking, lockup_free

    blocking, lockup_free = run_once(benchmark, measure)
    emit(
        "Ablation: blocking vs lockup-free caches (A vs C, Su2cor)",
        f"A (1 MSHR):  T={blocking.decomposition.cycles_full:,} "
        f"f_L={blocking.decomposition.f_l:.2f} "
        f"f_B={blocking.decomposition.f_b:.2f}\n"
        f"C (8 MSHRs): T={lockup_free.decomposition.cycles_full:,} "
        f"f_L={lockup_free.decomposition.f_l:.2f} "
        f"f_B={lockup_free.decomposition.f_b:.2f}",
    )
    assert (
        lockup_free.decomposition.cycles_full
        <= blocking.decomposition.cycles_full * 1.05
    )


def test_bench_ablation_out_of_order(benchmark):
    workload = get_workload("Tomcatv")

    def measure():
        in_order = decompose_experiment(
            workload, experiment("C"), max_refs=TIMING_REFS
        )
        out_of_order = decompose_experiment(
            workload, experiment("D"), max_refs=TIMING_REFS
        )
        return in_order, out_of_order

    in_order, out_of_order = run_once(benchmark, measure)
    emit(
        "Ablation: in-order vs out-of-order issue (C vs D, Tomcatv)",
        f"C (in-order): T={in_order.decomposition.cycles_full:,} "
        f"IPC={in_order.full.ipc:.2f}\n"
        f"D (RUU):      T={out_of_order.decomposition.cycles_full:,} "
        f"IPC={out_of_order.full.ipc:.2f}",
    )
    assert out_of_order.full.ipc > in_order.full.ipc
