"""Regenerates Table 2 (application growth rates, analytic + measured)."""

from repro.experiments import table2

from conftest import emit, run_once


def test_bench_table2(benchmark):
    result = run_once(benchmark, table2.run)
    emit("Table 2: application growth rates", table2.render(result))
    assert len(result.rows) == 4
