"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, prints
the same rows/series the paper reports (run ``pytest benchmarks/
--benchmark-only -s`` to see them), and records the wall-clock cost via
pytest-benchmark. Heavy experiments run a single round.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark.

    When the session runs with ``--jobs``/``--exec-cache`` (root
    conftest), prints the execution-layer session stats after the round
    so a warm-cache benchmark is distinguishable from a cold one.
    """
    result = benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    from repro.exec import EXEC

    if EXEC.jobs != 1 or EXEC.cache is not None:
        stats = (
            f"cache {EXEC.cache.hits} hits / {EXEC.cache.misses} misses"
            if EXEC.cache is not None
            else "cache off"
        )
        print(f"[exec: jobs={EXEC.jobs}, {stats}]")
    return result


def emit(title: str, text: str) -> None:
    """Print a regenerated artefact in a recognisable block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{text}\n")
