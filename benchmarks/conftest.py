"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, prints
the same rows/series the paper reports (run ``pytest benchmarks/
--benchmark-only -s`` to see them), and records the wall-clock cost via
pytest-benchmark. Heavy experiments run a single round.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, text: str) -> None:
    """Print a regenerated artefact in a recognisable block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{text}\n")
