"""Benches for the Section 5.3/6 extension mechanisms.

Each prints the quantified version of a qualitative paper claim:
Hill-Smith subblock trade-offs, Tyson-style bypassing, the Horwitz
write-aware gap, prefetcher costs, address compression, and shared-cache
interference.
"""

from repro.mem.bypass import bypass_benefit
from repro.mem.compression import evaluate_address_compression
from repro.mem.interference import chip_multiprocessor_demand, multithreaded_traffic
from repro.mem.prefetch import (
    StreamBufferPrefetcher,
    StridePrefetcher,
    TaggedPrefetcher,
    evaluate_prefetcher,
)
from repro.mem.sector import hill_smith_tradeoff
from repro.mem.writeaware import write_aware_gap
from repro.workloads import get_workload

from conftest import emit, run_once

MAX_REFS = 100_000


def test_bench_hill_smith_tradeoff(benchmark):
    trace = get_workload("Compress").generate(seed=0, max_refs=MAX_REFS)
    points = run_once(benchmark, hill_smith_tradeoff, trace)
    lines = [
        f"  subblock {p.subblock_bytes:3d}B: miss={p.miss_ratio:.3f} "
        f"R={p.traffic_ratio:.2f}"
        for p in points
    ]
    emit("Hill-Smith subblock trade-off (Compress, 16KB/64B sectors)",
         "\n".join(lines))
    assert points[0].traffic_ratio < points[-1].traffic_ratio
    assert points[0].miss_ratio > points[-1].miss_ratio


def test_bench_selective_bypass(benchmark):
    def measure():
        rows = []
        for name in ("Compress", "Eqntott", "Swm"):
            trace = get_workload(name).generate(seed=0, max_refs=MAX_REFS)
            rows.append((name, *bypass_benefit(trace, 4096)))
        return rows

    rows = run_once(benchmark, measure)
    emit(
        "Tyson-style selective bypassing (4KB simulated cache)",
        "\n".join(
            f"  {name:9s} {base / 1024:7.0f}KB -> {improved / 1024:7.0f}KB "
            f"({saving:+.1%})"
            for name, base, improved, saving in rows
        ),
    )
    irregular_savings = [r[3] for r in rows if r[0] != "Swm"]
    assert all(s > 0.02 for s in irregular_savings)


def test_bench_write_aware_gap(benchmark):
    def measure():
        rows = []
        for name in ("Compress", "Eqntott", "Swm", "Tomcatv"):
            trace = get_workload(name).generate(seed=0, max_refs=MAX_REFS)
            rows.append((name, *write_aware_gap(trace, 16 * 1024)))
        return rows

    rows = run_once(benchmark, measure)
    emit(
        "Write-aware vs plain MIN (the paper's skipped Horwitz policy)",
        "\n".join(
            f"  {name:9s} plain={plain / 1024:7.0f}KB "
            f"aware={aware / 1024:7.0f}KB gap={gap:+.2%}"
            for name, plain, aware, gap in rows
        ),
    )
    # The paper's claim, verified: the disparity is small.
    assert all(abs(gap) < 0.05 for _, _, _, gap in rows)


def test_bench_prefetchers(benchmark):
    trace = get_workload("Swm").generate(seed=0, max_refs=MAX_REFS)

    def measure():
        return [
            evaluate_prefetcher(trace, prefetcher)
            for prefetcher in (
                TaggedPrefetcher(),
                StridePrefetcher(),
                StreamBufferPrefetcher(),
            )
        ]

    reports = run_once(benchmark, measure)
    emit(
        "Prefetcher comparison (Swm)",
        "\n".join(
            f"  {r.scheme:15s} coverage={r.coverage:.2f} "
            f"accuracy={r.accuracy:.2f} traffic={r.traffic_overhead:+.1%}"
            for r in reports
        ),
    )
    # Every scheme moves extra bytes: prefetching costs bandwidth.
    assert all(r.traffic_overhead >= 0.0 for r in reports)


def test_bench_address_compression(benchmark):
    def measure():
        rows = []
        for name in ("Swm", "Compress", "Li"):
            trace = get_workload(name).generate(seed=0, max_refs=MAX_REFS)
            rows.append((name, evaluate_address_compression(trace)))
        return rows

    rows = run_once(benchmark, measure)
    emit(
        "Address-bus compression (dynamic base register caching)",
        "\n".join(
            f"  {name:9s} hit={report.hit_rate:.2f} "
            f"effective width x{report.effective_width_multiplier:.2f}"
            for name, report in rows
        ),
    )
    assert all(report.compression_ratio > 1.0 for _, report in rows)


def test_bench_interference(benchmark):
    traces = [
        get_workload(name).generate(seed=0, max_refs=60_000)
        for name in ("Compress", "Swm", "Espresso")
    ]
    report = run_once(benchmark, multithreaded_traffic, traces)
    cmp_points = chip_multiprocessor_demand(
        report.shared_traffic_bytes, 400_000, 300, 800
    )
    emit(
        "Shared-cache interference and chip-multiprocessor demand",
        f"threads: {', '.join(report.thread_names)}\n"
        f"traffic expansion: {report.traffic_expansion:.2f}x  "
        f"miss expansion: {report.miss_expansion:.2f}x\n"
        + "\n".join(
            f"  {p.cores:2d} cores: demand {p.demand_mb_per_s:8.0f} MB/s "
            f"({'pin-bound' if p.bandwidth_bound else 'ok'})"
            for p in cmp_points
        ),
    )
    assert report.traffic_expansion >= 1.0


def test_bench_flexible_cache(benchmark):
    """The paper's own §5.3 proposal: software-controlled transfer sizes."""
    from repro.mem.flexible import flexible_gain

    def measure():
        rows = []
        for name in ("Compress", "Eqntott", "Espresso", "Su2cor", "Swm"):
            trace = get_workload(name).generate(seed=0, max_refs=MAX_REFS)
            rows.append((name, flexible_gain(trace)))
        return rows

    rows = run_once(benchmark, measure)
    emit(
        "Flexible cache vs best fixed block size (request overhead included)",
        "\n".join(
            f"  {name:9s} best fixed={g.best_fixed_block:3d}B "
            f"{g.best_fixed_traffic / 1024:7.0f}KB  "
            f"flexible={g.flexible_traffic / 1024:7.0f}KB  "
            f"saving={g.saving:+.1%}"
            for name, g in rows
        ),
    )
    gains = [g.saving for name, g in rows if name != "Swm"]
    assert sum(1 for s in gains if s > 0) >= 3


def test_bench_victim_cache(benchmark):
    """Jouppi's victim cache: conflict misses absorbed before the pins."""
    from repro.mem.victim import victim_benefit

    def measure():
        rows = []
        for name in ("Su2cor", "Espresso", "Swm", "Compress"):
            trace = get_workload(name).generate(seed=0, max_refs=MAX_REFS)
            rows.append((name, *victim_benefit(trace, 4096, victim_entries=8)))
        return rows

    rows = run_once(benchmark, measure)
    emit(
        "Victim cache (4KB direct-mapped + 8 victim entries)",
        "\n".join(
            f"  {name:9s} {base / 1024:8.0f}KB -> {improved / 1024:8.0f}KB "
            f"({saving:+.1%})"
            for name, base, improved, saving in rows
        ),
    )
    by_name = {name: saving for name, _, _, saving in rows}
    assert by_name["Su2cor"] > by_name["Swm"]


def test_bench_epin_two_level(benchmark):
    """Equations 5/7 composed over the paper's own two-level hierarchy."""
    from repro.experiments import epin

    result = run_once(benchmark, epin.run, max_refs=MAX_REFS)
    emit("Two-level effective pin bandwidth", epin.render(result))
    for row in result.rows:
        assert row.oe_pin_mb_s >= row.e_pin_mb_s * 0.999


def test_bench_chip_multiprocessor(benchmark):
    """§2.2 quantified: cores sharing one pin interface stop scaling."""
    from repro.cpu.multicore import cmp_scaling

    results = run_once(
        benchmark,
        cmp_scaling,
        get_workload("Swm"),
        core_counts=(1, 2, 4, 8),
        max_refs=5000,
    )
    emit(
        "Single-chip multiprocessor scaling (Swm, experiment F memory)",
        "\n".join(
            f"  {r.core_count:2d} cores: per-core slowdown "
            f"{r.per_core_slowdown:5.2f}x, throughput {r.throughput_speedup:4.2f}x"
            for r in results
        ),
    )
    assert results[-1].throughput_speedup < results[-1].core_count * 0.5


def test_bench_miss_ratio_curve(benchmark):
    """Mattson stack algorithm: one pass predicts every LRU cache size."""
    from repro.trace.mrc import miss_ratio_curve

    trace = get_workload("Eqntott").generate(seed=0, max_refs=MAX_REFS)
    curve = benchmark(miss_ratio_curve, trace)
    points = curve.curve([2 ** k for k in range(3, 14)])
    emit(
        "Miss-ratio curve (Eqntott, fully-associative LRU, one pass)",
        "\n".join(
            f"  {blocks:6d} blocks ({blocks * 32 // 1024:4d}KB): "
            f"miss ratio {ratio:.3f}"
            for blocks, ratio in points
        )
        + f"\n  compulsory floor: {curve.compulsory_miss_ratio:.4f}",
    )
    ratios = [r for _, r in points]
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))


def test_bench_smart_memory_offload(benchmark):
    """§6's smart memory: stream computations run memory-side."""
    from repro.mem.smart import offload_candidates, offload_saving

    trace = get_workload("Swm").generate(seed=0, max_refs=MAX_REFS)

    def measure():
        candidates = offload_candidates(trace, min_traffic_share=0.02)
        regions = [(c.start, c.end) for c in candidates]
        return candidates, offload_saving(trace, regions) if regions else None

    candidates, report = run_once(benchmark, measure)
    if report is None:
        emit("Smart-memory offload (Swm)", "no candidates at this scale")
        return
    emit(
        "Smart-memory offload (Swm)",
        f"candidate regions: {len(candidates)}\n"
        f"pin traffic: {report.total_traffic_bytes / 1024:.0f}KB -> "
        f"{report.smart_traffic_bytes / 1024:.0f}KB "
        f"({report.saving:+.1%} with computation in memory)",
    )
    assert report.saving > 0.0
