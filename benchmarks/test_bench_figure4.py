"""Regenerates Figure 4 (traffic vs cache size, caches against the MTC)."""

from repro.experiments import figure4

from conftest import emit, run_once

MAX_REFS = 120_000


def test_bench_figure4(benchmark):
    result = run_once(benchmark, figure4.run, max_refs=MAX_REFS)
    emit("Figure 4: total traffic by cache and MTC size", figure4.render(result))
    for panel in result.panels.values():
        for index in range(len(panel.sizes)):
            for series in panel.cache_series.values():
                if series[index] >= 0:
                    assert panel.mtc_write_validate[index] <= series[index]
