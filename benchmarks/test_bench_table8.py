"""Regenerates Table 8 (traffic inefficiencies vs the MTC)."""

from repro.experiments import table8

from conftest import emit, run_once

#: MTC simulation is the most expensive part of the harness.
MAX_REFS = 200_000


def test_bench_table8(benchmark):
    result = run_once(benchmark, table8.run, max_refs=MAX_REFS)
    emit("Table 8: traffic inefficiencies", table8.render(result))
    for name in table8.PAPER_TABLE8:
        for _, value in result.sweep.defined_cells(name):
            assert value >= 0.99
