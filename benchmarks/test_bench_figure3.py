"""Regenerates Figure 3 (execution-time decomposition, A-F, both suites).

The timing cores are the slowest simulators in the library, so the
benchmark uses a bounded reference count per benchmark; the bar *shapes*
(the growth of the bandwidth segment with latency tolerance) stabilize
well below this budget.
"""

from repro.experiments import figure3

from conftest import emit, run_once

MAX_REFS = 12_000


def test_bench_figure3_spec92(benchmark):
    result = run_once(benchmark, figure3.run, "SPEC92", max_refs=MAX_REFS)
    emit("Figure 3 (SPEC92 panel)", figure3.render(result))
    grew = sum(
        1
        for name in result.benchmarks()
        if result.bar(name, "F").f_b > result.bar(name, "A").f_b
    )
    assert grew >= len(result.benchmarks()) - 1


def test_bench_figure3_spec95(benchmark):
    result = run_once(benchmark, figure3.run, "SPEC95", max_refs=MAX_REFS)
    emit("Figure 3 (SPEC95 panel)", figure3.render(result))
    assert len(result.benchmarks()) == 7
