"""Micro-benchmarks: simulator throughput (references per second).

These are classic pytest-benchmark timings (multiple rounds) of the three
engines a user pays for: the vectorized direct-mapped cache path, the
general set-associative path, and the two-pass MTC.
"""

import numpy as np

from repro.mem.cache import Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace

REFS = 100_000


def _trace() -> MemTrace:
    rng = np.random.default_rng(0)
    return MemTrace(
        rng.integers(0, 1 << 16, size=REFS) * 4,
        rng.random(REFS) < 0.3,
    )


def test_bench_cache_fast_path(benchmark):
    trace = _trace()
    config = CacheConfig(size_bytes=16 * 1024, block_bytes=32)
    stats = benchmark(lambda: Cache(config).simulate(trace))
    assert stats.accesses == REFS


def test_bench_cache_general_path(benchmark):
    trace = _trace()
    config = CacheConfig(size_bytes=16 * 1024, block_bytes=32, associativity=4)
    stats = benchmark(lambda: Cache(config).simulate(trace))
    assert stats.accesses == REFS


def test_bench_mtc(benchmark):
    trace = _trace()
    stats = benchmark(
        lambda: MinimalTrafficCache(MTCConfig(size_bytes=16 * 1024)).simulate(trace)
    )
    assert stats.accesses == REFS
