"""Regenerates Figure 5's prediction: the unified processor/DRAM system."""

from repro.experiments import figure5

from conftest import emit, run_once

MAX_REFS = 10_000


def test_bench_figure5(benchmark):
    result = run_once(benchmark, figure5.run, max_refs=MAX_REFS)
    emit("Figure 5: unified processor/DRAM vs conventional", figure5.render(result))
    for row in result.rows:
        assert row.speedup >= 1.0
        assert row.unified.f_b <= row.conventional.f_b
