"""Regenerates the scenario traffic sweep (Table 7 beyond SPEC)."""

from repro.experiments import scenarios

from conftest import emit, run_once

#: References per scenario; raise for a higher-fidelity (slower) run.
MAX_REFS = 300_000


def test_bench_scenarios(benchmark):
    result = run_once(benchmark, scenarios.run, max_refs=MAX_REFS)
    emit("Scenario traffic ratios", scenarios.render(result))
    # Headline: skewed/bursty/multi-tenant traffic filters worse than
    # SPEC — the >=64KB mean sits well above the paper's 0.51.
    assert result.mean_ratio_64kb_up > 1.0
    # The bandwidth wall does not move: every scenario keeps a
    # substantial bandwidth-stall fraction under experiment F.
    assert all(0.2 < row.f_b < 1.0 for row in result.decompositions)
