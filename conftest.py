"""Repository-root pytest configuration: execution-layer options.

Placed at the root (above both ``tests/`` and ``benchmarks/``) so one
``pytest_addoption`` serves every suite:

``--jobs N``
    Run experiment sweeps on a process pool of N workers. The default 1
    keeps the serial path — the suite's results are identical either
    way (that equality is itself under test in
    ``tests/test_exec_parallel.py``).
``--exec-cache``
    Enable the on-disk result cache (off by default so tests always
    exercise real simulation; benchmarks opt in to measure warm-cache
    behaviour).

Both options configure the process-wide :data:`repro.exec.EXEC` facade
once per session; with neither given the facade is never imported and
the suite behaves exactly as before the execution layer existed.
"""

from __future__ import annotations


def pytest_addoption(parser):
    group = parser.getgroup("repro execution layer")
    group.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiment sweeps (default: 1, serial)",
    )
    group.addoption(
        "--exec-cache",
        action="store_true",
        default=False,
        help="enable the on-disk result cache (.repro-cache/) for the run",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs")
    use_cache = config.getoption("--exec-cache")
    if jobs == 1 and not use_cache:
        return
    import pytest

    from repro.errors import ConfigurationError
    from repro.exec import configure_exec, default_cache_dir

    try:
        configure_exec(
            jobs=jobs,
            cache_dir=default_cache_dir() if use_cache else None,
        )
    except ConfigurationError as exc:
        raise pytest.UsageError(str(exc)) from exc


def pytest_unconfigure(config):
    if config.getoption("--jobs") == 1 and not config.getoption("--exec-cache"):
        return
    from repro.exec import configure_exec

    configure_exec(jobs=1, cache_dir=None)
