"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available experiments, workloads, and scenario patterns
    (``--json`` for the machine-readable form).
``experiment NAME``
    Regenerate one of the paper's tables/figures and print it.
``simulate WORKLOAD``
    Run one workload through a cache (and optionally the MTC) and print
    the traffic metrics. WORKLOAD is a registry name, a scenario spec
    file (``spec.json`` or ``@spec.json``), or inline
    ``scenario:{...}`` JSON — see docs/scenarios.md.
``scenario list|run|mix``
    The scenario engine: ``list`` prints the pattern vocabulary and spec
    defaults, ``run`` simulates one spec through a cache (the scenario
    analogue of ``simulate``), and ``mix`` attributes a multi-tenant
    mix's misses and traffic per tenant against solo baselines.
``decompose WORKLOAD``
    Run the three-simulation execution-time decomposition on one of the
    paper's machines A-F.
``stats WORKLOAD``
    Print trace statistics (footprint, locality measures).
``profile EXPERIMENT``
    Run one experiment under the instrumentation layer and print a
    stage/throughput profile; writes machine-readable
    ``BENCH_profile.json``.
``cache stats|clear|mrc``
    Inspect or empty the on-disk result cache (see docs/performance.md).
    ``stats --json`` emits the machine-readable form (entry/byte/
    quarantine counts) that ops tooling and the server's ``/healthz``
    consume. ``mrc`` replays the serving hot tier's access log through
    the repo's own Mattson machinery (:mod:`repro.trace.mrc`) and prints
    the hit-ratio-vs-size curve of the tier — what each byte budget
    would have bought on the measured reuse pattern.
``serve``
    Run the simulation service: an asyncio HTTP/JSON server exposing
    ``POST /v1/simulate``, ``POST /v1/sweep``, ``GET /v1/jobs/<id>``,
    ``GET /healthz``, and ``GET /metrics``. ``--queue-depth`` bounds the
    admission queue (full means HTTP 429 + Retry-After),
    ``--max-inflight`` the jobs per scheduler batch, and ``--jobs`` the
    process-pool workers each batch fans across. ``--workers N`` scales
    horizontally: N shards behind a consistent-hashing front router;
    ``--hot-tier-bytes`` budgets the in-memory tier over the disk cache
    and ``--job-history`` bounds the in-memory job table. SIGINT/SIGTERM
    drain the running batch before exiting 0. See docs/serving.md.
``submit simulate|sweep``
    Submit one request to a running server (``--server`` or
    ``$REPRO_SERVER``), wait for completion, and print the result —
    byte-identical to running the equivalent command locally.
    ``submit simulate --scenario spec.json`` submits a scenario spec
    instead of a named workload.
``spans PATH``
    Analyse a span log written by ``--trace-spans``: indented tree view
    with total/self times (default), ``--critical-path`` for the chain
    that determined end-to-end latency, ``--folded`` for flamegraph/
    speedscope input, ``--job ID``/``--trace ID`` to select one trace.

Every simulation command also accepts the observability flags
``--verbose`` (structured event logging on stderr),
``--trace-events PATH`` (JSONL event export), and ``--trace-spans PATH``
(request-scoped timing spans, analysed with ``repro spans``); see
docs/observability.md.
``experiment``, ``simulate``, and ``profile`` additionally take
``--engine {auto,scalar,vector,sampled}`` to pin the simulation engine
and ``--sample-rate R``/``--sample-seed SEED`` to configure the sampled
tier's spatial sample (see docs/performance.md); the
``bench_cache``/``bench_mtc``/``bench_sweep`` experiments time the
scalar and vector engines against each other, and ``bench_sampled``
measures the sampled tier's speedup and error against exact runs.
The ``experiment`` command additionally takes the execution-layer flags
``--jobs N`` (worker processes), ``--no-cache``, and ``--cache-dir PATH``
(result caching is on by default, rooted at ``.repro-cache/``);
``profile`` takes ``--jobs N`` and reports per-worker utilization, but
never uses the result cache — a profile must measure real work.

Fault tolerance (see docs/robustness.md): ``experiment`` and ``profile``
take ``--retries N`` (per-task attempt budget), ``--task-timeout S``
(per-attempt wall clock on the pool path), and ``--inject-fault SPEC``
(the fault-injection harness; also honours ``$REPRO_FAULTS``). An
interrupted ``experiment`` run (Ctrl-C) flushes completed results to the
cache and exits 130 with a resume hint — re-running the same command
resumes from where it died. ``serve`` takes ``--inject-fault`` too: the
serve-layer points (``shard.kill``, ``shard.slow``, ``conn.drop``) crash
or stall forked shards on demand so the router's supervision, failover,
and circuit breakers can be exercised under real chaos (the plan is
armed before the fork, so shards inherit it and budgets are shared
across the tree).
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import tempfile
from collections.abc import Sequence

from repro.errors import ConfigurationError, ReproError, RunInterrupted
from repro.util import format_size, parse_size

#: Experiment name -> module path (all expose run()/render()).
EXPERIMENT_MODULES = {
    name: f"repro.experiments.{name}"
    for name in (
        "figure1",
        "figure2",
        "figure3",
        "figure4",
        "figure5",
        "table2",
        "table3",
        "table6",
        "table7",
        "table8",
        "table9",
        "epin",
        "scenarios",
        "bench_cache",
        "bench_mtc",
        "bench_sampled",
        "bench_sweep",
    )
}

#: Mirrors repro.mem.engines.ENGINE_CHOICES (kept literal so building the
#: parser never imports numpy; a test pins the two in sync).
ENGINE_CHOICES = ("auto", "scalar", "vector", "sampled")


def positive_int(text: str) -> int:
    """argparse type for ``--max-refs``/``--jobs``/``--retries``.

    Zero would silently simulate nothing (or spawn no workers) and
    negative values would be passed to numpy slicing with surprising
    semantics, so both are rejected up front (backed by the library's
    ConfigurationError so the message matches every other configuration
    failure).
    """
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from exc
    try:
        if value <= 0:
            raise ConfigurationError(
                f"must be a positive integer, got {value}"
            )
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value


def positive_float(text: str) -> float:
    """argparse type for ``--task-timeout``: a strictly positive number."""
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got {text!r}"
        ) from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds, got {value:g}"
        )
    return value


def sample_rate(text: str) -> float:
    """argparse type for ``--sample-rate``: a float in (0, 1]."""
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a sampling rate, got {text!r}"
        ) from exc
    if not (0.0 < value <= 1.0):  # also rejects NaN
        raise argparse.ArgumentTypeError(
            f"sampling rate must be in (0, 1], got {text!r}"
        )
    return value


def port_number(text: str) -> int:
    """argparse type for ``--port``: 0 (ephemeral) through 65535."""
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected a port number, got {text!r}"
        ) from exc
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"port must be in [0, 65535] (0 requests an ephemeral port), "
            f"got {value}"
        )
    return value


def host_name(text: str) -> str:
    """argparse type for ``--host``: a non-empty, whitespace-free name."""
    value = text.strip()
    if not value or any(c.isspace() for c in value):
        raise argparse.ArgumentTypeError(
            f"expected a hostname or address, got {text!r}"
        )
    return value


#: Where ``repro submit`` sends requests unless told otherwise.
DEFAULT_SERVER = "http://127.0.0.1:8765"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Memory Bandwidth Limitations of Future "
            "Microprocessors' (ISCA 1996)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every simulation-running command.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--verbose",
        action="store_true",
        help="structured event logging on stderr",
    )
    obs_flags.add_argument(
        "--trace-events",
        metavar="PATH",
        default=None,
        help="write simulation events as JSONL to PATH",
    )
    obs_flags.add_argument(
        "--trace-spans",
        metavar="PATH",
        default=None,
        help=(
            "write request-scoped timing spans as JSONL to PATH "
            "(analyse with `repro spans`; see docs/observability.md)"
        ),
    )

    # Engine selection shared by the simulation-heavy commands.
    engine_flags = argparse.ArgumentParser(add_help=False)
    engine_flags.add_argument(
        "--engine",
        choices=list(ENGINE_CHOICES),
        default=None,
        help=(
            "simulation engine: auto picks per call, scalar forces the "
            "reference loops, vector requires the fast kernels, sampled "
            "estimates from a spatial reference sample with error bounds "
            "(default: $REPRO_ENGINE or auto)"
        ),
    )
    engine_flags.add_argument(
        "--sample-rate",
        type=sample_rate,
        default=None,
        metavar="R",
        help=(
            "spatial sampling rate in (0, 1] for the sampled engine "
            "(default: $REPRO_SAMPLE_RATE or 0.01; under auto, a rate "
            "opts huge traces into sampling)"
        ),
    )
    engine_flags.add_argument(
        "--sample-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="hash seed for the spatial sample (default: $REPRO_SAMPLE_SEED or 0)",
    )

    # Fault-tolerance knobs shared by the sweep-running commands.
    resilience_flags = argparse.ArgumentParser(add_help=False)
    resilience_flags.add_argument(
        "--retries",
        type=positive_int,
        default=None,
        metavar="N",
        help="per-task attempt budget before escalation/failure (default: 3)",
    )
    resilience_flags.add_argument(
        "--task-timeout",
        type=positive_float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget on the pool path (default: none)",
    )
    resilience_flags.add_argument(
        "--inject-fault",
        metavar="SPEC",
        default=None,
        help=(
            "fault-injection spec, e.g. 'worker.kill@Swm;cache.corrupt*2' "
            "or, under serve, 'shard.kill@/v1/simulate' "
            "(also honours $REPRO_FAULTS; see docs/robustness.md)"
        ),
    )

    list_parser = sub.add_parser(
        "list", help="list experiments, workloads, and scenario patterns"
    )
    list_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable listing (experiments + workloads + pattern "
            "vocabulary), one JSON object"
        ),
    )

    experiment = sub.add_parser(
        "experiment",
        parents=[obs_flags, engine_flags, resilience_flags],
        help="regenerate a table/figure",
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENT_MODULES))
    experiment.add_argument(
        "--max-refs",
        type=positive_int,
        default=None,
        help="bound the references per benchmark (speed/fidelity knob)",
    )
    experiment.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes for sweep execution (default: 1, serial)",
    )
    experiment.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    experiment.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result cache root (default: .repro-cache or $REPRO_CACHE_DIR)",
    )

    simulate = sub.add_parser(
        "simulate",
        parents=[obs_flags, engine_flags],
        help="run a workload through a cache",
    )
    simulate.add_argument("workload")
    simulate.add_argument("--size", default="16KB", help="cache size (e.g. 64KB)")
    simulate.add_argument("--block", type=int, default=32, help="block bytes")
    simulate.add_argument("--assoc", type=int, default=1, help="ways")
    simulate.add_argument(
        "--mtc", action="store_true", help="also run the minimal-traffic cache"
    )
    simulate.add_argument("--max-refs", type=positive_int, default=200_000)
    simulate.add_argument("--seed", type=int, default=0)

    scenario = sub.add_parser(
        "scenario",
        help="parameterized traffic scenarios (see docs/scenarios.md)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_action", required=True)
    scenario_list = scenario_sub.add_parser(
        "list", help="pattern vocabulary, spec defaults, and an example"
    )
    scenario_list.add_argument(
        "--json",
        action="store_true",
        help="machine-readable pattern catalog and defaults",
    )
    scenario_run = scenario_sub.add_parser(
        "run",
        parents=[obs_flags, engine_flags],
        help="simulate one scenario spec through a cache",
    )
    scenario_run.add_argument(
        "spec",
        help="spec file (PATH or @PATH) or inline scenario:{...} JSON",
    )
    scenario_run.add_argument(
        "--size", default="16KB", help="cache size (e.g. 64KB)"
    )
    scenario_run.add_argument("--block", type=int, default=32, help="block bytes")
    scenario_run.add_argument("--assoc", type=int, default=1, help="ways")
    scenario_run.add_argument(
        "--mtc", action="store_true", help="also run the minimal-traffic cache"
    )
    scenario_run.add_argument("--max-refs", type=positive_int, default=200_000)
    scenario_mix = scenario_sub.add_parser(
        "mix",
        parents=[obs_flags],
        help="per-tenant miss/traffic attribution of one scenario mix",
    )
    scenario_mix.add_argument(
        "spec",
        help="spec file (PATH or @PATH) or inline scenario:{...} JSON",
    )
    scenario_mix.add_argument(
        "--size", default="16KB", help="cache size (e.g. 64KB)"
    )
    scenario_mix.add_argument("--block", type=int, default=32, help="block bytes")
    scenario_mix.add_argument("--assoc", type=int, default=1, help="ways")
    scenario_mix.add_argument("--max-refs", type=positive_int, default=200_000)

    decompose = sub.add_parser(
        "decompose",
        parents=[obs_flags],
        help="execution-time decomposition on a machine A-F",
    )
    decompose.add_argument("workload")
    decompose.add_argument(
        "--experiment", default="F", choices=list("ABCDEF"), dest="machine"
    )
    decompose.add_argument("--suite", default=None, choices=["SPEC92", "SPEC95"])
    decompose.add_argument("--max-refs", type=positive_int, default=20_000)
    decompose.add_argument("--seed", type=int, default=0)

    stats = sub.add_parser(
        "stats", parents=[obs_flags], help="trace statistics for a workload"
    )
    stats.add_argument("workload")
    stats.add_argument("--max-refs", type=positive_int, default=200_000)
    stats.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser(
        "profile",
        parents=[obs_flags, engine_flags, resilience_flags],
        help="profile one experiment run (stages, throughput, counters)",
    )
    profile.add_argument("name", choices=sorted(EXPERIMENT_MODULES))
    profile.add_argument(
        "--max-refs",
        type=positive_int,
        default=None,
        help="bound the references per benchmark (speed/fidelity knob)",
    )
    profile.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_profile.json",
        help="machine-readable profile destination (default: BENCH_profile.json)",
    )
    profile.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes for sweep execution (default: 1, serial)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache.add_argument("action", choices=["stats", "clear", "mrc"])
    cache.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result cache root (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    cache.add_argument(
        "--json",
        action="store_true",
        help="machine-readable stats (entries/bytes/quarantined), one JSON object",
    )
    cache.add_argument(
        "--points",
        type=positive_int,
        default=12,
        metavar="N",
        help="mrc: max capacity points on the hit-ratio curve (default: 12)",
    )

    serve = sub.add_parser(
        "serve",
        parents=[resilience_flags],
        help="run the simulation service (HTTP/JSON; see docs/serving.md)",
    )
    serve.add_argument(
        "--host",
        type=host_name,
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=port_number,
        default=8765,
        help="port to bind; 0 picks an ephemeral port (default: 8765)",
    )
    serve.add_argument(
        "--queue-depth",
        type=positive_int,
        default=64,
        metavar="N",
        help="admission-queue capacity; full sheds with 429 (default: 64)",
    )
    serve.add_argument(
        "--max-inflight",
        type=positive_int,
        default=4,
        metavar="N",
        help="jobs drained per scheduler batch (default: 4)",
    )
    serve.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes each batch fans across (default: 1, serial)",
    )
    serve.add_argument(
        "--workers",
        type=positive_int,
        default=1,
        metavar="N",
        help=(
            "server shards: N > 1 forks N servers behind a consistent-"
            "hashing front router (default: 1, in-process)"
        ),
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (and cross-restart coalescing)",
    )
    serve.add_argument(
        "--hot-tier-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "in-memory hot-tier budget over the disk cache "
            "(default: 64 MiB; 0 disables the tier)"
        ),
    )
    serve.add_argument(
        "--job-history",
        type=positive_int,
        default=None,
        metavar="N",
        help=(
            "retain at most N terminal job records in memory (evicted "
            "results are recovered from the cache on resubmission; "
            "default: unbounded)"
        ),
    )
    serve.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result cache root (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    serve.add_argument(
        "--verbose",
        action="store_true",
        help="structured event logging on stderr (the server owns the obs "
        "facade; --trace-events is not supported here)",
    )
    serve.add_argument(
        "--trace-spans",
        metavar="PATH",
        default=None,
        help=(
            "write per-request spans (serve -> queue -> pool -> engine) "
            "as JSONL to PATH; analyse with `repro spans`"
        ),
    )

    server_flags = argparse.ArgumentParser(add_help=False)
    server_flags.add_argument(
        "--server",
        metavar="URL",
        default=None,
        help=f"server base url (default: $REPRO_SERVER or {DEFAULT_SERVER})",
    )
    server_flags.add_argument(
        "--timeout",
        type=positive_float,
        default=300.0,
        metavar="SECONDS",
        help="overall submit-and-wait budget (default: 300)",
    )
    server_flags.add_argument(
        "--poll",
        type=positive_float,
        default=0.05,
        metavar="SECONDS",
        help="job-status polling interval (default: 0.05)",
    )

    submit = sub.add_parser(
        "submit", help="submit one request to a running server and wait"
    )
    submit_sub = submit.add_subparsers(dest="request_kind", required=True)

    submit_simulate = submit_sub.add_parser(
        "simulate",
        parents=[server_flags],
        help="served equivalent of `repro simulate`",
    )
    submit_simulate.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="named workload (or use --scenario for a spec file)",
    )
    submit_simulate.add_argument(
        "--scenario",
        metavar="PATH",
        default=None,
        help=(
            "submit a scenario spec file instead of a named workload "
            "(the spec carries its own seed; --seed is rejected with it)"
        ),
    )
    submit_simulate.add_argument(
        "--size", default="16KB", help="cache size (e.g. 64KB)"
    )
    submit_simulate.add_argument("--block", type=int, default=32, help="block bytes")
    submit_simulate.add_argument("--assoc", type=int, default=1, help="ways")
    submit_simulate.add_argument(
        "--mtc", action="store_true", help="also run the minimal-traffic cache"
    )
    submit_simulate.add_argument("--max-refs", type=positive_int, default=200_000)
    submit_simulate.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "trace seed for a named workload (default: 0; rejected with "
            "--scenario, whose spec carries the seed)"
        ),
    )

    submit_sweep = submit_sub.add_parser(
        "sweep",
        parents=[server_flags],
        help="served equivalent of `repro experiment`",
    )
    submit_sweep.add_argument("name", choices=sorted(EXPERIMENT_MODULES))
    submit_sweep.add_argument(
        "--max-refs",
        type=positive_int,
        default=None,
        help="bound the references per benchmark (speed/fidelity knob)",
    )
    submit_sweep.add_argument(
        "--engine",
        choices=list(ENGINE_CHOICES),
        default=None,
        help="simulation engine for the served run",
    )

    spans = sub.add_parser(
        "spans",
        help="analyse a span log written by --trace-spans "
        "(tree, critical path, folded stacks)",
    )
    spans.add_argument(
        "log",
        metavar="PATH",
        help="span JSONL log produced by --trace-spans",
    )
    select = spans.add_mutually_exclusive_group()
    select.add_argument(
        "--job",
        metavar="ID",
        default=None,
        help="select the trace of one served job (matches the "
        "serve.request root's job attribute; prefixes accepted)",
    )
    select.add_argument(
        "--trace",
        metavar="ID",
        default=None,
        help="select one trace by id",
    )
    spans.add_argument(
        "--critical-path",
        action="store_true",
        help="print only the critical path (longest chain to the last "
        "finishing leaf) instead of the full tree",
    )
    spans.add_argument(
        "--folded",
        action="store_true",
        help="emit folded stacks (`a;b;c <self-µs>`) for flamegraph.pl "
        "or speedscope instead of the tree view",
    )

    return parser


def _cmd_list(args, out) -> None:
    from repro.workloads import all_workloads

    if getattr(args, "json", False):
        from repro.scenario import (
            SCENARIO_DEFAULTS,
            SCENARIO_SCHEMA,
            pattern_catalog,
        )

        payload = {
            "schema": "repro.list/v1",
            "experiments": [
                {
                    "name": name,
                    "summary": (
                        importlib.import_module(EXPERIMENT_MODULES[name])
                        .__doc__ or ""
                    ).strip().splitlines()[0],
                }
                for name in sorted(EXPERIMENT_MODULES)
            ],
            "workloads": [
                {
                    "name": workload.name,
                    "suite": workload.suite,
                    "behaviour": workload.behaviour,
                }
                for workload in all_workloads()
            ],
            "patterns": pattern_catalog(),
            "scenario_defaults": SCENARIO_DEFAULTS,
            "scenario_schema": SCENARIO_SCHEMA,
        }
        json.dump(payload, out, sort_keys=True)
        print(file=out)
        return
    print("experiments:", file=out)
    for name in sorted(EXPERIMENT_MODULES):
        module = importlib.import_module(EXPERIMENT_MODULES[name])
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<10s} {summary}", file=out)
    print("\nworkloads:", file=out)
    for workload in all_workloads():
        print(
            f"  {workload.name:<10s} {workload.suite}  {workload.behaviour}",
            file=out,
        )
    print("\nscenario patterns (see `repro scenario list`):", file=out)
    from repro.scenario import PATTERN_KINDS

    for kind, (_, description) in PATTERN_KINDS.items():
        print(f"  {kind:<10s} {description}", file=out)


def _retry_policy(args):
    """The RetryPolicy for --retries/--task-timeout, or None for defaults."""
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "task_timeout", None)
    if retries is None and timeout is None:
        return None
    from repro.exec import RetryPolicy

    return RetryPolicy(
        attempts=retries if retries is not None else 3, timeout=timeout
    )


def _cmd_experiment(args, out) -> None:
    from repro.exec import EXEC, clear_checkpoint, default_cache_dir, execution
    from repro.exec.resilience import read_checkpoint

    module = importlib.import_module(EXPERIMENT_MODULES[args.name])
    kwargs = {}
    if args.max_refs is not None:
        kwargs["max_refs"] = args.max_refs
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or default_cache_dir()
    with execution(
        jobs=args.jobs, cache_dir=cache_dir, retry=_retry_policy(args)
    ):
        if EXEC.cache is not None:
            marker = read_checkpoint(EXEC.cache)
            if marker is not None:
                print(
                    f"resuming: a previous run was interrupted after "
                    f"{marker.get('completed', '?')}/{marker.get('total', '?')} "
                    f"tasks; reusing its checkpointed results",
                    file=sys.stderr,
                )
        try:
            result = module.run(**kwargs)
        except TypeError:
            # Some experiments (figure1/figure2/table2) take no max_refs.
            result = module.run()
        if EXEC.cache is not None:
            corrupt = (
                f", {EXEC.cache.corrupt} quarantined"
                if EXEC.cache.corrupt
                else ""
            )
            print(
                f"cache: {EXEC.cache.hits} hits, {EXEC.cache.misses} misses"
                f"{corrupt} ({EXEC.cache.root})",
                file=sys.stderr,
            )
            clear_checkpoint(EXEC.cache)
    print(module.render(result), file=out)


def _resolve_workload(text: str):
    """A workload from a CLI argument: registry name, spec file, or
    inline ``scenario:{...}`` JSON (see docs/scenarios.md)."""
    from repro.scenario import resolve_workload

    return resolve_workload(text)


def _workload_seed(workload, cli_seed: int) -> int:
    """The trace seed for one resolved workload.

    A scenario's seed lives in its spec (it is part of the content
    address), so the spec wins over the CLI flag; named workloads use
    the flag unchanged.
    """
    spec = getattr(workload, "spec", None)
    return spec.seed if spec is not None else cli_seed


def _cmd_simulate(args, out) -> None:
    workload = _resolve_workload(args.workload)
    trace = workload.generate(
        seed=_workload_seed(workload, args.seed), max_refs=args.max_refs
    )
    _print_simulation(trace, args, out)


def _print_simulation(trace, args, out) -> None:
    """The ``repro simulate`` report for one generated trace.

    Shared by ``simulate`` and ``scenario run`` so the two commands can
    never drift; args must carry ``size``/``block``/``assoc``/``mtc``.
    """
    from repro.mem.cache import Cache, CacheConfig
    from repro.mem.mtc import MinimalTrafficCache, MTCConfig

    size = parse_size(args.size)
    config = CacheConfig(
        size_bytes=size, block_bytes=args.block, associativity=args.assoc
    )
    stats = Cache(config).simulate(trace)
    envelope = stats.estimate
    print(f"workload: {trace.name} ({len(trace):,} refs)", file=out)
    print(f"cache:    {config.describe()}", file=out)
    if envelope is not None:
        print(f"sampled:  {envelope.describe()}", file=out)
        print(
            f"miss rate:      {stats.miss_rate:.4f} "
            f"± {envelope.miss_rate_half_width:.4f} (estimate)",
            file=out,
        )
        print(
            f"total traffic:  {stats.total_traffic_bytes:,} bytes (estimate)",
            file=out,
        )
        print(
            f"traffic ratio:  {stats.traffic_ratio:.3f} "
            f"± {envelope.traffic_ratio_half_width:.3f} (estimate)",
            file=out,
        )
    else:
        print(f"miss rate:      {stats.miss_rate:.4f}", file=out)
        print(f"total traffic:  {stats.total_traffic_bytes:,} bytes", file=out)
        print(f"traffic ratio:  {stats.traffic_ratio:.3f}", file=out)
    if args.mtc:
        mtc = MinimalTrafficCache(MTCConfig(size_bytes=size))
        mtc_stats = mtc.simulate(trace)
        g = stats.total_traffic_bytes / mtc_stats.total_traffic_bytes
        mtc_envelope = mtc_stats.estimate
        tag = " (estimate)" if mtc_envelope is not None else ""
        print(
            f"MTC traffic:    {mtc_stats.total_traffic_bytes:,} bytes{tag}",
            file=out,
        )
        if envelope is not None or mtc_envelope is not None:
            print(f"inefficiency G: {g:.2f} (estimate)", file=out)
        else:
            print(f"inefficiency G: {g:.2f}", file=out)


def _require_spec(text: str):
    """The ScenarioSpec for a ``repro scenario`` SPEC argument."""
    from repro.scenario import resolve_spec_argument

    spec = resolve_spec_argument(text if text.endswith(".json") or
                                 text.startswith(("@", "scenario:"))
                                 else "@" + text)
    return spec


def _print_scenario_header(spec, out) -> None:
    print(f"scenario: {spec.display_name} ({spec.scenario_id()})", file=out)
    print(
        f"tenants:  {len(spec.tenants)}  quantum {spec.quantum}  "
        f"seed {spec.seed}  refs {spec.refs:,}",
        file=out,
    )
    for tenant, refs in zip(spec.tenants, spec.tenant_refs()):
        print(
            f"  {tenant.name:<10s} {tenant.pattern['kind']:<10s} "
            f"weight {tenant.weight}  "
            f"footprint {format_size(tenant.footprint_bytes)}  "
            f"writes {tenant.write_fraction:.0%}  refs {refs:,}",
            file=out,
        )


def _cmd_scenario(args, out) -> None:
    if args.scenario_action == "list":
        _cmd_scenario_list(args, out)
    elif args.scenario_action == "run":
        _cmd_scenario_run(args, out)
    else:
        _cmd_scenario_mix(args, out)


def _cmd_scenario_list(args, out) -> None:
    from repro.scenario import (
        SCENARIO_DEFAULTS,
        SCENARIO_SCHEMA,
        pattern_catalog,
    )

    if args.json:
        json.dump(
            {
                "schema": "repro.scenario-list/v1",
                "scenario_schema": SCENARIO_SCHEMA,
                "defaults": SCENARIO_DEFAULTS,
                "patterns": pattern_catalog(),
            },
            out,
            sort_keys=True,
        )
        print(file=out)
        return
    print("patterns:", file=out)
    for entry in pattern_catalog():
        print(f"  {entry['kind']:<10s} {entry['description']}", file=out)
    print("\nspec defaults:", file=out)
    for field, value in SCENARIO_DEFAULTS.items():
        print(f"  {field:<15s} {value}", file=out)
    print(
        "\nexample spec (run with `repro scenario run spec.json`):",
        file=out,
    )
    example = {
        "name": "checkout-mix",
        "footprint": "1MB",
        "refs": 200_000,
        "tenants": [
            {"pattern": {"kind": "zipfian", "alpha": 1.1}, "weight": 2},
            {"pattern": {"kind": "bursty"}},
        ],
    }
    print(json.dumps(example, indent=2), file=out)


def _cmd_scenario_run(args, out) -> None:
    from repro.scenario import ScenarioWorkload

    spec = _require_spec(args.spec)
    workload = ScenarioWorkload(spec)
    _print_scenario_header(spec, out)
    trace = workload.generate(max_refs=args.max_refs)
    _print_simulation(trace, args, out)


def _cmd_scenario_mix(args, out) -> None:
    from repro.mem.cache import CacheConfig
    from repro.scenario import MixedTrace, attribute_traffic, mix
    from repro.trace.model import MemTrace

    spec = _require_spec(args.spec)
    mixed = mix(spec)
    if args.max_refs < len(mixed):
        mixed = MixedTrace(
            trace=MemTrace(
                mixed.trace.addresses[: args.max_refs],
                mixed.trace.is_write[: args.max_refs],
                name=mixed.trace.name,
            ),
            tenant_ids=mixed.tenant_ids[: args.max_refs],
            tenant_names=mixed.tenant_names,
        )
    config = CacheConfig(
        size_bytes=parse_size(args.size),
        block_bytes=args.block,
        associativity=args.assoc,
    )
    report = attribute_traffic(mixed, config)
    _print_scenario_header(spec, out)
    print(f"cache:    {config.describe()}", file=out)
    print(
        f"\n{'tenant':<10s} {'refs':>9s} {'miss rate':>10s} "
        f"{'traffic':>14s} {'share':>7s} {'expansion':>10s}",
        file=out,
    )
    total = report.total_traffic_bytes or 1
    for usage in report.tenants:
        print(
            f"{usage.name:<10s} {usage.refs:>9,} {usage.miss_rate:>10.4f} "
            f"{usage.traffic_bytes:>12,} B "
            f"{usage.traffic_bytes / total:>6.1%} "
            f"{usage.traffic_expansion:>9.2f}x",
            file=out,
        )
    print(
        f"{'total':<10s} {len(mixed):>9,} "
        f"{report.total_misses / (len(mixed) or 1):>10.4f} "
        f"{report.total_traffic_bytes:>12,} B {'100.0%':>7s} "
        f"{report.traffic_expansion:>9.2f}x",
        file=out,
    )
    print(
        f"\ninterference: sharing the cache moved "
        f"{report.traffic_expansion:.2f}x the traffic of the tenants "
        f"running alone",
        file=out,
    )


def _cmd_decompose(args, out) -> None:
    from repro.cpu.configs import experiment
    from repro.cpu.machine import decompose_experiment

    workload = _resolve_workload(args.workload)
    # A scenario belongs to no SPEC suite; decompose it on the paper's
    # SPEC92 machines (the frame experiments/scenarios.py uses).
    suite = args.suite or (
        workload.suite if workload.suite in ("SPEC92", "SPEC95") else "SPEC92"
    )
    config = experiment(args.machine, suite)
    result = decompose_experiment(
        workload,
        config,
        seed=_workload_seed(workload, args.seed),
        max_refs=args.max_refs,
    )
    d = result.decomposition
    print(f"workload:   {workload.name} ({suite})", file=out)
    print(f"experiment: {args.machine}", file=out)
    print(f"cycles:     T_P={d.cycles_perfect:,} T_I={d.cycles_infinite:,} "
          f"T={d.cycles_full:,}", file=out)
    print(f"fractions:  f_P={d.f_p:.3f} f_L={d.f_l:.3f} f_B={d.f_b:.3f}", file=out)
    print(f"IPC (full): {result.full.ipc:.2f}", file=out)


def _cmd_profile(args, out) -> None:
    from repro.obs.profiler import (
        profile_experiment,
        render_profile,
        write_profile,
    )

    profile, rendered = profile_experiment(
        args.name, max_refs=args.max_refs, jobs=args.jobs
    )
    print(rendered, file=out)
    print(file=out)
    print(render_profile(profile), file=out)
    write_profile(profile, args.output)
    print(f"\nwrote {args.output}", file=out)


def _cmd_cache(args, out) -> None:
    from repro.exec import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.action == "stats":
        if getattr(args, "json", False):
            json.dump(cache.stats().to_json(), out, sort_keys=True)
            print(file=out)
        else:
            print(cache.stats().describe(), file=out)
    elif args.action == "mrc":
        _cmd_cache_mrc(args, cache, out)
    else:
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}", file=out)


def _cmd_cache_mrc(args, cache, out) -> None:
    """Hit-ratio-vs-size curve of the serving hot tier, from its own log.

    Every hot-tier lookup appends the entry digest to
    ``hot-tier.accesses`` under the cache root. Replaying that stream
    through the repo's own Mattson machinery
    (:func:`repro.trace.mrc.miss_ratio_curve`) answers the capacity
    question the paper asks of hardware caches, for our serving cache:
    what hit ratio would each byte budget have bought on the measured
    reuse pattern?
    """
    from repro.exec.tiered import ACCESS_LOG_NAME, read_access_log
    from repro.trace.model import WORD_BYTES, MemTrace
    from repro.trace.mrc import miss_ratio_curve

    digests = read_access_log(cache.root)
    if not digests:
        # A missing or empty log is the normal state of a cache root
        # that has never served traffic — explain how to grow one
        # instead of erroring (or printing an empty table).
        if getattr(args, "json", False):
            json.dump(
                {
                    "schema": "repro.cache-mrc/v1",
                    "root": str(cache.root),
                    "accesses": 0,
                    "distinct_entries": 0,
                    "curve": [],
                },
                out,
                sort_keys=True,
            )
            print(file=out)
            return
        print(
            f"no hot-tier accesses recorded yet at "
            f"{cache.root}/{ACCESS_LOG_NAME} — that log grows as `repro "
            f"serve` answers requests from its in-memory hot tier; serve "
            f"some traffic against this cache root, then re-run "
            f"`repro cache mrc`",
            file=out,
        )
        return
    # One "block" per distinct cache entry: digests become consecutive
    # word addresses in first-seen order, so a capacity of C blocks on
    # the MRC is a hot tier holding C entries.
    ids: dict[str, int] = {}
    addresses = []
    for digest in digests:
        if digest not in ids:
            ids[digest] = len(ids)
        addresses.append(ids[digest] * WORD_BYTES)
    trace = MemTrace(addresses, [False] * len(addresses), name="hot-tier")
    curve = miss_ratio_curve(trace, block_bytes=WORD_BYTES)
    distinct = len(ids)
    # Mean serialized entry size turns entry capacities into byte budgets.
    stats = cache.stats()
    mean_bytes = stats.total_bytes / stats.entries if stats.entries else 0
    capacities: list[int] = []
    step = 1
    while step < distinct and len(capacities) < max(1, args.points - 1):
        capacities.append(step)
        step *= 2
    capacities.append(distinct)
    points = [
        {
            "entries": capacity,
            "approx_bytes": int(capacity * mean_bytes),
            "hit_ratio": round(1.0 - curve.miss_ratio_at(capacity), 6),
        }
        for capacity in capacities
    ]
    result = {
        "schema": "repro.cache-mrc/v1",
        "root": str(cache.root),
        "accesses": len(digests),
        "distinct_entries": distinct,
        "compulsory_miss_ratio": round(curve.compulsory_miss_ratio, 6),
        "curve": points,
    }
    if getattr(args, "json", False):
        json.dump(result, out, sort_keys=True)
        print(file=out)
        return
    print(
        f"hot-tier reuse: {len(digests)} accesses over {distinct} distinct "
        f"entries ({cache.root})",
        file=out,
    )
    print(
        f"compulsory miss floor: {curve.compulsory_miss_ratio:.4f}",
        file=out,
    )
    print(f"{'entries':>8}  {'~bytes':>12}  hit ratio", file=out)
    for point in points:
        print(
            f"{point['entries']:>8}  {point['approx_bytes']:>12,}  "
            f"{point['hit_ratio']:.4f}",
            file=out,
        )


def _cmd_serve(args) -> int:
    from repro.exec import default_cache_dir
    from repro.serve.router import ShardedServer
    from repro.serve.server import ServeConfig, SimulationServer

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or default_cache_dir()
    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        max_inflight=args.max_inflight,
        jobs=args.jobs,
        cache_dir=cache_dir,
        retry=_retry_policy(args),
        verbose=args.verbose,
        trace_spans=args.trace_spans,
        hot_bytes=args.hot_tier_bytes,
        workers=args.workers,
        job_history=args.job_history,
    )
    if config.workers > 1:
        return ShardedServer(config).run()
    return SimulationServer(config).run()


def _cmd_submit(args, out) -> None:
    from repro.serve.client import ServeClient

    server = args.server or os.environ.get("REPRO_SERVER") or DEFAULT_SERVER
    if args.request_kind == "simulate":
        if (args.workload is None) == (args.scenario is None):
            raise ConfigurationError(
                "give exactly one of WORKLOAD or --scenario PATH"
            )
        fields = {
            "size": args.size,
            "block": args.block,
            "assoc": args.assoc,
            "mtc": args.mtc,
            "max_refs": args.max_refs,
        }
        if args.scenario is not None:
            if args.seed is not None:
                raise ConfigurationError(
                    "--seed is rejected with --scenario: the spec carries "
                    "its own seed"
                )
            spec = _require_spec(args.scenario)
            fields["scenario"] = spec.canonical()
        else:
            fields["workload"] = args.workload
            if args.seed is not None:
                fields["seed"] = args.seed
    else:
        fields = {"experiment": args.name}
        if args.max_refs is not None:
            fields["max_refs"] = args.max_refs
        if args.engine is not None:
            fields["engine"] = args.engine
    client = ServeClient(server, timeout=args.timeout)
    record = client.run(
        args.request_kind, fields, timeout=args.timeout, poll=args.poll
    )
    note = " (coalesced)" if record.get("coalesced") else ""
    print(f"job {record['job']}: done{note}", file=sys.stderr)
    out.write(record["result"]["output"])


def _cmd_spans(args, out) -> None:
    from repro.obs.spans import (
        build_trees,
        folded_stacks,
        read_spans,
        render_critical_path,
        render_tree,
        select_trace,
    )

    roots = build_trees(read_spans(args.log))
    if not roots:
        raise ConfigurationError(f"span log {args.log!r} contains no spans")
    if args.job is not None or args.trace is not None:
        roots = [select_trace(roots, trace=args.trace, job=args.job)]
    if args.folded:
        for line in folded_stacks(roots):
            print(line, file=out)
        return
    for index, root in enumerate(roots):
        if index:
            print(file=out)
        if args.critical_path:
            print(render_critical_path(root), file=out)
            continue
        print(render_tree(root), file=out)
        if args.job is not None:
            # The question behind --job is almost always "where did the
            # time go?", so the critical path rides along with the tree.
            print(file=out)
            print(render_critical_path(root), file=out)


def _cmd_stats(args, out) -> None:
    from repro.trace.stats import compute_stats

    workload = _resolve_workload(args.workload)
    trace = workload.generate(
        seed=_workload_seed(workload, args.seed), max_refs=args.max_refs
    )
    stats = compute_stats(trace)
    print(f"workload:            {trace.name}", file=out)
    print(f"references:          {stats.references:,} "
          f"({stats.write_fraction:.1%} writes)", file=out)
    print(f"footprint:           {format_size(stats.footprint_bytes)} "
          f"({stats.footprint_bytes:,} bytes)", file=out)
    print(f"sequential fraction: {stats.sequential_fraction:.3f}", file=out)
    print(f"reuse fraction:      {stats.reuse_fraction:.3f}", file=out)
    print(f"median reuse dist.:  {stats.median_reuse_distance:g} words", file=out)


def _configure_observability(args) -> bool:
    """Enable the instrumentation layer when any obs flag was given.

    Returns True when observability was turned on (the caller must
    disable it again so the process-wide facade returns to its
    zero-overhead default). With no flags the facade is never touched —
    command output stays byte-identical to an uninstrumented build.

    ``serve`` is excluded: the server owns the process-wide facade for
    its whole lifetime (its /metrics endpoint *is* the registry), so it
    activates — and restores — observability itself.
    """
    if getattr(args, "command", None) == "serve":
        return False
    verbose = getattr(args, "verbose", False)
    trace_path = getattr(args, "trace_events", None)
    if not verbose and not trace_path:
        return False
    from repro import obs

    sinks: list[obs.EventSink] = []
    if trace_path:
        try:
            sinks.append(obs.JsonlSink(trace_path))
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open --trace-events path {trace_path!r}: {exc}"
            ) from exc
    if verbose:
        sinks.append(obs.StderrSink())
    obs.configure(sink=sinks[0] if len(sinks) == 1 else obs.MultiSink(sinks))
    return True


def _configure_tracing(args) -> bool:
    """Enable span tracing when ``--trace-spans`` was given.

    Returns True when the tracer was armed (the caller must deactivate
    it again so the process-wide ``TRACER`` returns to its zero-overhead
    default). ``serve`` is excluded for the same reason as observability:
    the server configures the tracer for its own lifetime via
    :class:`~repro.serve.server.ServeConfig`.
    """
    if getattr(args, "command", None) == "serve":
        return False
    path = getattr(args, "trace_spans", None)
    if not path:
        return False
    from repro.obs import configure_tracing

    try:
        configure_tracing(path)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot open --trace-spans path {path!r}: {exc}"
        ) from exc
    return True


def _engine_context(args):
    """Context manager pinning the engine when ``--engine`` was given.

    With no flag the process default stays in charge (``$REPRO_ENGINE``
    or auto) and :mod:`repro.mem.engines` — hence numpy — is never
    imported just to parse the command line.
    """
    engine = getattr(args, "engine", None)
    if engine is None or getattr(args, "command", None) == "submit":
        # submit's --engine is a request field the *server* applies.
        import contextlib

        return contextlib.nullcontext()
    from repro.mem.engines import use_engine

    return use_engine(engine)


def _sampling_context(args):
    """Context manager pinning the sampling parameters when flags ask.

    Mirrors :func:`_engine_context`: with neither ``--sample-rate`` nor
    ``--sample-seed`` the process default stays in charge
    (``$REPRO_SAMPLE_RATE``/``$REPRO_SAMPLE_SEED`` or unconfigured) and
    numpy is never imported just to parse the command line.
    """
    rate = getattr(args, "sample_rate", None)
    seed = getattr(args, "sample_seed", None)
    if (rate is None and seed is None) or getattr(
        args, "command", None
    ) == "submit":
        import contextlib

        return contextlib.nullcontext()
    from repro.mem.sampled import (
        DEFAULT_SAMPLE_RATE,
        SamplingConfig,
        current_sampling,
        use_sampling,
    )

    base = current_sampling()
    if rate is None:
        rate = base.rate if base is not None else DEFAULT_SAMPLE_RATE
    if seed is None:
        seed = base.seed if base is not None else 0
    strata = base.strata if base is not None else None
    if strata is not None:
        return use_sampling(SamplingConfig(rate, seed=seed, strata=strata))
    return use_sampling(SamplingConfig(rate, seed=seed))


def _configure_fault_injection(args) -> bool:
    """Arm the fault harness when ``--inject-fault``/``$REPRO_FAULTS`` ask.

    Budgets are scoped to a throwaway token directory so a ``*1`` spec
    fires exactly once across the parent and every forked worker.
    Returns True when a plan was armed (the caller must disarm it).
    """
    spec = getattr(args, "inject_fault", None) or os.environ.get(
        "REPRO_FAULTS"
    )
    if not spec:
        return False
    from repro.exec.faults import configure_faults

    scope = tempfile.mkdtemp(prefix="repro-faults-")
    configure_faults(spec, scope_dir=scope)
    print(f"fault injection armed: {spec}", file=sys.stderr)
    return True


def main(argv: Sequence[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    observing = False
    tracing = False
    injecting = False
    try:
        observing = _configure_observability(args)
        tracing = _configure_tracing(args)
        injecting = _configure_fault_injection(args)
        with _engine_context(args), _sampling_context(args):
            if tracing:
                # One root span per invocation so local traces form a
                # single tree, mirroring serve.request on the server.
                from repro.obs import TRACER

                with TRACER.span(
                    f"cli.{args.command}", command=args.command
                ):
                    return _dispatch(args, out)
            return _dispatch(args, out)
    except RunInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Piping into `head`/`grep -q` closes stdout early; exit with
        # the conventional SIGPIPE status instead of a traceback. The
        # devnull dup keeps the interpreter's shutdown flush quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if injecting:
            from repro.exec.faults import configure_faults

            configure_faults(None)
        if tracing:
            from repro.obs import disable_tracing

            disable_tracing()
        if observing:
            from repro import obs

            obs.disable()


def _dispatch(args, out) -> int:
    if args.command == "list":
        _cmd_list(args, out)
    elif args.command == "experiment":
        _cmd_experiment(args, out)
    elif args.command == "simulate":
        _cmd_simulate(args, out)
    elif args.command == "scenario":
        _cmd_scenario(args, out)
    elif args.command == "decompose":
        _cmd_decompose(args, out)
    elif args.command == "stats":
        _cmd_stats(args, out)
    elif args.command == "profile":
        _cmd_profile(args, out)
    elif args.command == "cache":
        _cmd_cache(args, out)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "submit":
        _cmd_submit(args, out)
    elif args.command == "spans":
        _cmd_spans(args, out)
    return 0
