"""Deterministic, fault-tolerant process-pool task runner.

:func:`run_tasks` is the execution layer's engine: it takes an ordered
list of :class:`Task` items and returns their values *in task order*,
regardless of how many workers computed them, which came from the cache,
or how many attempts each needed. That ordering guarantee is what makes
parallel sweep grids and EXPERIMENTS.md regeneration byte-identical to
serial runs — fault recovery included, because recomputed values flow
through the same JSON normalisation as first-try values.

Execution strategy, per call:

1. Tasks carrying a cache key are looked up first; hits skip execution
   (and count as ``exec.resume.reused`` when a checkpoint marker says the
   previous run was interrupted).
2. Remaining tasks run on a ``ProcessPoolExecutor`` (``fork`` start
   method) when ``jobs > 1``, more than one task is pending, and every
   pending task pickles. Otherwise they run serially in-process.
3. Computed values are written back to the cache *as they complete* — the
   content-addressed cache doubles as the crash journal — and normalised
   through a JSON round-trip before being returned.

Failure handling (see docs/robustness.md for the full ladder):

* A task that raises retries with bounded attempts and deterministic
  seeded exponential backoff (:class:`repro.exec.resilience.RetryPolicy`);
  deliberate library errors fail fast, everything else retries. A task
  that exhausts its pool budget is escalated to the serial path with a
  fresh budget before the run fails with :class:`~repro.errors.TaskError`.
* A dead worker (``BrokenProcessPool``) triggers a pool rebuild; only the
  unfinished tasks are re-run. Persistent crashes escalate every
  unfinished task to the serial path.
* ``retry.timeout`` bounds one pool attempt's blocking wait; a timed-out
  attempt tears the pool down (the worker may be hung) and retries, and
  exhaustion raises :class:`~repro.errors.TaskTimeout` without serial
  escalation (a hung task would hang the parent).
* ``KeyboardInterrupt`` — real SIGINT or an injected ``task.interrupt``
  fault — harvests every already-finished result into the cache, writes a
  checkpoint marker, and raises :class:`~repro.errors.RunInterrupted`
  with a resume hint. Re-running the same command resumes from the cache
  and produces byte-identical output.

Fault hooks (:data:`repro.exec.faults.FAULTS`) fire in ``_invoke`` on the
worker side and before dispatch on the parent side; all are inert unless
a plan is configured.

Observability (all via :data:`repro.obs.OBS`, no-ops when disabled):
``exec.cache.hit`` / ``exec.cache.miss`` / ``exec.cache.store``,
``exec.tasks``, ``exec.retry``, ``exec.worker.crash``, ``exec.timeout``,
``exec.resume.reused``, and ``exec.pool.fallback`` counters, an
``exec.jobs`` gauge, and a per-task ``exec.worker.time`` timer. Workers
run with a private metrics registry and a null sink; their *counter*
deltas are merged into the parent as results are recorded, while
worker-side events and timer samples are intentionally dropped.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.errors import RunInterrupted, TaskError, TaskTimeout
from repro.exec.cache import MISS, ResultCache
from repro.exec.faults import FAULTS
from repro.exec.resilience import (
    DEFAULT_RETRY,
    RetryPolicy,
    clear_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.obs import OBS, TRACER, MetricsRegistry, NullSink

__all__ = ["Task", "run_tasks"]


@dataclass(slots=True)
class Task:
    """One unit of work: a picklable callable plus its arguments.

    *key* is the cache key material (canonical-JSON-able dict) or
    ``None`` for never-cached work; when a key is given the value must be
    JSON data. *label* is used for diagnostics and fault matching.
    *trace* is an optional serialized span context (``{"trace", "span"}``)
    naming this task's parent span; it rides to the worker process and is
    re-hydrated there so worker-side spans keep their parent links. It is
    **not** part of the cache key — identical work coalesces in the cache
    regardless of which request traced it.
    """

    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    key: dict | None = None
    label: str = ""
    trace: dict | None = None


@dataclass(slots=True)
class _RunState:
    """Mutable progress shared by the execution paths of one call."""

    results: list
    completed: int


def _worker_init() -> None:
    """Per-worker (forked child) initialisation.

    The child inherits the parent's :data:`OBS` facade, ``EXEC`` context,
    and ``FAULTS`` plan. Give it a private registry and a null sink — the
    parent owns any real sink's file handle — and force serial execution
    so a task that itself runs a sweep cannot spawn a nested pool.
    """
    from repro.exec.context import EXEC

    OBS.registry = MetricsRegistry()
    OBS.sink = NullSink()
    EXEC.jobs = 1


def _traced_call(fn, args, kwargs, label: str, trace: dict | None):
    """Run the task body inside an ``exec.task`` span when tracing.

    *trace* re-hydrates a parent context shipped across the process
    boundary; without one the span chains onto the ambient context (the
    in-process serial path inherits the caller's open span directly).
    """
    if not TRACER.enabled:
        return fn(*args, **kwargs)
    attrs = {"label": label} if label else {}
    if trace is not None:
        with TRACER.adopt(trace), TRACER.span("exec.task", **attrs):
            return fn(*args, **kwargs)
    with TRACER.span("exec.task", **attrs):
        return fn(*args, **kwargs)


def _invoke(fn, args, kwargs, label: str = "", trace: dict | None = None):
    """Worker-side call: fault hooks, timing, counter-delta capture."""
    if FAULTS.active:
        FAULTS.fire("task.delay", label)
        FAULTS.fire("worker.kill", label)
        FAULTS.fire("task.raise", label)
    start = time.perf_counter()
    value = _traced_call(fn, args, kwargs, label, trace)
    seconds = time.perf_counter() - start
    counters = None
    if OBS.enabled:
        counters = OBS.registry.counter_values()
        OBS.registry = MetricsRegistry()  # fresh slate for the next task
    return value, seconds, counters


def _run_task_inline(task: Task):
    """Parent-process execution of one attempt, with fault hooks.

    ``worker.kill`` is inert here (the plan never kills the parent), so
    the serial path always survives the fault that broke the pool.
    """
    if FAULTS.active:
        FAULTS.fire("task.interrupt", task.label)
        FAULTS.fire("task.delay", task.label)
        FAULTS.fire("worker.kill", task.label)
        FAULTS.fire("task.raise", task.label)
    start = time.perf_counter()
    value = _traced_call(task.fn, task.args, task.kwargs, task.label, task.trace)
    return value, time.perf_counter() - start


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _all_picklable(tasks: Sequence[Task]) -> bool:
    try:
        for task in tasks:
            pickle.dumps((task.fn, task.args, task.kwargs))
    except Exception:
        return False
    return True


def _store(cache: ResultCache | None, task: Task, value, observed: bool):
    """Write a computed value back, returning its JSON-normalised form."""
    if cache is None or task.key is None:
        return value
    cache.put(task.key, value)
    if observed:
        OBS.count("exec.cache.store")
    # Return what a warm run would read back (tuples become lists, etc.)
    # so cold and warm results are structurally identical.
    return json.loads(json.dumps(value))


def _finish(
    state: _RunState, index: int, task: Task, value, cache, observed: bool
) -> None:
    """Record one computed value: cache journal first, then the slot."""
    state.results[index] = _store(cache, task, value, observed)
    state.completed += 1


def _merge_worker(counters, seconds: float, observed: bool) -> None:
    if not observed:
        return
    OBS.observe("exec.worker.time", seconds)
    OBS.count("exec.tasks")
    if counters:
        for name, amount in counters.items():
            OBS.count(name, amount)


def _task_name(task: Task) -> str:
    return task.label or getattr(task.fn, "__name__", repr(task.fn))


def _attempt_serial(
    task: Task,
    policy: RetryPolicy,
    observed: bool,
    *,
    prior_failures: int = 0,
) -> object:
    """Run one task in-process under the policy's retry budget.

    *prior_failures* counts pool-path failures already consumed, so
    errors and backoff report honest attempt totals.
    """
    failures = 0
    while True:
        try:
            value, seconds = _run_task_inline(task)
        except Exception as exc:
            if not policy.retryable(exc):
                raise
            failures += 1
            total = prior_failures + failures
            if failures >= policy.attempts:
                raise TaskError(
                    f"task {_task_name(task)!r} failed after {total} "
                    f"attempts: {exc}",
                    label=task.label,
                    attempts=total,
                ) from exc
            if observed:
                OBS.count("exec.retry")
            time.sleep(policy.backoff(task.label, total))
            continue
        if observed:
            OBS.observe("exec.worker.time", seconds)
            OBS.count("exec.tasks")
        return value


def _run_serial(
    tasks: Sequence[Task],
    pending: Sequence[int],
    state: _RunState,
    cache,
    policy: RetryPolicy,
    observed: bool,
) -> None:
    for index in pending:
        task = tasks[index]
        value = _attempt_serial(task, policy, observed)
        _finish(state, index, task, value, cache, observed)


def _harvest_done(
    tasks, futures: dict, indices, state: _RunState, cache, observed: bool
) -> set[int]:
    """Record the results of already-finished futures.

    Called on every pool-teardown path (timeout, crash, interrupt) so
    completed work survives into the cache journal; returns the indices
    whose values were recorded.
    """
    harvested: set[int] = set()
    for index in indices:
        future = futures.get(index)
        if future is None or not future.done() or future.cancelled():
            continue
        try:
            if future.exception() is not None:
                continue
        except CancelledError:
            continue
        value, seconds, counters = future.result()
        _merge_worker(counters, seconds, observed)
        _finish(state, index, tasks[index], value, cache, observed)
        harvested.add(index)
    return harvested


def _shutdown_pool(pool: ProcessPoolExecutor, *, force: bool) -> None:
    """Tear a pool down; *force* also kills workers stuck mid-task."""
    if not force:
        pool.shutdown(wait=True)
        return
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=1.0)
        except Exception:
            pass


def _run_pool(
    tasks: Sequence[Task],
    pending: Sequence[int],
    state: _RunState,
    jobs: int,
    cache,
    policy: RetryPolicy,
    observed: bool,
) -> None:
    # A forked child inherits any buffered sink output; flush first so
    # worker exits cannot replay parent bytes into a shared file. Same
    # for the span log (children then reopen their own handles).
    OBS.sink.flush()
    TRACER.flush()
    context = multiprocessing.get_context("fork")
    remaining = list(pending)
    failures = dict.fromkeys(remaining, 0)
    escalated: list[int] = []
    crashes = 0

    while remaining:
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(remaining)),
            mp_context=context,
            initializer=_worker_init,
        )
        futures: dict[int, object] = {}
        next_round: list[int] = []
        force_teardown = False
        try:
            for index in remaining:
                task = tasks[index]
                if FAULTS.active:
                    FAULTS.fire("task.interrupt", task.label)
                if failures[index]:
                    time.sleep(policy.backoff(task.label, failures[index]))
                futures[index] = pool.submit(
                    _invoke, task.fn, task.args, task.kwargs, task.label,
                    task.trace,
                )
            for position, index in enumerate(remaining):
                task = tasks[index]
                later = remaining[position + 1:]
                try:
                    value, seconds, counters = futures[index].result(
                        timeout=policy.timeout
                    )
                except TimeoutError as exc:
                    if futures[index].done():
                        # The *task* raised TimeoutError; treat it as an
                        # ordinary task failure, not a budget overrun.
                        disposition = _note_failure(
                            task, exc, failures, index, policy, observed
                        )
                        if disposition == "raise":
                            force_teardown = True
                            raise
                        (next_round if disposition == "retry"
                         else escalated).append(index)
                        continue
                    # Budget overrun: the worker may be hung. Harvest
                    # what finished, kill the pool, retry or give up.
                    failures[index] += 1
                    force_teardown = True
                    if observed:
                        OBS.count("exec.timeout")
                    harvested = _harvest_done(
                        tasks, futures, later, state, cache, observed
                    )
                    if failures[index] >= policy.attempts:
                        raise TaskTimeout(
                            f"task {_task_name(task)!r} exceeded its "
                            f"{policy.timeout:g}s budget on all "
                            f"{failures[index]} attempts",
                            label=task.label,
                            attempts=failures[index],
                        ) from None
                    if observed:
                        OBS.count("exec.retry")
                    next_round.append(index)
                    next_round.extend(i for i in later if i not in harvested)
                    break
                except BrokenProcessPool:
                    # A worker died (OOM kill, segfault, injected fault).
                    # Completed futures keep their results; everything
                    # else re-runs on a fresh pool — or, if crashes
                    # persist, in the parent where a kill cannot recur.
                    crashes += 1
                    force_teardown = True
                    if observed:
                        OBS.count("exec.worker.crash")
                    survivors = [index] + list(later)
                    harvested = _harvest_done(
                        tasks, futures, survivors, state, cache, observed
                    )
                    survivors = [i for i in survivors if i not in harvested]
                    if crashes >= policy.attempts:
                        escalated.extend(survivors)
                    else:
                        next_round.extend(survivors)
                    break
                except Exception as exc:
                    disposition = _note_failure(
                        task, exc, failures, index, policy, observed
                    )
                    if disposition == "raise":
                        force_teardown = True
                        raise
                    (next_round if disposition == "retry"
                     else escalated).append(index)
                    continue
                else:
                    _merge_worker(counters, seconds, observed)
                    _finish(state, index, task, value, cache, observed)
        except KeyboardInterrupt:
            _harvest_done(tasks, futures, remaining, state, cache, observed)
            force_teardown = True
            raise
        finally:
            _shutdown_pool(pool, force=force_teardown)
        remaining = next_round

    for index in escalated:
        task = tasks[index]
        value = _attempt_serial(
            task, policy, observed, prior_failures=failures[index]
        )
        _finish(state, index, task, value, cache, observed)


def _note_failure(
    task: Task,
    exc: Exception,
    failures: dict[int, int],
    index: int,
    policy: RetryPolicy,
    observed: bool,
) -> str:
    """Classify one pool-attempt failure: ``raise``/``retry``/``escalate``."""
    if not policy.retryable(exc):
        return "raise"
    failures[index] += 1
    if failures[index] >= policy.attempts:
        # Last chance: the serial path, with a fresh budget.
        return "escalate"
    if observed:
        OBS.count("exec.retry")
    return "retry"


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    retry: RetryPolicy | None = None,
) -> list:
    """Run *tasks* and return their values in task order.

    See the module docstring for the execution strategy, the failure
    ladder, and the determinism guarantees. *retry* defaults to
    :data:`repro.exec.resilience.DEFAULT_RETRY`.
    """
    tasks = list(tasks)
    policy = retry if retry is not None else DEFAULT_RETRY
    results: list = [None] * len(tasks)
    observed = OBS.enabled
    if observed:
        OBS.gauge("exec.jobs", jobs)

    resuming = cache is not None and read_checkpoint(cache) is not None

    tracing = TRACER.enabled
    if tracing:
        # Pool workers cannot see this thread's ambient span context, so
        # stamp it onto each task that was not given an explicit parent.
        ambient = TRACER.current()
        if ambient is not None:
            for task in tasks:
                if task.trace is None:
                    task.trace = ambient

    pending: list[int] = []
    for index, task in enumerate(tasks):
        if cache is not None and task.key is not None:
            lookup_start = time.time()
            value = cache.get(task.key)
            hit = value is not MISS
            if observed:
                OBS.hist("exec.cache.lookup.time", time.time() - lookup_start)
            if tracing:
                TRACER.emit_span(
                    "exec.cache.lookup",
                    lookup_start,
                    time.time(),
                    ctx=task.trace,
                    hit=hit,
                    label=task.label or None,
                )
            if hit:
                results[index] = value
                if observed:
                    OBS.count("exec.cache.hit")
                    if resuming:
                        OBS.count("exec.resume.reused")
                continue
            if observed:
                OBS.count("exec.cache.miss")
        pending.append(index)

    state = _RunState(results=results, completed=len(tasks) - len(pending))

    use_pool = jobs > 1 and len(pending) > 1 and _fork_available()
    if use_pool and not _all_picklable([tasks[i] for i in pending]):
        use_pool = False
        if observed:
            OBS.count("exec.pool.fallback")

    try:
        if use_pool:
            _run_pool(tasks, pending, state, jobs, cache, policy, observed)
        else:
            _run_serial(tasks, pending, state, cache, policy, observed)
    except KeyboardInterrupt:
        total = len(tasks)
        if cache is not None:
            write_checkpoint(cache, completed=state.completed, total=total)
            hint = (
                "completed results are checkpointed in the result cache; "
                "re-run the same command to resume"
            )
        else:
            hint = "no result cache is configured, so a re-run starts over"
        raise RunInterrupted(
            f"run interrupted after {state.completed}/{total} tasks ({hint})",
            completed=state.completed,
            total=total,
        ) from None

    if cache is not None and pending:
        # This call made fresh progress past any checkpoint; the next
        # interruption starts a new resume cycle.
        clear_checkpoint(cache)
    return results
