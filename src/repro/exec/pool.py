"""Deterministic process-pool task runner with result-cache integration.

:func:`run_tasks` is the execution layer's engine: it takes an ordered
list of :class:`Task` items and returns their values *in task order*,
regardless of how many workers computed them or which came from the
cache. That ordering guarantee is what makes parallel sweep grids and
EXPERIMENTS.md regeneration byte-identical to serial runs.

Execution strategy, per call:

1. Tasks carrying a cache key are looked up first; hits skip execution.
2. Remaining tasks run on a ``ProcessPoolExecutor`` (``fork`` start
   method) when ``jobs > 1``, more than one task is pending, and every
   pending task pickles. Otherwise they run serially in-process — a
   closure-based measure function degrades gracefully rather than
   failing.
3. Computed values are written back to the cache. Values that flow
   through the cache are normalised through a JSON round-trip *before*
   being returned, so a cold run returns bit-identical structures to the
   warm run that follows it.

Observability (all via :data:`repro.obs.OBS`, no-ops when disabled):
``exec.cache.hit`` / ``exec.cache.miss`` / ``exec.cache.store`` counters,
an ``exec.tasks`` counter, an ``exec.jobs`` gauge, a per-task
``exec.worker.time`` timer, and an ``exec.pool.fallback`` counter when
unpicklable work forces the serial path. Workers run with a private
metrics registry and a null sink; their *counter* deltas are merged into
the parent in task order (deterministic), while worker-side events and
timer samples are intentionally dropped — event streams stay a
serial-execution feature.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.exec.cache import MISS, ResultCache
from repro.obs import OBS, MetricsRegistry, NullSink

__all__ = ["Task", "run_tasks"]


@dataclass(slots=True)
class Task:
    """One unit of work: a picklable callable plus its arguments.

    *key* is the cache key material (canonical-JSON-able dict) or
    ``None`` for never-cached work; when a key is given the value must be
    JSON data. *label* is only used for diagnostics.
    """

    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    key: dict | None = None
    label: str = ""


def _worker_init() -> None:
    """Per-worker (forked child) initialisation.

    The child inherits the parent's :data:`OBS` facade and ``EXEC``
    context. Give it a private registry and a null sink — the parent owns
    any real sink's file handle — and force serial execution so a task
    that itself runs a sweep cannot spawn a nested pool.
    """
    from repro.exec.context import EXEC

    OBS.registry = MetricsRegistry()
    OBS.sink = NullSink()
    EXEC.jobs = 1


def _invoke(fn, args, kwargs):
    """Worker-side call: time it and capture the counter deltas."""
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    seconds = time.perf_counter() - start
    counters = None
    if OBS.enabled:
        counters = OBS.registry.counter_values()
        OBS.registry = MetricsRegistry()  # fresh slate for the next task
    return value, seconds, counters


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _all_picklable(tasks: Sequence[Task]) -> bool:
    try:
        for task in tasks:
            pickle.dumps((task.fn, task.args, task.kwargs))
    except Exception:
        return False
    return True


def _store(cache: ResultCache | None, task: Task, value, observed: bool):
    """Write a computed value back, returning its JSON-normalised form."""
    if cache is None or task.key is None:
        return value
    cache.put(task.key, value)
    if observed:
        OBS.count("exec.cache.store")
    # Return what a warm run would read back (tuples become lists, etc.)
    # so cold and warm results are structurally identical.
    return json.loads(json.dumps(value))


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list:
    """Run *tasks* and return their values in task order.

    See the module docstring for the execution strategy and the
    determinism guarantees.
    """
    tasks = list(tasks)
    results: list = [None] * len(tasks)
    observed = OBS.enabled
    if observed:
        OBS.gauge("exec.jobs", jobs)

    pending: list[int] = []
    for index, task in enumerate(tasks):
        if cache is not None and task.key is not None:
            value = cache.get(task.key)
            if value is not MISS:
                results[index] = value
                if observed:
                    OBS.count("exec.cache.hit")
                continue
            if observed:
                OBS.count("exec.cache.miss")
        pending.append(index)

    use_pool = jobs > 1 and len(pending) > 1 and _fork_available()
    if use_pool and not _all_picklable([tasks[i] for i in pending]):
        use_pool = False
        if observed:
            OBS.count("exec.pool.fallback")

    if use_pool:
        # A forked child inherits any buffered sink output; flush first so
        # worker exits cannot replay parent bytes into a shared file.
        OBS.sink.flush()
        context = multiprocessing.get_context("fork")
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
        ) as pool:
            futures = [
                (index, pool.submit(
                    _invoke, tasks[index].fn, tasks[index].args,
                    tasks[index].kwargs,
                ))
                for index in pending
            ]
            for index, future in futures:
                value, seconds, counters = future.result()
                if observed:
                    OBS.observe("exec.worker.time", seconds)
                    OBS.count("exec.tasks")
                    if counters:
                        for name, amount in counters.items():
                            OBS.count(name, amount)
                results[index] = _store(cache, tasks[index], value, observed)
    else:
        for index in pending:
            task = tasks[index]
            start = time.perf_counter()
            value = task.fn(*task.args, **task.kwargs)
            if observed:
                OBS.observe("exec.worker.time", time.perf_counter() - start)
                OBS.count("exec.tasks")
            results[index] = _store(cache, task, value, observed)
    return results
