"""Stable cache keys: canonical JSON hashing, the code epoch, workload ids.

Every entry in the on-disk result cache (:mod:`repro.exec.cache`) is
addressed by the SHA-256 of *canonical JSON* key material — a plain dict
describing everything that determines the cached value: the workload
spec, the simulator configuration, the trace seed, and the *code epoch*.

The code epoch is a fingerprint of the ``repro`` source tree itself.
Including it in every key means a cache never has to be manually
invalidated after a code change: edit any ``.py`` file under
``src/repro`` and every previous entry simply stops matching.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "canonical_key",
    "try_canonical_key",
    "stable_hash",
    "code_epoch",
    "workload_key",
    "sampling_key",
]

#: Memoized per-process code fingerprint (the source tree cannot change
#: under a running simulation).
_EPOCH: str | None = None


def canonical_key(material: object) -> str:
    """Render key material as canonical JSON (sorted keys, no whitespace).

    Tuples serialise as arrays, so structurally equal tuple/list material
    produces the same key. Non-JSON material (objects, NaN) is rejected —
    a key that cannot be serialised deterministically cannot be stable.
    """
    try:
        return json.dumps(
            material, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"cache key material is not canonical JSON: {exc}"
        ) from exc


def try_canonical_key(material: object) -> str | None:
    """:func:`canonical_key`, or ``None`` for non-canonicalisable material.

    Used when reading *untrusted* key material back from disk — a
    corrupted cache entry may deserialise to something (``NaN``,
    ``Infinity``) that canonical JSON rejects, and the reader wants a
    quarantine decision, not an exception.
    """
    try:
        return canonical_key(material)
    except ConfigurationError:
        return None


def stable_hash(material: object) -> str:
    """SHA-256 hex digest of the canonical JSON form of *material*."""
    return hashlib.sha256(canonical_key(material).encode("utf-8")).hexdigest()


def code_epoch() -> str:
    """Fingerprint of every ``.py`` file under the installed repro package.

    Stable across processes and machines for identical sources; changes
    whenever any source file changes, which retires all cached results
    computed by the old code.
    """
    global _EPOCH
    if _EPOCH is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _EPOCH = digest.hexdigest()[:16]
    return _EPOCH


def sampling_key() -> dict[str, object] | None:
    """Key material isolating sampled-engine results from exact ones.

    Exact engines are bit-identical, so cache keys never mention the
    engine. Sampled runs produce *estimates* that depend on the rate,
    seed, and stratum count — results from different sampling parameters
    (or from exact runs) must never collide. Returns None whenever the
    current configuration cannot sample (keys stay byte-identical to
    historical exact keys); otherwise a dict of the sampling parameters.

    Conservative by design: under ``auto`` with a configured rate the
    decision to sample is per-trace-size, which key material cannot see,
    so any configuration that *could* sample gets the sampled key — the
    worst case is a cache miss on an exact result, never a wrong hit.

    Imports lazily: key construction must stay numpy-free unless
    sampling is actually in play.
    """
    from repro.mem import engines

    selection = engines.current_engine()
    if selection not in ("sampled", "auto"):
        return None
    from repro.mem import sampled

    config = sampled.current_sampling()
    if config is None:
        if selection != "sampled":
            return None
        config = sampled.SamplingConfig(sampled.DEFAULT_SAMPLE_RATE)
    return {
        "engine": "sampled",
        "rate": config.effective_rate,
        "seed": config.seed,
        "strata": config.strata,
    }


def workload_key(workload) -> dict[str, object]:
    """Key material identifying one workload instance.

    The generator class (module-qualified), the benchmark name, and the
    footprint scale pin the trace stream; the seed and reference budget
    belong to the *measurement* part of the key, supplied by the caller.

    Workloads exposing ``key_material()`` (scenario workloads, whose
    name is only a label) contribute that material too, so two scenarios
    can never collide — and no scenario can collide with a named
    benchmark, whose key has no ``extra`` entry and a different class.
    """
    cls = type(workload)
    material: dict[str, object] = {
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "name": workload.name,
        "scale": workload.scale,
    }
    describe = getattr(workload, "key_material", None)
    if callable(describe):
        material["extra"] = describe()
    return material
