"""repro.exec — the execution layer: parallel runs, caching, resilience.

The paper's evaluation is a grid of *independent* simulations —
(benchmark x cache size x configuration) cells — and highly repetitive
across runs. This package exploits both properties, and keeps long runs
alive through the failures that parallel full-trace sweeps attract:

* :mod:`repro.exec.pool` — a deterministic, fault-tolerant process-pool
  runner (:func:`run_tasks`) that fans tasks across CPU cores, merges
  results in task order, survives worker death (pool rebuild + serial
  escalation), retries failing tasks with deterministic backoff, and
  turns SIGINT into a checkpointed, resumable interruption;
* :mod:`repro.exec.cache` — a content-addressed on-disk result cache
  (:class:`ResultCache`, default ``.repro-cache/``) keyed by a stable
  hash of (workload spec, simulator config, trace seed, code epoch); it
  doubles as the crash journal, and quarantines corrupt entries;
* :mod:`repro.exec.tiered` — an in-memory hot tier
  (:class:`HotTier`, size-aware LRU over serialized entry bytes) layered
  in front of the disk cache behind one :class:`TieredCache` facade; its
  access log feeds ``repro cache mrc`` (the repo's own MRC machinery
  analysing its own serving cache);
* :mod:`repro.exec.resilience` — the :class:`RetryPolicy` and the
  checkpoint/resume marker;
* :mod:`repro.exec.faults` — the fault-injection harness
  (``REPRO_FAULTS`` / ``--inject-fault``) that kills workers, raises in
  tasks, corrupts cache entries, and delays tasks on demand so every
  recovery path is exercised in tests rather than trusted;
* :mod:`repro.exec.keys` — the canonical hashing behind cache keys;
* :mod:`repro.exec.context` — the process-wide :data:`EXEC` context
  (jobs + cache + retry policy) that ``sweep_grid``/``evaluate_grid``
  consult, in the same spirit as :data:`repro.obs.OBS`.

Defaults are serial and uncached — identical behaviour to a build
without this layer. Entry points opt in: the CLI via ``--jobs`` /
``--no-cache`` / ``--retries`` / ``--task-timeout`` / ``--inject-fault``,
pytest via ``--jobs`` / ``--exec-cache``, and
``scripts/regenerate_experiments.py`` via its own flags. See
docs/performance.md for the cache layout and measured numbers, and
docs/robustness.md for the failure taxonomy and recovery ladder.
"""

from __future__ import annotations

from repro.exec.cache import (
    CACHE_SCHEMA,
    MISS,
    QUARANTINE_DIR,
    CacheStats,
    ResultCache,
)
from repro.exec.context import (
    DEFAULT_CACHE_DIR,
    EXEC,
    ExecContext,
    configure_exec,
    default_cache_dir,
    execution,
)
from repro.exec.faults import (
    FAULT_POINTS,
    FAULTS,
    FaultPlan,
    FaultSpec,
    configure_faults,
    injected_faults,
    parse_fault_spec,
)
from repro.exec.keys import (
    canonical_key,
    code_epoch,
    sampling_key,
    stable_hash,
    try_canonical_key,
    workload_key,
)
from repro.exec.pool import Task, run_tasks
from repro.exec.tiered import (
    DEFAULT_HOT_BYTES,
    HotTier,
    TieredCache,
    read_access_log,
)
from repro.exec.resilience import (
    DEFAULT_RETRY,
    RetryPolicy,
    clear_checkpoint,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "CACHE_SCHEMA",
    "MISS",
    "QUARANTINE_DIR",
    "CacheStats",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "EXEC",
    "ExecContext",
    "configure_exec",
    "default_cache_dir",
    "execution",
    "FAULT_POINTS",
    "FAULTS",
    "FaultPlan",
    "FaultSpec",
    "configure_faults",
    "injected_faults",
    "parse_fault_spec",
    "canonical_key",
    "code_epoch",
    "sampling_key",
    "stable_hash",
    "try_canonical_key",
    "workload_key",
    "Task",
    "run_tasks",
    "DEFAULT_HOT_BYTES",
    "HotTier",
    "TieredCache",
    "read_access_log",
    "DEFAULT_RETRY",
    "RetryPolicy",
    "clear_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]
