"""repro.exec — the execution layer: parallel runs + a persistent cache.

The paper's evaluation is a grid of *independent* simulations —
(benchmark x cache size x configuration) cells — and highly repetitive
across runs. This package exploits both properties:

* :mod:`repro.exec.pool` — a deterministic process-pool runner
  (:func:`run_tasks`) that fans tasks across CPU cores and merges
  results in task order, so parallel output is byte-identical to serial;
* :mod:`repro.exec.cache` — a content-addressed on-disk result cache
  (:class:`ResultCache`, default ``.repro-cache/``) keyed by a stable
  hash of (workload spec, simulator config, trace seed, code epoch), so
  re-running an experiment recomputes only what changed;
* :mod:`repro.exec.keys` — the canonical hashing behind those keys;
* :mod:`repro.exec.context` — the process-wide :data:`EXEC` context
  (jobs + cache) that ``sweep_grid``/``evaluate_grid`` consult, in the
  same spirit as :data:`repro.obs.OBS`.

Defaults are serial and uncached — identical behaviour to a build
without this layer. Entry points opt in: the CLI via ``--jobs`` /
``--no-cache``, pytest via ``--jobs`` / ``--exec-cache``, and
``scripts/regenerate_experiments.py`` via its own flags. See
docs/performance.md for usage, cache layout, and measured numbers.
"""

from __future__ import annotations

from repro.exec.cache import CACHE_SCHEMA, MISS, CacheStats, ResultCache
from repro.exec.context import (
    DEFAULT_CACHE_DIR,
    EXEC,
    ExecContext,
    configure_exec,
    default_cache_dir,
    execution,
)
from repro.exec.keys import canonical_key, code_epoch, stable_hash, workload_key
from repro.exec.pool import Task, run_tasks

__all__ = [
    "CACHE_SCHEMA",
    "MISS",
    "CacheStats",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "EXEC",
    "ExecContext",
    "configure_exec",
    "default_cache_dir",
    "execution",
    "canonical_key",
    "code_epoch",
    "stable_hash",
    "workload_key",
    "Task",
    "run_tasks",
]
