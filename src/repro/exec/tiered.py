"""Two-tier result cache: an in-memory hot tier over the disk cache.

The on-disk :class:`~repro.exec.cache.ResultCache` made repeated work
free across processes and restarts, but every hit still costs a file
open, a read, and a JSON parse. Under serving load the same handful of
results is fetched thousands of times, so this module adds the tier the
paper's memory-system argument predicts: a small, fast store in front of
a large, slow one, with placement driven by measured reuse.

:class:`HotTier`
    A size-aware LRU over *serialized entry bytes*: the budget is a byte
    count, not an entry count, so one huge sweep result cannot silently
    evict a thousand small ones unnoticed — it visibly costs its size.
    Hit/miss/eviction counters are kept on the instance and mirrored to
    the obs registry (``exec.cache.hot.*``). Every lookup appends the
    entry digest to an access log (``hot-tier.accesses`` under the cache
    root, O_APPEND so concurrent writers interleave whole lines), which
    is exactly the reuse stream a miss-ratio curve needs:
    ``repro cache mrc`` replays it through :mod:`repro.trace.mrc` — the
    repo's own Mattson machinery analysing the repo's own serving cache.

:class:`TieredCache`
    The one get/put facade the exec and serve layers use. ``get`` probes
    the hot tier, falls through to disk on a miss, and promotes disk
    hits; ``put`` writes disk first (durability), then the hot tier.
    It is API-compatible with :class:`ResultCache` (``root``, ``get``,
    ``put``, ``stats``, ``clear``, hit/miss/store/corrupt counters), so
    :func:`repro.exec.pool.run_tasks`, the checkpoint machinery, and the
    serve scheduler need no changes to run tiered.

Fork safety
-----------
Pool workers fork while the parent's hot tier is populated. The tier is
plain process memory, so the child inherits a *snapshot* that the parent
keeps mutating — sharing it would be incoherent (and the inherited lock
state unsafe). Every operation therefore checks ``os.getpid()`` against
the creating pid and, after a fork, discards the inherited entries and
re-opens the access log: the child starts cold and falls through to the
disk tier, which is fork-safe by construction (atomic same-filesystem
renames). A child can therefore never serve a hot entry the parent
evicted or that predates the fork — misses are the worst case, never
stale data. Thread safety within one process is a plain lock around the
LRU structure; the disk tier needs none beyond what it already has.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import ConfigurationError
from repro.exec.cache import MISS, CacheStats, ResultCache
from repro.exec.keys import canonical_key, stable_hash
from repro.obs import OBS

__all__ = [
    "ACCESS_LOG_NAME",
    "DEFAULT_HOT_BYTES",
    "HotTier",
    "TieredCache",
    "read_access_log",
]

#: Default hot-tier byte budget. Result envelopes are a few hundred bytes
#: to a few tens of KB, so this holds on the order of 10^3..10^5 entries.
DEFAULT_HOT_BYTES = 64 << 20

#: Access-log filename under the cache root (one digest per line).
ACCESS_LOG_NAME = "hot-tier.accesses"


class HotTier:
    """Size-aware LRU of serialized cache entries, keyed by digest."""

    def __init__(
        self,
        budget_bytes: int = DEFAULT_HOT_BYTES,
        *,
        log_path: str | os.PathLike | None = None,
    ) -> None:
        if (
            isinstance(budget_bytes, bool)
            or not isinstance(budget_bytes, int)
            or budget_bytes <= 0
        ):
            raise ConfigurationError(
                f"hot-tier byte budget must be a positive integer, "
                f"got {budget_bytes!r}"
            )
        self.budget_bytes = budget_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._log_path = os.fspath(log_path) if log_path is not None else None
        self._log_fd: int | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0
        #: Entries refused because they alone exceed the byte budget.
        self.oversize = 0

    # -- fork / logging internals --------------------------------------------------

    def _maybe_reset_after_fork(self) -> None:
        """Discard inherited state in a forked child (lock already held)."""
        if os.getpid() == self._pid:
            return
        self._pid = os.getpid()
        self._entries = OrderedDict()
        self._bytes = 0
        # The inherited fd offset is shared with the parent; O_APPEND
        # makes writes safe, but re-opening keeps lifetimes independent.
        if self._log_fd is not None:
            try:
                os.close(self._log_fd)
            except OSError:
                pass
            self._log_fd = None

    def _log_access(self, digest: str) -> None:
        if self._log_path is None:
            return
        if self._log_fd is None:
            try:
                os.makedirs(os.path.dirname(self._log_path), exist_ok=True)
                self._log_fd = os.open(
                    self._log_path,
                    os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                    0o644,
                )
            except OSError:
                self._log_path = None  # give up quietly; logging is advisory
                return
        try:
            # One whole line per write: O_APPEND keeps concurrent
            # processes from interleaving partial lines.
            os.write(self._log_fd, (digest + "\n").encode("ascii"))
        except OSError:
            pass

    # -- the LRU -------------------------------------------------------------------

    def get(self, digest: str) -> bytes | None:
        """The serialized entry for *digest*, or None; logs the access."""
        with self._lock:
            self._maybe_reset_after_fork()
            self._log_access(digest)
            payload = self._entries.get(digest)
            if payload is None:
                self.misses += 1
                if OBS.enabled:
                    OBS.count("exec.cache.hot.miss")
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            if OBS.enabled:
                OBS.count("exec.cache.hot.hit")
            return payload

    def put(self, digest: str, payload: bytes) -> None:
        """Insert (or refresh) one serialized entry, evicting LRU-first."""
        with self._lock:
            self._maybe_reset_after_fork()
            if len(payload) > self.budget_bytes:
                # Refuse rather than evict the whole tier for one entry.
                self.oversize += 1
                return
            previous = self._entries.pop(digest, None)
            if previous is not None:
                self._bytes -= len(previous)
            self._entries[digest] = payload
            self._bytes += len(payload)
            self.stores += 1
            while self._bytes > self.budget_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1
                if OBS.enabled:
                    OBS.count("exec.cache.hot.evict")

    def clear(self) -> int:
        """Drop every entry; returns how many were resident."""
        with self._lock:
            self._maybe_reset_after_fork()
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            return dropped

    def __len__(self) -> int:
        with self._lock:
            self._maybe_reset_after_fork()
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            self._maybe_reset_after_fork()
            return self._bytes

    def keys(self) -> list[str]:
        """Digests in LRU-to-MRU order (eviction order), for tests/ops."""
        with self._lock:
            self._maybe_reset_after_fork()
            return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Counters + occupancy as JSON data (``/healthz``)."""
        with self._lock:
            self._maybe_reset_after_fork()
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "oversize": self.oversize,
            }

    def __repr__(self) -> str:
        return (
            f"<HotTier {len(self._entries)} entries "
            f"{self._bytes}/{self.budget_bytes}B hits={self.hits} "
            f"misses={self.misses} evictions={self.evictions}>"
        )


def read_access_log(root: str | os.PathLike) -> list[str]:
    """The digests recorded under *root*, in access order.

    Lines that are not plausible digests (torn writes from a crashed
    process, stray whitespace) are dropped rather than poisoning the
    reuse stream.
    """
    path = Path(root) / ACCESS_LOG_NAME
    try:
        text = path.read_text(encoding="ascii", errors="replace")
    except OSError:
        return []
    digests = []
    for line in text.splitlines():
        token = line.strip()
        if token and all(c in "0123456789abcdef" for c in token):
            digests.append(token)
    return digests


class TieredCache:
    """Hot tier + disk cache behind the :class:`ResultCache` interface."""

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        hot_bytes: int = DEFAULT_HOT_BYTES,
        log_accesses: bool = True,
    ) -> None:
        self.disk = ResultCache(root)
        log_path = (
            Path(self.disk.root) / ACCESS_LOG_NAME if log_accesses else None
        )
        self.hot = HotTier(hot_bytes, log_path=log_path)

    # -- ResultCache-compatible surface --------------------------------------------

    @property
    def root(self) -> Path:
        return self.disk.root

    @property
    def hits(self) -> int:
        """Total hits across both tiers (what a CLI run reports)."""
        return self.hot.hits + self.disk.hits

    @property
    def misses(self) -> int:
        """True misses: lookups that fell through both tiers."""
        return self.disk.misses

    @property
    def stores(self) -> int:
        return self.disk.stores

    @property
    def corrupt(self) -> int:
        return self.disk.corrupt

    def get(self, material: object) -> object:
        """The cached value for *material*, or the exec-cache MISS sentinel."""
        canonical = canonical_key(material)
        digest = stable_hash(material)
        payload = self.hot.get(digest)
        if payload is not None:
            try:
                entry = json.loads(payload.decode("utf-8"))
            except ValueError:
                entry = None
            if (
                isinstance(entry, dict)
                and canonical_key(entry.get("key")) == canonical
            ):
                return entry["value"]
            # A mangled or colliding hot entry degrades to a miss, the
            # same contract the disk tier honours.
        value = self.disk.get(material)
        if value is not MISS:
            self.hot.put(digest, self._serialize(material, value))
            if OBS.enabled:
                OBS.count("exec.cache.disk.hit")
        return value

    def put(self, material: object, value: object) -> None:
        """Store durably on disk first, then populate the hot tier."""
        self.disk.put(material, value)  # raises on non-JSON values
        self.hot.put(stable_hash(material), self._serialize(material, value))

    @staticmethod
    def _serialize(material: object, value: object) -> bytes:
        return json.dumps(
            {"key": material, "value": value}, sort_keys=True
        ).encode("utf-8")

    def stats(self) -> CacheStats:
        return self.disk.stats()

    def clear(self) -> int:
        """Empty both tiers and the access log; returns disk entries removed."""
        self.hot.clear()
        if self.hot._log_path is not None:
            try:
                os.unlink(self.hot._log_path)
            except OSError:
                pass
        return self.disk.clear()

    def __repr__(self) -> str:
        return f"<TieredCache {self.disk!r} hot={self.hot!r}>"
