"""Fault-injection harness: exercise every recovery path on demand.

A fault *plan* is a set of specs, each naming a fault point in the
execution stack, an optional label match, a firing budget, and an
optional numeric parameter. The spec string syntax (used by the CLI's
``--inject-fault`` flag and the ``REPRO_FAULTS`` environment variable)
is ``point[@match][*times][=param]``, with multiple specs joined by
``;``::

    worker.kill@table7:Swm      # kill the worker running the Swm row
    task.raise@Swm*2            # raise FaultInjected twice
    task.delay@Swm=0.5          # sleep 0.5s before the task
    cache.corrupt*3             # garbage the next three stored entries
    task.interrupt@table8       # simulate Ctrl-C before a table8 task
    shard.kill@/v1/simulate     # crash a serve shard mid-request
    conn.drop@POST*3            # sever three router->shard round trips
    shard.slow@/v1/jobs=0.5     # stall a shard 0.5s on matching requests

Fault points
------------
``task.raise``
    Raise :class:`~repro.errors.FaultInjected` in place of running a
    matching task (fires wherever the task runs: worker or parent).
``task.delay``
    Sleep ``param`` seconds before running a matching task.
``worker.kill``
    ``os._exit`` the pool worker about to run a matching task — a hard
    crash, surfacing as ``BrokenProcessPool`` in the parent. Inert
    outside pool workers, so serial escalation always survives it.
``task.interrupt``
    Raise ``KeyboardInterrupt`` in the parent before dispatching a
    matching task — a deterministic stand-in for SIGINT.
``cache.corrupt`` / ``cache.truncate``
    Damage a just-stored result-cache entry (garbage / half the payload).
    The match is tested against the entry's canonical key text, so
    ``cache.corrupt@Swm`` hits only that workload's rows.
``sim.chunk``
    Raise :class:`~repro.errors.FaultInjected` at a chunk boundary in
    :meth:`Cache.simulate_chunked`; the label is ``<trace name>:<chunk
    index>``.
``shard.kill``
    ``os._exit`` a forked serve shard after it has read a matching
    request but before answering — a mid-request crash the router's
    supervision must absorb. The label is ``shard<i>:<METHOD> <path>``.
    Inert in the process that armed the plan (a single-worker ``repro
    serve`` or a test harness is never its own chaos victim).
``shard.slow``
    Sleep ``param`` seconds inside a serve shard before routing a
    matching request — latency injection for timeout/drain coverage.
``conn.drop``
    Sever one router->shard proxy round trip: the router closes a pooled
    worker connection and treats the request as a connection failure, so
    failover, Retry-After, and circuit-breaker accounting all run.
    Enacted by the router via :meth:`FaultPlan.take` (same label shape
    as ``shard.kill``), never via :meth:`FaultPlan.fire`.

Firing budgets and scope
------------------------
Each spec fires at most ``times`` times (default 1). Budgets are counted
per process by default — a forked worker inherits the parent's unspent
specs. When the plan is configured with a *scope directory* (the CLI
always does this), budgets are instead claimed as ``O_EXCL`` token files
in that directory, shared across the parent and every worker: a
``*1`` spec then fires exactly once per run no matter which process
reaches it first, which is what makes "fail once, then recover" tests
deterministic under a process pool.

The module-global :data:`FAULTS` mirrors the :data:`repro.obs.OBS` /
:data:`repro.exec.EXEC` pattern: hot paths guard with ``if
FAULTS.active:`` so a build with no faults configured pays one attribute
load and a branch.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError, FaultInjected

__all__ = [
    "FAULT_POINTS",
    "FaultSpec",
    "FaultPlan",
    "FAULTS",
    "parse_fault_spec",
    "configure_faults",
    "injected_faults",
]

#: Every hook the execution stack exposes; specs naming anything else are
#: rejected at parse time.
FAULT_POINTS = (
    "task.raise",
    "task.delay",
    "worker.kill",
    "task.interrupt",
    "cache.corrupt",
    "cache.truncate",
    "sim.chunk",
    "shard.kill",
    "shard.slow",
    "conn.drop",
)


@dataclass(slots=True)
class FaultSpec:
    """One parsed fault: where it fires, on what, how often, with what."""

    point: str
    match: str = ""
    times: int = 1
    param: float = 0.0
    #: Per-process firings left (ignored when the plan is scope-backed).
    remaining: int = 1

    def describe(self) -> str:
        text = self.point
        if self.match:
            text += f"@{self.match}"
        if self.times != 1:
            text += f"*{self.times}"
        if self.param:
            text += f"={self.param:g}"
        return text


def _parse_one(text: str) -> FaultSpec:
    body = text.strip()
    param = 0.0
    if "=" in body:
        body, param_text = body.rsplit("=", 1)
        try:
            param = float(param_text)
        except ValueError as exc:
            raise ConfigurationError(
                f"fault spec {text!r}: parameter {param_text!r} is not a number"
            ) from exc
        if param < 0:
            raise ConfigurationError(
                f"fault spec {text!r}: parameter must be >= 0"
            )
    times = 1
    if "*" in body:
        body, times_text = body.rsplit("*", 1)
        try:
            times = int(times_text)
        except ValueError as exc:
            raise ConfigurationError(
                f"fault spec {text!r}: count {times_text!r} is not an integer"
            ) from exc
        if times < 1:
            raise ConfigurationError(
                f"fault spec {text!r}: count must be >= 1"
            )
    match = ""
    if "@" in body:
        body, match = body.split("@", 1)
    point = body.strip()
    if point not in FAULT_POINTS:
        raise ConfigurationError(
            f"fault spec {text!r}: unknown fault point {point!r}; "
            f"choose from {', '.join(FAULT_POINTS)}"
        )
    return FaultSpec(
        point=point, match=match, times=times, param=param, remaining=times
    )


def parse_fault_spec(spec: str) -> list[FaultSpec]:
    """Parse a ``;``-joined spec string into :class:`FaultSpec` items."""
    specs = [_parse_one(part) for part in spec.split(";") if part.strip()]
    if not specs:
        raise ConfigurationError(f"fault spec {spec!r} names no faults")
    return specs


class FaultPlan:
    """The active set of fault specs, with firing-budget bookkeeping."""

    __slots__ = ("specs", "active", "parent_pid", "scope_dir")

    def __init__(self) -> None:
        self.specs: list[FaultSpec] = []
        self.active = False
        self.parent_pid = os.getpid()
        self.scope_dir: str | None = None

    def load(
        self, specs: list[FaultSpec], *, scope_dir: str | os.PathLike | None = None
    ) -> None:
        self.specs = specs
        self.active = bool(specs)
        self.parent_pid = os.getpid()
        self.scope_dir = os.fspath(scope_dir) if scope_dir is not None else None

    def reset(self) -> None:
        self.load([])

    # -- firing ---------------------------------------------------------------

    def _claim(self, spec_id: int, spec: FaultSpec) -> bool:
        """Spend one firing of *spec*, honouring the budget scope."""
        if self.scope_dir is None:
            if spec.remaining <= 0:
                return False
            spec.remaining -= 1
            return True
        # Cross-process budget: one O_EXCL token file per allowed firing.
        os.makedirs(self.scope_dir, exist_ok=True)
        for slot in range(spec.times):
            token = os.path.join(self.scope_dir, f"fault-{spec_id}-{slot}")
            try:
                os.close(os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                continue
            return True
        return False

    def take(self, point: str, label: str = "") -> FaultSpec | None:
        """Claim a firing of *point* for *label*, or None when none match.

        Callers that enact the fault themselves (the cache's corruption
        points) use this directly; everything else goes through
        :meth:`fire`.
        """
        if not self.active:
            return None
        for spec_id, spec in enumerate(self.specs):
            if spec.point != point or spec.match not in label:
                continue
            if self._claim(spec_id, spec):
                return spec
        return None

    def fire(self, point: str, label: str = "") -> bool:
        """Claim and *enact* a firing of *point*; True if one fired."""
        if not self.active:
            return False
        if point in ("worker.kill", "shard.kill") and (
            os.getpid() == self.parent_pid
        ):
            # Never kill the process that armed the plan: serial
            # escalation must survive the fault that broke the pool, and
            # a single-worker server (or the router itself) must never be
            # its own chaos victim. The budget is left unspent.
            return False
        spec = self.take(point, label)
        if spec is None:
            return False
        if point in ("task.raise", "sim.chunk"):
            raise FaultInjected(
                f"injected fault {spec.describe()} fired at {label!r}"
            )
        if point in ("task.delay", "shard.slow"):
            time.sleep(spec.param)
        elif point == "worker.kill":
            os._exit(17)
        elif point == "shard.kill":
            os._exit(21)
        elif point == "task.interrupt":
            raise KeyboardInterrupt(
                f"injected fault {spec.describe()} fired at {label!r}"
            )
        return True

    def __repr__(self) -> str:
        if not self.active:
            return "<FaultPlan inactive>"
        return "<FaultPlan " + "; ".join(s.describe() for s in self.specs) + ">"


#: The process-wide plan; forked pool workers inherit it.
FAULTS = FaultPlan()


def configure_faults(
    spec: str | None, *, scope_dir: str | os.PathLike | None = None
) -> FaultPlan:
    """(Re)load :data:`FAULTS` from a spec string; ``None`` deactivates."""
    if spec is None:
        FAULTS.reset()
    else:
        FAULTS.load(parse_fault_spec(spec), scope_dir=scope_dir)
    return FAULTS


@contextmanager
def injected_faults(
    spec: str, *, scope_dir: str | os.PathLike | None = None
) -> Iterator[FaultPlan]:
    """Activate a fault plan for a block, restoring the prior plan after."""
    prior = (FAULTS.specs, FAULTS.active, FAULTS.parent_pid, FAULTS.scope_dir)
    configure_faults(spec, scope_dir=scope_dir)
    try:
        yield FAULTS
    finally:
        (
            FAULTS.specs,
            FAULTS.active,
            FAULTS.parent_pid,
            FAULTS.scope_dir,
        ) = prior
