"""Content-addressed on-disk result cache backing the execution layer.

Layout (default root ``.repro-cache/``, override with ``REPRO_CACHE_DIR``
or the ``--cache-dir`` flags)::

    .repro-cache/
      ab/
        abcdef...0123.json    # one JSON entry per cached result

Each entry records its full key material alongside the value::

    {"schema": "repro.exec-cache/v1", "key": {...}, "value": ...}

``get`` re-verifies the stored key against the requested material, so a
hash collision or a truncated/corrupted file degrades to a miss, never to
a wrong answer. Writes go through a temp file plus :func:`os.replace`,
making concurrent writers (parallel sweep workers) safe: the last writer
wins with a complete entry.

Invalidation is purely key-driven: every key includes the code epoch
(:func:`repro.exec.keys.code_epoch`), so editing any source file retires
all prior entries. ``repro cache clear`` exists for reclaiming disk, not
for correctness.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.exec.keys import canonical_key, stable_hash

__all__ = ["CACHE_SCHEMA", "MISS", "CacheStats", "ResultCache"]

CACHE_SCHEMA = "repro.exec-cache/v1"

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value — the sweep grids store it for "<<<" cells).
MISS = object()


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time summary of what is on disk under the cache root."""

    root: str
    entries: int
    total_bytes: int

    def describe(self) -> str:
        return (
            f"cache {self.root}: {self.entries} entries, "
            f"{self.total_bytes:,} bytes"
        )


class ResultCache:
    """JSON-backed store of computed results, addressed by key material.

    Instances also track session counters (``hits``/``misses``/``stores``)
    so callers can report what a run actually reused without consulting
    the metrics registry.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- lookup ---------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, material: object) -> object:
        """The cached value for *material*, or the module sentinel MISS."""
        canonical = canonical_key(material)
        path = self._path(stable_hash(material))
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return MISS
        try:
            entry = json.loads(text)
        except ValueError:
            self.misses += 1
            return MISS
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA
            or "value" not in entry
            or canonical_key(entry.get("key")) != canonical
        ):
            self.misses += 1
            return MISS
        self.hits += 1
        return entry["value"]

    def put(self, material: object, value: object) -> None:
        """Store *value* under *material*; the value must be JSON data."""
        digest = stable_hash(material)
        entry = {"schema": CACHE_SCHEMA, "key": material, "value": value}
        try:
            payload = json.dumps(entry, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"cached value for key {material!r} is not JSON-serialisable: "
                f"{exc}"
            ) from exc
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # -- maintenance ----------------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def stats(self) -> CacheStats:
        entries = self._entries()
        total = sum(path.stat().st_size for path in entries)
        return CacheStats(
            root=str(self.root), entries=len(entries), total_bytes=total
        )

    def clear(self) -> int:
        """Delete every entry (and empty shard dirs); returns the count."""
        entries = self._entries()
        for path in entries:
            try:
                path.unlink()
            except OSError:
                pass
        for shard in sorted(self.root.glob("*")):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (e.g. a concurrent writer) — keep it
        return len(entries)

    def __repr__(self) -> str:
        return (
            f"<ResultCache {self.root} hits={self.hits} "
            f"misses={self.misses} stores={self.stores}>"
        )
