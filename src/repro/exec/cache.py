"""Content-addressed on-disk result cache backing the execution layer.

Layout (default root ``.repro-cache/``, override with ``REPRO_CACHE_DIR``
or the ``--cache-dir`` flags)::

    .repro-cache/
      ab/
        abcdef...0123.json    # one JSON entry per cached result
      quarantine/
        abcdef...0123.json    # corrupt entries, moved aside for autopsy
      INTERRUPTED.json        # checkpoint marker (repro.exec.resilience)

Each entry records its full key material alongside the value::

    {"schema": "repro.exec-cache/v1", "key": {...}, "value": ...}

``get`` re-verifies the stored key against the requested material, so a
hash collision or a truncated/corrupted file degrades to a miss, never to
a wrong answer. A *corrupt* entry (unparsable JSON, schema mismatch, a
mangled key) is additionally **quarantined**: moved to ``quarantine/``,
counted on the instance (``corrupt``) and in the ``exec.cache.corrupt``
obs counter, and surfaced by ``repro cache stats``. A well-formed entry
whose stored key merely differs from the request (a hash collision) is
left in place — it is somebody's valid entry, not damage.

Writes go through a temp file plus :func:`os.replace`, making concurrent
writers (parallel sweep workers) safe: the last writer wins with a
complete entry. The fault-injection points ``cache.corrupt`` and
``cache.truncate`` (:mod:`repro.exec.faults`) damage a just-stored entry
on demand so the quarantine path stays exercised in CI.

Invalidation is purely key-driven: every key includes the code epoch
(:func:`repro.exec.keys.code_epoch`), so editing any source file retires
all prior entries. ``repro cache clear`` exists for reclaiming disk, not
for correctness.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CacheCorruption, ConfigurationError
from repro.exec.faults import FAULTS
from repro.exec.keys import canonical_key, stable_hash, try_canonical_key
from repro.obs import OBS

__all__ = [
    "CACHE_SCHEMA",
    "MISS",
    "QUARANTINE_DIR",
    "CacheStats",
    "ResultCache",
]

CACHE_SCHEMA = "repro.exec-cache/v1"

#: Subdirectory of the cache root holding quarantined corrupt entries.
QUARANTINE_DIR = "quarantine"

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value — the sweep grids store it for "<<<" cells).
MISS = object()


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time summary of what is on disk under the cache root."""

    root: str
    entries: int
    total_bytes: int
    quarantined: int = 0

    def describe(self) -> str:
        text = (
            f"cache {self.root}: {self.entries} entries, "
            f"{self.total_bytes:,} bytes"
        )
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        return text

    def to_json(self) -> dict[str, object]:
        """The stats as JSON data (``repro cache stats --json``, /healthz).

        Always includes ``quarantined`` — ops tooling alerting on
        quarantine growth must not have to treat an absent field as zero.
        """
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "quarantined": self.quarantined,
        }


def _parse_entry(path: Path, text: str) -> dict:
    """Decode and structurally validate one on-disk entry.

    Raises :class:`CacheCorruption` naming the file for anything a
    correct writer could not have produced.
    """
    try:
        entry = json.loads(text)
    except ValueError as exc:
        raise CacheCorruption(
            f"cache entry {path} is not valid JSON: {exc}"
        ) from exc
    if (
        not isinstance(entry, dict)
        or entry.get("schema") != CACHE_SCHEMA
        or "value" not in entry
    ):
        raise CacheCorruption(
            f"cache entry {path} does not match schema {CACHE_SCHEMA!r}"
        )
    if try_canonical_key(entry.get("key")) is None:
        raise CacheCorruption(
            f"cache entry {path} has a non-canonical key"
        )
    return entry


class ResultCache:
    """JSON-backed store of computed results, addressed by key material.

    Instances also track session counters (``hits``/``misses``/``stores``
    /``corrupt``) so callers can report what a run actually reused — and
    what it had to quarantine — without consulting the metrics registry.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # -- lookup ---------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it cannot re-trip every lookup."""
        target = self.root / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            pass  # a concurrent reader may have moved it first
        self.corrupt += 1
        if OBS.enabled:
            OBS.count("exec.cache.corrupt")
            OBS.emit("exec.cache.corrupt", entry=path.name)

    def get(self, material: object) -> object:
        """The cached value for *material*, or the module sentinel MISS."""
        canonical = canonical_key(material)
        path = self._path(stable_hash(material))
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return MISS
        try:
            entry = _parse_entry(path, text)
        except CacheCorruption:
            self._quarantine(path)
            self.misses += 1
            return MISS
        if canonical_key(entry["key"]) != canonical:
            # A well-formed entry for different material: a hash
            # collision, not corruption. Leave it in place.
            self.misses += 1
            return MISS
        self.hits += 1
        return entry["value"]

    def put(self, material: object, value: object) -> None:
        """Store *value* under *material*; the value must be JSON data."""
        digest = stable_hash(material)
        entry = {"schema": CACHE_SCHEMA, "key": material, "value": value}
        try:
            payload = json.dumps(entry, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"cached value for key {material!r} is not JSON-serialisable: "
                f"{exc}"
            ) from exc
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp file lives in the entry's own shard directory — inside
        # the cache root, never the system tmp dir — so os.replace is a
        # same-filesystem atomic rename. A crash between write and rename
        # leaves only an unreadable *.tmp orphan, never a partial .json
        # that get() could open; clear() sweeps such orphans.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        if FAULTS.active:
            label = canonical_key(material)
            if FAULTS.take("cache.corrupt", label):
                path.write_text("{garbage written by fault injection")
            if FAULTS.take("cache.truncate", label):
                path.write_text(payload[: len(payload) // 2])

    # -- maintenance ----------------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            path
            for path in self.root.glob("*/*.json")
            if path.parent.name != QUARANTINE_DIR
        )

    def _quarantined(self) -> list[Path]:
        return sorted(self.root.glob(f"{QUARANTINE_DIR}/*.json"))

    def stats(self) -> CacheStats:
        entries = self._entries()
        total = sum(path.stat().st_size for path in entries)
        return CacheStats(
            root=str(self.root),
            entries=len(entries),
            total_bytes=total,
            quarantined=len(self._quarantined()),
        )

    def clear(self) -> int:
        """Delete every entry (incl. quarantine); returns the count.

        Also sweeps orphaned ``*.tmp`` files left by a writer that
        crashed between temp-file write and atomic rename (not counted —
        they were never readable entries).
        """
        entries = self._entries() + self._quarantined()
        for path in entries:
            try:
                path.unlink()
            except OSError:
                pass
        for orphan in sorted(self.root.glob("*/*.tmp")):
            try:
                orphan.unlink()
            except OSError:
                pass
        for shard in sorted(self.root.glob("*")):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (e.g. a concurrent writer) — keep it
        return len(entries)

    def __repr__(self) -> str:
        return (
            f"<ResultCache {self.root} hits={self.hits} "
            f"misses={self.misses} stores={self.stores} "
            f"corrupt={self.corrupt}>"
        )
