"""Retry policy and checkpoint/resume bookkeeping for the task runner.

Two small pieces, both consumed by :func:`repro.exec.run_tasks`:

* :class:`RetryPolicy` — how many attempts each task gets, the
  exponential backoff between them (with *deterministic, seeded* jitter:
  the same task label and attempt number always waits the same time), an
  optional per-attempt wall-clock timeout for pool execution, and the
  retryability classification (injected faults and unexpected exceptions
  retry; deliberate library errors such as ``ConfigurationError`` are
  deterministic and fail fast).

* The checkpoint marker — a single JSON file at ``<cache
  root>/INTERRUPTED.json`` recording how far an interrupted run got. The
  content-addressed result cache *is* the journal (every completed task
  result is already on disk under its key); the marker only flags that a
  resume is in progress so the runner can attribute cache hits to
  ``exec.resume.reused`` and entry points can print a resume banner. It
  lives at the cache root, outside the two-hex-character shard
  directories, so it is invisible to entry globs.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError, FaultInjected, ReproError

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY",
    "CHECKPOINT_NAME",
    "write_checkpoint",
    "read_checkpoint",
    "clear_checkpoint",
]

CHECKPOINT_SCHEMA = "repro.exec-checkpoint/v1"
CHECKPOINT_NAME = "INTERRUPTED.json"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    *attempts* is the per-task budget on the path where the task runs
    (pool attempts; a task exhausting it is escalated to the serial path
    with a fresh budget before the run fails). *timeout* bounds one pool
    attempt's wall clock; ``None`` disables timeouts. The serial path
    cannot preempt a running task, so timeouts apply to pool execution
    only.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    timeout: float | None = None
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if (
            isinstance(self.attempts, bool)
            or not isinstance(self.attempts, int)
            or self.attempts < 1
        ):
            raise ConfigurationError(
                f"retry attempts must be a positive integer, got {self.attempts!r}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"task timeout must be positive, got {self.timeout!r}"
            )

    def backoff(self, label: str, attempt: int) -> float:
        """Seconds to wait before retrying *label* after failure *attempt*.

        Exponential in the attempt number, capped at *max_delay*, scaled
        by jitter in [0.5, 1.0) drawn from a generator seeded with
        (jitter_seed, label, attempt) — so two runs of the same sweep
        back off identically, while distinct tasks desynchronise.
        """
        raw = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        rng = random.Random(f"{self.jitter_seed}:{label}:{attempt}")
        return raw * (0.5 + rng.random() / 2)

    def retryable(self, exc: BaseException) -> bool:
        """Whether a failed attempt should be retried.

        Injected faults always retry (exercising recovery is their whole
        point). Other deliberate library errors are deterministic — a
        misconfigured sweep fails identically every time — so they fail
        fast. Everything else (worker OOM, pickling trouble, genuine
        bugs) gets the retry budget.
        """
        if isinstance(exc, FaultInjected):
            return True
        if isinstance(exc, ReproError):
            return False
        return isinstance(exc, Exception)


#: The policy used when nothing was configured.
DEFAULT_RETRY = RetryPolicy()


def _checkpoint_path(cache) -> str:
    return os.path.join(os.fspath(cache.root), CHECKPOINT_NAME)


def write_checkpoint(cache, *, completed: int, total: int) -> None:
    """Record an interrupted run under the cache root (best effort)."""
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "completed": completed,
        "total": total,
        "time": time.time(),
    }
    try:
        os.makedirs(os.fspath(cache.root), exist_ok=True)
        with open(_checkpoint_path(cache), "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
    except OSError:
        pass  # a failed marker only costs the resume banner, never data


def read_checkpoint(cache) -> dict | None:
    """The interrupted-run record, or None when the last run completed."""
    try:
        with open(_checkpoint_path(cache), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != CHECKPOINT_SCHEMA
    ):
        return None
    return payload


def clear_checkpoint(cache) -> None:
    """Drop the interrupted-run record (a run completed)."""
    try:
        os.unlink(_checkpoint_path(cache))
    except OSError:
        pass
