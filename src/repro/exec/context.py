"""The process-wide execution context: worker count and result cache.

Mirrors the :data:`repro.obs.OBS` pattern: library code (``sweep_grid``
and friends) consults one module-global :data:`EXEC` rather than
threading jobs/cache parameters through every ``run()`` signature. The
default is serial with no cache — behaviour is byte-identical to a build
without the execution layer until an entry point opts in via
:func:`configure_exec` (CLI flags, pytest options, the regenerate
script) or the :func:`execution` context manager (tests).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ConfigurationError
from repro.exec.resilience import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExecContext",
    "EXEC",
    "configure_exec",
    "execution",
    "default_cache_dir",
]

DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The cache root honoured by every entry point: env override or cwd."""
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


class ExecContext:
    """How grid/experiment work is executed: workers, cache, retry policy.

    ``jobs == 1`` means in-process serial execution; ``cache is None``
    means every cell is recomputed. Both defaults preserve the pre-layer
    behaviour exactly. *retry* (a
    :class:`~repro.exec.resilience.RetryPolicy`) governs per-task
    retries, backoff, and timeouts; its default only changes behaviour
    when a task *fails*, so healthy runs are untouched.
    """

    __slots__ = ("jobs", "cache", "retry")

    def __init__(
        self, jobs: int = 1, cache=None, retry: RetryPolicy = DEFAULT_RETRY
    ) -> None:
        self.jobs = jobs
        self.cache = cache
        self.retry = retry

    def __repr__(self) -> str:
        cache = getattr(self.cache, "root", None)
        return (
            f"<ExecContext jobs={self.jobs} cache={cache} "
            f"retry={self.retry.attempts}x>"
        )


#: The process-wide context consulted by sweep/experiment runners.
EXEC = ExecContext()


def _hot_tier_bytes_from_env() -> int:
    """The ``REPRO_HOT_TIER_BYTES`` budget, or 0 for plain disk caching."""
    raw = os.environ.get("REPRO_HOT_TIER_BYTES", "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_HOT_TIER_BYTES must be an integer byte count, got {raw!r}"
        ) from None
    return max(0, value)


def _validated_jobs(jobs: int) -> int:
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
        raise ConfigurationError(
            f"jobs must be a positive integer, got {jobs!r}"
        )
    return jobs


def configure_exec(
    *,
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    retry: RetryPolicy | None = None,
    span_log: str | os.PathLike | None = None,
) -> ExecContext:
    """Set the process-wide execution context.

    *cache_dir* of ``None`` disables the result cache; pass
    :func:`default_cache_dir` (or any path) to enable it. *retry* of
    ``None`` keeps the default policy (bounded retries, no timeout).
    *span_log* enables request-scoped span tracing
    (:data:`repro.obs.TRACER`) into the given JSONL path — forked pool
    workers inherit it, so the execution layer and span layer switch on
    together at the same entry points.

    Setting ``REPRO_HOT_TIER_BYTES`` in the environment layers a
    :class:`~repro.exec.tiered.HotTier` of that byte budget in front of
    the disk cache (``0`` keeps the plain disk cache — the default, so
    one-shot CLI runs don't pay for a tier they never re-read).
    """
    from repro.exec.cache import ResultCache
    from repro.exec.tiered import TieredCache
    from repro.obs.spans import TRACER

    EXEC.jobs = _validated_jobs(jobs)
    if cache_dir is None:
        EXEC.cache = None
    else:
        hot_bytes = _hot_tier_bytes_from_env()
        if hot_bytes:
            EXEC.cache = TieredCache(cache_dir, hot_bytes=hot_bytes)
        else:
            EXEC.cache = ResultCache(cache_dir)
    EXEC.retry = retry if retry is not None else DEFAULT_RETRY
    if span_log is not None:
        TRACER.configure(os.fspath(span_log))
    return EXEC


@contextmanager
def execution(
    *,
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    retry: RetryPolicy | None = None,
    span_log: str | os.PathLike | None = None,
) -> Iterator[ExecContext]:
    """Temporarily reconfigure :data:`EXEC`, restoring the prior state."""
    from repro.obs.spans import TRACER

    prev = (EXEC.jobs, EXEC.cache, EXEC.retry)
    tracing_before = TRACER.enabled
    try:
        yield configure_exec(
            jobs=jobs, cache_dir=cache_dir, retry=retry, span_log=span_log
        )
    finally:
        EXEC.jobs, EXEC.cache, EXEC.retry = prev
        if span_log is not None and not tracing_before:
            TRACER.deactivate()
