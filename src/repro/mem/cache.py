"""Set-associative cache model with full traffic accounting.

This is the library's DineroIII: a trace-driven functional cache simulator
whose traffic accounting follows the paper's rules exactly (Section 4.1) —

* "total traffic" counts fetched blocks and write-backs but **not** request
  (address) traffic;
* the cache is flushed at end of run and the flushed write-backs count;
* requests are 4-byte words.

Write policies: write-back or write-through; allocation policies:
write-allocate, write-validate (allocate-without-fetch, Jouppi [25]), or
no-allocate. Write-validate keeps per-word valid/dirty masks so it is
exact at any block size (the paper only exercises it at one-word blocks,
where the masks are trivially single bits).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.exec.faults import FAULTS
from repro.mem.policies import ReplacementPolicy, make_policy
from repro.obs import OBS, TRACER
from repro.trace.model import MemTrace, WORD_BYTES
from repro.util import format_size, require_power_of_two


class WritePolicy(enum.Enum):
    WRITEBACK = "writeback"
    WRITETHROUGH = "writethrough"


class AllocatePolicy(enum.Enum):
    #: Classic write-allocate: a write miss fetches the block first.
    WRITE_ALLOCATE = "write-allocate"
    #: Write-validate: allocate the block and overwrite, no fetch [25].
    WRITE_VALIDATE = "write-validate"
    #: No-allocate: write misses go straight below (write-around).
    NO_ALLOCATE = "no-allocate"


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Static configuration of one cache level."""

    size_bytes: int
    block_bytes: int = 32
    associativity: int = 1  #: ways; use :meth:`fully_associative` for full
    replacement: str = "lru"
    write_policy: WritePolicy = WritePolicy.WRITEBACK
    allocate: AllocatePolicy = AllocatePolicy.WRITE_ALLOCATE
    name: str = "cache"

    def __post_init__(self) -> None:
        require_power_of_two(self.size_bytes, "cache size")
        require_power_of_two(self.block_bytes, "block size")
        if self.block_bytes < WORD_BYTES:
            raise ConfigurationError(
                f"block size must be at least one word ({WORD_BYTES}B)"
            )
        if self.size_bytes < self.block_bytes:
            raise ConfigurationError(
                f"cache of {self.size_bytes}B cannot hold a "
                f"{self.block_bytes}B block"
            )
        blocks = self.size_bytes // self.block_bytes
        if self.associativity <= 0 or self.associativity > blocks:
            raise ConfigurationError(
                f"associativity {self.associativity} invalid for "
                f"{blocks}-block cache"
            )
        if blocks % self.associativity:
            raise ConfigurationError(
                f"{blocks} blocks not divisible into {self.associativity} ways"
            )
        if (
            self.write_policy is WritePolicy.WRITETHROUGH
            and self.allocate is AllocatePolicy.WRITE_VALIDATE
        ):
            raise ConfigurationError(
                "write-validate requires a write-back cache"
            )

    @classmethod
    def fully_associative(
        cls,
        size_bytes: int,
        block_bytes: int = 32,
        *,
        replacement: str = "lru",
        write_policy: WritePolicy = WritePolicy.WRITEBACK,
        allocate: AllocatePolicy = AllocatePolicy.WRITE_ALLOCATE,
        name: str = "cache",
    ) -> "CacheConfig":
        """A one-set cache where every block competes with every other."""
        return cls(
            size_bytes=size_bytes,
            block_bytes=block_bytes,
            associativity=size_bytes // block_bytes,
            replacement=replacement,
            write_policy=write_policy,
            allocate=allocate,
            name=name,
        )

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity

    @property
    def is_fully_associative(self) -> bool:
        return self.num_sets == 1

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // WORD_BYTES

    def describe(self) -> str:
        assoc = "fa" if self.is_fully_associative else f"{self.associativity}w"
        return (
            f"{format_size(self.size_bytes)}/{self.block_bytes}B/{assoc}/"
            f"{self.replacement}/{self.write_policy.value}/{self.allocate.value}"
        )


@dataclass(slots=True)
class CacheStats:
    """Traffic and hit accounting for one simulation run."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    fetch_bytes: int = 0           #: blocks brought in from below
    writeback_bytes: int = 0       #: dirty evictions pushed below
    writethrough_bytes: int = 0    #: words written through to below
    flush_writeback_bytes: int = 0 #: dirty data written back at end of run
    #: Error envelope when these stats are a sampled *estimate* (see
    #: :class:`repro.mem.sampled.SamplingEnvelope`); None for exact runs.
    estimate: object | None = None

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def total_traffic_bytes(self) -> int:
        """All traffic below this cache, flush included, requests excluded."""
        return (
            self.fetch_bytes
            + self.writeback_bytes
            + self.writethrough_bytes
            + self.flush_writeback_bytes
        )

    @property
    def request_bytes(self) -> int:
        """Bytes requested by the processor above (refs x word size)."""
        return self.accesses * WORD_BYTES

    @property
    def traffic_ratio(self) -> float:
        """The paper's R: traffic below the cache over traffic above it."""
        return (
            self.total_traffic_bytes / self.request_bytes
            if self.accesses
            else 0.0
        )

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine the stats of two *independent* runs.

        Every field sums, including ``flush_writeback_bytes`` — so this is
        only correct when each run really did end (and flushed) on its
        own. To simulate one logical trace delivered in chunks, use
        :meth:`Cache.simulate_chunked`, which carries cache state across
        chunk boundaries and flushes once; merging per-chunk
        ``simulate()`` results instead would flush (and count) every
        chunk's dirty data at each boundary. Sampling envelopes do not
        combine, so the merged stats are always exact-shaped
        (``estimate`` is None).
        """
        return CacheStats(
            accesses=self.accesses + other.accesses,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_hits=self.read_hits + other.read_hits,
            write_hits=self.write_hits + other.write_hits,
            fetch_bytes=self.fetch_bytes + other.fetch_bytes,
            writeback_bytes=self.writeback_bytes + other.writeback_bytes,
            writethrough_bytes=self.writethrough_bytes + other.writethrough_bytes,
            flush_writeback_bytes=(
                self.flush_writeback_bytes + other.flush_writeback_bytes
            ),
        )


@dataclass(slots=True)
class _Line:
    """One resident cache line."""

    block: int
    valid_mask: int  #: per-word valid bits (all-ones except write-validate)
    dirty_mask: int  #: per-word dirty bits


class Cache:
    """A single cache level, driven one access at a time or by a trace.

    The per-access API (:meth:`access`, :meth:`flush`) is used by the
    hierarchy and by the timing model; :meth:`simulate` runs a whole
    :class:`MemTrace`, automatically preparing oracle replacement policies
    and taking a vectorized fast path for the common direct-mapped
    write-back/write-allocate configuration.
    """

    def __init__(
        self,
        config: CacheConfig,
        *,
        time_offset: int = 0,
        listener=None,
    ) -> None:
        self.config = config
        self._policy: ReplacementPolicy = make_policy(
            config.replacement, config.num_sets, config.associativity
        )
        self._sets: list[dict[int, _Line]] = [
            {} for _ in range(config.num_sets)
        ]
        self._time = time_offset
        self.stats = CacheStats()
        self._full_mask = (1 << config.words_per_block) - 1
        #: Optional callable ``(kind, address, nbytes)`` invoked for every
        #: unit of traffic this cache sends below: kind is one of "fetch",
        #: "writeback", "writethrough", "flush". Used to stack hierarchies.
        self.listener = listener

    # -- address helpers ---------------------------------------------------------

    def _block_of(self, address: int) -> int:
        return address // self.config.block_bytes

    def _set_of(self, block: int) -> int:
        return block % self.config.num_sets

    def _word_bit(self, address: int) -> int:
        word_in_block = (
            address % self.config.block_bytes
        ) // WORD_BYTES
        return 1 << word_in_block

    # -- per-access API ------------------------------------------------------------

    def access(self, address: int, is_write: bool) -> bool:
        """Process one word access; returns True on a (full) hit.

        A reference to a resident block whose requested word is invalid
        (possible only under write-validate) counts as a miss and triggers
        a block fetch that validates the whole line.
        """
        config = self.config
        stats = self.stats
        block = self._block_of(address)
        set_index = self._set_of(block)
        word_bit = self._word_bit(address)
        lines = self._sets[set_index]
        line = lines.get(block)
        time = self._time
        self._time += 1

        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        if line is not None and (not is_write) and not (line.valid_mask & word_bit):
            # Partial (write-validated) line: read of an invalid word.
            stats.fetch_bytes += config.block_bytes
            line.valid_mask = self._full_mask
            if self.listener is not None:
                self.listener("fetch", block * config.block_bytes, config.block_bytes)

        if line is not None:
            if is_write:
                stats.write_hits += 1
                if config.write_policy is WritePolicy.WRITETHROUGH:
                    stats.writethrough_bytes += WORD_BYTES
                    if self.listener is not None:
                        self.listener("writethrough", address, WORD_BYTES)
                else:
                    line.dirty_mask |= word_bit
                line.valid_mask |= word_bit
            else:
                stats.read_hits += 1
            self._policy.on_access(set_index, block, time)
            return True

        # ---- miss path ----
        if is_write:
            if config.allocate is AllocatePolicy.NO_ALLOCATE:
                # Write around: the word goes straight below.
                stats.writethrough_bytes += WORD_BYTES
                if self.listener is not None:
                    self.listener("writethrough", address, WORD_BYTES)
                return False
            if config.allocate is AllocatePolicy.WRITE_ALLOCATE:
                stats.fetch_bytes += config.block_bytes
                if self.listener is not None:
                    self.listener("fetch", block * config.block_bytes, config.block_bytes)
                valid = self._full_mask
            else:  # write-validate: allocate without fetching
                valid = word_bit
            if config.write_policy is WritePolicy.WRITETHROUGH:
                stats.writethrough_bytes += WORD_BYTES
                if self.listener is not None:
                    self.listener("writethrough", address, WORD_BYTES)
                dirty = 0
            else:
                dirty = word_bit
            self._install(set_index, block, valid, dirty, time)
            return False

        # read miss
        stats.fetch_bytes += config.block_bytes
        if self.listener is not None:
            self.listener("fetch", block * config.block_bytes, config.block_bytes)
        self._install(set_index, block, self._full_mask, 0, time)
        return False

    def _install(
        self, set_index: int, block: int, valid: int, dirty: int, time: int
    ) -> None:
        lines = self._sets[set_index]
        if len(lines) >= self.config.associativity:
            victim = self._policy.choose_victim(set_index, time)
            self._evict(set_index, victim)
        lines[block] = _Line(block, valid, dirty)
        self._policy.on_fill(set_index, block, time)

    def _evict(self, set_index: int, block: int) -> None:
        line = self._sets[set_index].pop(block, None)
        if line is None:
            raise SimulationError(f"evicting non-resident block {block:#x}")
        if line.dirty_mask:
            cost = self._writeback_cost(line)
            self.stats.writeback_bytes += cost
            if self.listener is not None:
                self.listener(
                    "writeback", block * self.config.block_bytes, cost
                )
        if OBS.enabled and OBS.sink.enabled:
            OBS.emit(
                "cache.evict",
                cache=self.config.name,
                block=block,
                dirty=bool(line.dirty_mask),
            )
        self._policy.on_evict(set_index, block)

    def _writeback_cost(self, line: _Line) -> int:
        if self.config.allocate is AllocatePolicy.WRITE_VALIDATE:
            # Only the validated-dirty words exist to be written back.
            return line.dirty_mask.bit_count() * WORD_BYTES
        return self.config.block_bytes

    def flush(self) -> int:
        """Write back all dirty data and empty the cache.

        Returns the number of bytes written back; the same amount is added
        to ``stats.flush_writeback_bytes`` (the paper includes flushed
        write-backs in total traffic).
        """
        flushed = 0
        for set_index, lines in enumerate(self._sets):
            for block, line in list(lines.items()):
                if line.dirty_mask:
                    cost = self._writeback_cost(line)
                    flushed += cost
                    if self.listener is not None:
                        self.listener(
                            "flush", block * self.config.block_bytes, cost
                        )
                self._policy.on_evict(set_index, block)
            lines.clear()
        self.stats.flush_writeback_bytes += flushed
        return flushed

    def contains(self, address: int) -> bool:
        """True when the word at *address* is resident and valid."""
        block = self._block_of(address)
        line = self._sets[self._set_of(block)].get(block)
        return line is not None and bool(line.valid_mask & self._word_bit(address))

    # -- whole-trace simulation ------------------------------------------------------

    def simulate(
        self,
        trace: MemTrace,
        *,
        flush: bool = True,
        engine: str | None = None,
    ) -> CacheStats:
        """Run a whole trace through a fresh copy of this cache's state.

        The cache must be freshly constructed (no prior accesses); oracle
        policies are prepared with the trace's block sequence first.
        *engine* overrides the process-wide selection for this run (see
        :mod:`repro.mem.engines`); vector engines produce bit-identical
        stats, so results never depend on the choice.
        """
        if self.stats.accesses:
            raise SimulationError(
                "simulate() requires a fresh cache; this one has history"
            )
        from repro.mem import engines

        started = time.time()
        selection = engines.resolve_engine(engine)
        if selection in ("sampled", "auto"):
            from repro.mem import sampled as sampled_engine

            sampling = sampled_engine.sampling_for(selection, len(trace))
            if sampling is not None:
                reason = sampled_engine.cache_sampled_reason(
                    self.config, self.listener
                )
                if reason is None:
                    self.stats = sampled_engine.simulate_cache_sampled(
                        self.config, trace, flush=flush, sampling=sampling
                    )
                    self._record_run(
                        trace, engine="sampled", started=started
                    )
                    return self.stats
                if selection == "sampled":
                    raise ConfigurationError(
                        f"no sampled engine for {self.config.describe()}: "
                        f"{reason}"
                    )
                # auto: fall back to the exact engines below.
        if selection not in ("scalar", "sampled"):
            result = engines.dispatch_cache(
                self.config,
                trace,
                flush=flush,
                selection=selection,
                listener=self.listener,
            )
            if result is not None:
                self.stats = result
                self._record_run(trace, engine=selection, started=started)
                return self.stats
        if self._policy.needs_future:
            self._policy.prepare(trace.addresses // self.config.block_bytes)
        addresses = trace.addresses.tolist()
        writes = trace.is_write.tolist()
        access = self.access
        for address, write in zip(addresses, writes):
            access(address, write)
        if flush:
            self.flush()
        self._record_run(trace, engine="scalar", started=started)
        return self.stats

    def simulate_chunked(
        self,
        chunks: list[MemTrace],
        *,
        flush: bool = True,
        resume: bool = False,
    ) -> CacheStats:
        """Simulate one logical trace delivered as consecutive chunks.

        Cache state (residency, dirtiness, recency) carries across chunk
        boundaries and the end-of-run flush happens exactly once, so the
        result equals ``simulate()`` of the chunks' concatenation — the
        property that naive per-chunk ``simulate()`` + ``merge()`` breaks
        by flushing at every boundary. Oracle policies see the full
        future across all chunks.

        With ``resume=True`` the cache may carry history from an earlier
        (interrupted) ``simulate_chunked`` call on the *same* instance:
        the fresh-state check is skipped and oracle policies are not
        re-prepared (the original call already saw the full future).
        Feed only the not-yet-simulated chunks; the final stats equal an
        uninterrupted run over the full chunk list.
        """
        if not resume and self.stats.accesses:
            raise SimulationError(
                "simulate_chunked() requires a fresh cache; this one has history"
            )
        chunks = list(chunks)
        if self._policy.needs_future and not resume:
            if chunks:
                future = np.concatenate([c.addresses for c in chunks])
            else:
                future = np.empty(0, dtype=np.int64)
            self._policy.prepare(future // self.config.block_bytes)
        access = self.access
        for position, chunk in enumerate(chunks):
            if FAULTS.active:
                FAULTS.fire("sim.chunk", f"{chunk.name}:{position}")
            timed = OBS.enabled or TRACER.enabled
            chunk_started = time.time() if timed else 0.0
            for address, write in zip(
                chunk.addresses.tolist(), chunk.is_write.tolist()
            ):
                access(address, write)
            if timed:
                if OBS.enabled:
                    OBS.hist("sim.chunk.time", time.time() - chunk_started)
                if TRACER.enabled:
                    TRACER.emit_span(
                        "sim.chunk",
                        chunk_started,
                        time.time(),
                        chunk=chunk.name,
                        position=position,
                        accesses=len(chunk.addresses),
                    )
        if flush:
            self.flush()
        return self.stats

    def _record_run(
        self,
        trace: MemTrace,
        *,
        engine: str = "scalar",
        started: float | None = None,
    ) -> None:
        """Aggregate one simulate() run into the instrumentation layer."""
        if TRACER.enabled and started is not None:
            TRACER.emit_span(
                "sim.cache",
                started,
                time.time(),
                engine=engine,
                cache=self.config.name,
                trace=trace.name,
                accesses=self.stats.accesses,
            )
        if not OBS.enabled:
            return
        if started is not None:
            OBS.hist(f"sim.cache.{engine}.time", time.time() - started)
        stats = self.stats
        OBS.count("cache.simulations")
        OBS.count("cache.accesses", stats.accesses)
        OBS.count("cache.misses", stats.misses)
        OBS.count("cache.fetch_bytes", stats.fetch_bytes)
        OBS.count(
            "cache.writeback_bytes",
            stats.writeback_bytes + stats.flush_writeback_bytes,
        )
        OBS.count("cache.writethrough_bytes", stats.writethrough_bytes)
        OBS.emit(
            "cache.simulate",
            cache=self.config.name,
            config=self.config.describe(),
            trace=trace.name,
            accesses=stats.accesses,
            misses=stats.misses,
            traffic_bytes=stats.total_traffic_bytes,
        )

    def _fast_path_eligible(self) -> bool:
        config = self.config
        return (
            self.listener is None
            and config.associativity == 1
            and config.write_policy is WritePolicy.WRITEBACK
            and config.allocate is AllocatePolicy.WRITE_ALLOCATE
            and config.replacement in ("lru", "fifo", "random")
        )

    def __repr__(self) -> str:
        return f"<Cache {self.config.describe()}>"


def _simulate_direct_mapped_writeback(
    config: CacheConfig, trace: MemTrace, flush: bool
) -> CacheStats:
    """Vectorized exact simulation of a direct-mapped WB/WA cache.

    In a direct-mapped cache each set holds one block, so a reference hits
    iff the previous reference to its set touched the same block. Grouping
    references by set turns the whole simulation into array comparisons;
    property tests assert byte-exact agreement with the general path.
    """
    n = len(trace)
    stats = CacheStats(
        accesses=n,
        reads=trace.read_count,
        writes=trace.write_count,
    )
    if n == 0:
        return stats
    blocks = trace.addresses // config.block_bytes
    sets = blocks % config.num_sets
    writes = trace.is_write

    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_blocks = blocks[order]
    sorted_writes = writes[order]

    same_set = np.empty(n, dtype=bool)
    same_set[0] = False
    same_set[1:] = sorted_sets[1:] == sorted_sets[:-1]
    same_block = np.empty(n, dtype=bool)
    same_block[0] = False
    same_block[1:] = sorted_blocks[1:] == sorted_blocks[:-1]
    hit = same_set & same_block
    miss = ~hit

    stats.read_hits = int(np.sum(hit & ~sorted_writes))
    stats.write_hits = int(np.sum(hit & sorted_writes))
    stats.fetch_bytes = int(miss.sum()) * config.block_bytes

    # A residency run is a maximal streak of hits after a miss; the run is
    # written back when its block is evicted (the next miss in the set) or
    # at the final flush. Either way every dirty run costs one block.
    run_id = np.cumsum(miss) - 1
    dirty_runs = np.zeros(int(run_id[-1]) + 1, dtype=bool)
    np.logical_or.at(dirty_runs, run_id[sorted_writes], True)
    dirty_total = int(dirty_runs.sum()) * config.block_bytes

    if flush:
        # Last run of each set is flushed, earlier runs are evictions; both
        # are counted, only the bucket differs.
        last_of_set = np.zeros(int(run_id[-1]) + 1, dtype=bool)
        set_change = np.empty(n, dtype=bool)
        set_change[:-1] = sorted_sets[1:] != sorted_sets[:-1]
        set_change[-1] = True
        last_of_set[run_id[set_change]] = True
        flushed = int(np.sum(dirty_runs & last_of_set)) * config.block_bytes
        stats.flush_writeback_bytes = flushed
        stats.writeback_bytes = dirty_total - flushed
    else:
        last_of_set = np.zeros(int(run_id[-1]) + 1, dtype=bool)
        set_change = np.empty(n, dtype=bool)
        set_change[:-1] = sorted_sets[1:] != sorted_sets[:-1]
        set_change[-1] = True
        last_of_set[run_id[set_change]] = True
        stats.writeback_bytes = (
            dirty_total - int(np.sum(dirty_runs & last_of_set)) * config.block_bytes
        )
    return stats
