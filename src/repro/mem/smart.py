"""Smart memory: offloading computation to the memory system (Section 6).

The paper: "A more radical technique ... is to begin building
computational ability into the memory system. The processor would then be
able to issue primitives more powerful than simple reads or writes ...
The memory system would perform the computation locally and return the
result. The idea of 'smart memory' is certainly not new, but we may be
entering an era when it becomes cost-effective."

What an address trace *can* quantify is the pin-traffic side of that
trade: a computation that streams a region through the processor moves
the whole region across the pins (possibly repeatedly); offloaded, it
moves a command and a result. This module:

* attributes a trace's off-chip traffic to address regions
  (:func:`traffic_by_region`, via the cache's traffic listener);
* suggests offload candidates — streamed, read-mostly regions whose
  values plausibly feed reductions (:func:`offload_candidates`);
* computes the pin-traffic saving of offloading a declared set of regions
  (:func:`offload_saving`) — the caller (playing the compiler) decides
  what is semantically offloadable, exactly as the paper imagines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.trace.model import MemTrace

#: Bytes for one offload command and one returned result (a method
#: invocation with arguments, as the paper puts it).
COMMAND_BYTES = 16
RESULT_BYTES = 16


@dataclass(frozen=True, slots=True)
class RegionTraffic:
    start: int
    end: int
    traffic_bytes: int
    references: int
    read_fraction: float


def traffic_by_region(
    trace: MemTrace,
    *,
    cache_config: CacheConfig | None = None,
    region_bytes: int = 64 * 1024,
) -> list[RegionTraffic]:
    """Off-chip traffic attributed to each address region.

    Runs the trace through the cache once with a listener that buckets
    every fetch/write-back by the region of its block address.
    """
    if region_bytes <= 0:
        raise ConfigurationError("region_bytes must be positive")
    if cache_config is None:
        cache_config = CacheConfig(size_bytes=16 * 1024, block_bytes=32)

    traffic: dict[int, int] = {}

    def listen(kind: str, address: int, nbytes: int) -> None:
        region = address // region_bytes
        traffic[region] = traffic.get(region, 0) + nbytes

    Cache(cache_config, listener=listen).simulate(trace)

    regions = trace.addresses // region_bytes
    results = []
    for region in np.unique(regions):
        mask = regions == region
        reads = int((~trace.is_write[mask]).sum())
        count = int(mask.sum())
        results.append(
            RegionTraffic(
                start=int(region) * region_bytes,
                end=(int(region) + 1) * region_bytes,
                traffic_bytes=traffic.get(int(region), 0),
                references=count,
                read_fraction=reads / count if count else 0.0,
            )
        )
    return results


def offload_candidates(
    trace: MemTrace,
    *,
    cache_config: CacheConfig | None = None,
    region_bytes: int = 64 * 1024,
    min_read_fraction: float = 0.8,
    min_traffic_share: float = 0.05,
    min_traffic_ratio: float = 0.1,
) -> list[RegionTraffic]:
    """Regions worth offloading: read-mostly and traffic-heavy.

    A region qualifies when it is consumed (not produced) by the
    processor, accounts for a meaningful share of the total off-chip
    traffic, and actually misses the cache (its traffic is a meaningful
    fraction of its own requests) — the profile of a reduction/scan input
    that does not fit on chip.
    """
    regions = traffic_by_region(
        trace, cache_config=cache_config, region_bytes=region_bytes
    )
    total = sum(r.traffic_bytes for r in regions)
    if not total:
        return []
    return [
        r
        for r in regions
        if r.read_fraction >= min_read_fraction
        and r.traffic_bytes / total >= min_traffic_share
        and r.traffic_bytes >= min_traffic_ratio * r.references * 4
    ]


@dataclass(frozen=True, slots=True)
class OffloadReport:
    total_traffic_bytes: int
    offloaded_traffic_bytes: int
    commands_issued: int

    @property
    def smart_traffic_bytes(self) -> int:
        """Traffic with the offloaded regions served by smart memory."""
        return (
            self.total_traffic_bytes
            - self.offloaded_traffic_bytes
            + self.commands_issued * (COMMAND_BYTES + RESULT_BYTES)
        )

    @property
    def saving(self) -> float:
        if not self.total_traffic_bytes:
            return 0.0
        return 1.0 - self.smart_traffic_bytes / self.total_traffic_bytes


def offload_saving(
    trace: MemTrace,
    offload_regions: list[tuple[int, int]],
    *,
    cache_config: CacheConfig | None = None,
    commands_per_region: int = 1,
) -> OffloadReport:
    """Pin-traffic saving when *offload_regions* run memory-side.

    The caller asserts (compiler knowledge) that the computation over
    each listed ``(start, end)`` region can run in the memory system with
    *commands_per_region* command/result exchanges. The region's entire
    off-chip traffic is then replaced by those exchanges.
    """
    if commands_per_region <= 0:
        raise ConfigurationError("commands_per_region must be positive")
    for start, end in offload_regions:
        if end <= start:
            raise ConfigurationError(f"empty offload region [{start}, {end})")
    if cache_config is None:
        cache_config = CacheConfig(size_bytes=16 * 1024, block_bytes=32)

    total = 0
    offloaded = 0

    def listen(kind: str, address: int, nbytes: int) -> None:
        nonlocal total, offloaded
        total += nbytes
        for start, end in offload_regions:
            if start <= address < end:
                offloaded += nbytes
                return

    Cache(cache_config, listener=listen).simulate(trace)
    return OffloadReport(
        total_traffic_bytes=total,
        offloaded_traffic_bytes=offloaded,
        commands_issued=commands_per_region * len(offload_regions),
    )
