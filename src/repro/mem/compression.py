"""Address-bus compression: dynamic base register caching (Farrens & Park).

Section 6 of the paper lists compression — for data [9], addresses [12],
and code [10] — among the near-term ways to raise effective off-chip
bandwidth "at the expense of some extra hardware on the CPU". Address
compression is directly measurable on this library's traces: the
Farrens-Park scheme [12] caches recently used address high parts in base
registers at both ends of a narrow address bus; an address whose high
part hits needs only a register index plus the low offset.

:func:`evaluate_address_compression` replays a trace through the scheme
and reports the achieved address-bus traffic reduction, i.e. the
effective widening of the address path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.policies import make_policy
from repro.trace.model import MemTrace
from repro.util import require_power_of_two


@dataclass(frozen=True, slots=True)
class BaseRegisterCacheConfig:
    """Geometry of the dynamic base register cache."""

    registers: int = 16
    #: Low bits sent verbatim; the rest is the cached "base".
    offset_bits: int = 12
    #: Width of a full (uncompressed) address in bits.
    address_bits: int = 32

    def __post_init__(self) -> None:
        require_power_of_two(self.registers, "base registers")
        if not 0 < self.offset_bits < self.address_bits:
            raise ConfigurationError("offset bits must split the address")

    @property
    def index_bits(self) -> int:
        return (self.registers - 1).bit_length() if self.registers > 1 else 1

    @property
    def compressed_bits(self) -> int:
        """Bits on the bus for a base-register hit: index + offset + flag."""
        return 1 + self.index_bits + self.offset_bits

    @property
    def miss_bits(self) -> int:
        """Bits for a miss: flag + full address (the base installs)."""
        return 1 + self.address_bits


@dataclass(frozen=True, slots=True)
class CompressionReport:
    accesses: int
    hits: int
    uncompressed_bits: int
    compressed_bits: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def compression_ratio(self) -> float:
        """Uncompressed over compressed: >1 means the bus got wider."""
        if not self.compressed_bits:
            return 1.0
        return self.uncompressed_bits / self.compressed_bits

    @property
    def effective_width_multiplier(self) -> float:
        """How much wider the address path effectively became."""
        return self.compression_ratio


class BaseRegisterCache:
    """The CPU-side half of the Farrens-Park address compressor.

    Fully associative over the address high parts with LRU replacement
    (the receiving side mirrors the state deterministically, so only one
    side needs simulating).
    """

    def __init__(self, config: BaseRegisterCacheConfig) -> None:
        self.config = config
        self._policy = make_policy("lru", 1, config.registers)
        self._resident: set[int] = set()
        self._time = 0

    def send(self, address: int) -> int:
        """Returns the number of bits this address costs on the bus."""
        config = self.config
        base = address >> config.offset_bits
        time = self._time
        self._time += 1
        if base in self._resident:
            self._policy.on_access(0, base, time)
            return config.compressed_bits
        if len(self._resident) >= config.registers:
            victim = self._policy.choose_victim(0, time)
            self._resident.discard(victim)
            self._policy.on_evict(0, victim)
        self._resident.add(base)
        self._policy.on_fill(0, base, time)
        return config.miss_bits


def evaluate_address_compression(
    trace: MemTrace,
    config: BaseRegisterCacheConfig | None = None,
) -> CompressionReport:
    """Replay *trace*'s addresses through the base register cache."""
    if config is None:
        config = BaseRegisterCacheConfig()
    brc = BaseRegisterCache(config)
    compressed = 0
    hits = 0
    addresses = trace.addresses.tolist()
    for address in addresses:
        bits = brc.send(address)
        compressed += bits
        if bits == config.compressed_bits:
            hits += 1
    return CompressionReport(
        accesses=len(addresses),
        hits=hits,
        uncompressed_bits=len(addresses) * config.address_bits,
        compressed_bits=compressed,
    )
