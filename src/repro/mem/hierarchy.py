"""Multi-level trace-driven hierarchy with per-level traffic accounting.

Stacks :class:`~repro.mem.cache.Cache` levels: the traffic one level sends
below (fetches, write-backs, write-throughs, flush write-backs) becomes the
reference stream of the next level, decomposed into word accesses. The
per-level traffic ratios ``R_i = D_i / D_{i-1}`` multiply into the paper's
effective-pin-bandwidth divisor (Equation 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig, CacheStats
from repro.obs import OBS
from repro.trace.model import MemTrace, WORD_BYTES


@dataclass(frozen=True, slots=True)
class HierarchyResult:
    """Traffic accounting for one trace pushed through a cache stack."""

    configs: tuple[CacheConfig, ...]
    level_stats: tuple[CacheStats, ...]
    #: D_0 in the paper's notation: bytes the processor requested.
    request_bytes: int

    @property
    def traffic_below(self) -> tuple[int, ...]:
        """D_i for each level i (traffic between level i and level i+1)."""
        return tuple(s.total_traffic_bytes for s in self.level_stats)

    @property
    def traffic_ratios(self) -> tuple[float, ...]:
        """R_i = D_i / D_{i-1}, with D_0 the processor request bytes."""
        ratios = []
        above = self.request_bytes
        for below in self.traffic_below:
            ratios.append(below / above if above else 0.0)
            above = below
        return tuple(ratios)

    @property
    def cumulative_ratio(self) -> float:
        """Product of the per-level ratios (Equation 5's denominator)."""
        product = 1.0
        for ratio in self.traffic_ratios:
            product *= ratio
        return product


class TraceHierarchy:
    """A stack of cache levels fed by one memory trace.

    Levels are ordered processor-side first (L1, L2, ...). Each level's
    below-traffic is replayed into the next level at word granularity:
    a fetched 32-byte block becomes eight consecutive word reads, a
    write-back eight word writes — exactly the decomposition under which
    per-level traffic ratios compose.
    """

    def __init__(self, configs: list[CacheConfig] | tuple[CacheConfig, ...]) -> None:
        if not configs:
            raise ConfigurationError("hierarchy needs at least one level")
        self.configs = tuple(configs)

    def simulate(self, trace: MemTrace, *, flush: bool = True) -> HierarchyResult:
        """Push *trace* through every level and collect per-level stats."""
        stats: list[CacheStats] = []
        current = trace
        for level, config in enumerate(self.configs):
            is_last = level == len(self.configs) - 1
            if is_last:
                cache = Cache(config)
                stats.append(cache.simulate(current, flush=flush))
                break
            events: list[tuple[int, int, bool]] = []

            def listen(kind: str, address: int, nbytes: int) -> None:
                events.append((address, nbytes, kind != "fetch"))

            cache = Cache(config, listener=listen)
            stats.append(cache.simulate(current, flush=flush))
            current = _events_to_trace(events, name=f"{trace.name}:below-L{level + 1}")
        result = HierarchyResult(
            configs=self.configs,
            level_stats=tuple(stats),
            request_bytes=trace.request_bytes,
        )
        if OBS.enabled:
            OBS.count("hierarchy.simulations")
            for level, (config, level_stats) in enumerate(
                zip(self.configs, result.level_stats)
            ):
                OBS.emit(
                    "hierarchy.level",
                    level=level + 1,
                    config=config.describe(),
                    trace=trace.name,
                    traffic_bytes=level_stats.total_traffic_bytes,
                )
        return result


def _events_to_trace(
    events: list[tuple[int, int, bool]], name: str = ""
) -> MemTrace:
    """Expand (address, nbytes, is_write) traffic events into word refs."""
    if not events:
        return MemTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), name=name
        )
    addresses = np.asarray([e[0] for e in events], dtype=np.int64)
    sizes = np.asarray([e[1] for e in events], dtype=np.int64)
    writes = np.asarray([e[2] for e in events], dtype=bool)
    words = sizes // WORD_BYTES
    total = int(words.sum())
    starts = np.concatenate(([0], np.cumsum(words)[:-1]))
    owner = np.repeat(np.arange(len(events), dtype=np.int64), words)
    offsets = np.arange(total, dtype=np.int64) - starts[owner]
    out_addr = addresses[owner] + offsets * WORD_BYTES
    out_write = writes[owner]
    return MemTrace(out_addr, out_write, name=name)
