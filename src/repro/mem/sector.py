"""Sector (subblock) cache: Hill & Smith's traffic/miss-ratio instrument.

The paper's traffic-ratio metric descends from Hill & Smith [20], who
"measured the trade-offs between miss ratio and traffic ratio by varying
block and subblock sizes". A sector cache separates the two roles a block
size plays:

* the **address block** (sector) is the tagging granularity — fewer tags,
  coarse conflict behaviour;
* the **transfer block** (subblock) is the fetch granularity — only the
  missing subblock moves, so spatial-locality-poor references stop paying
  for unused words.

This module implements a set-associative sector cache with per-subblock
valid and dirty bits, and a sweep helper that reproduces the Hill-Smith
trade-off curve: as the subblock shrinks at a fixed sector size, the miss
*ratio* rises (more partial misses) while the traffic *ratio* falls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.cache import CacheStats
from repro.mem.policies import make_policy
from repro.trace.model import MemTrace, WORD_BYTES
from repro.util import format_size, require_power_of_two


@dataclass(frozen=True, slots=True)
class SectorCacheConfig:
    """Geometry of a sector cache."""

    size_bytes: int
    sector_bytes: int = 64      #: address-block (tag) granularity
    subblock_bytes: int = 16    #: transfer granularity
    associativity: int = 1
    replacement: str = "lru"

    def __post_init__(self) -> None:
        require_power_of_two(self.size_bytes, "cache size")
        require_power_of_two(self.sector_bytes, "sector size")
        require_power_of_two(self.subblock_bytes, "subblock size")
        if self.subblock_bytes < WORD_BYTES:
            raise ConfigurationError("subblock must be at least one word")
        if self.subblock_bytes > self.sector_bytes:
            raise ConfigurationError("subblock cannot exceed the sector")
        if self.size_bytes < self.sector_bytes:
            raise ConfigurationError("cache smaller than one sector")
        sectors = self.size_bytes // self.sector_bytes
        if self.associativity <= 0 or sectors % self.associativity:
            raise ConfigurationError(
                f"associativity {self.associativity} invalid for "
                f"{sectors} sectors"
            )

    @property
    def num_sectors(self) -> int:
        return self.size_bytes // self.sector_bytes

    @property
    def num_sets(self) -> int:
        return self.num_sectors // self.associativity

    @property
    def subblocks_per_sector(self) -> int:
        return self.sector_bytes // self.subblock_bytes

    def describe(self) -> str:
        return (
            f"{format_size(self.size_bytes)} sector={self.sector_bytes}B "
            f"subblock={self.subblock_bytes}B {self.associativity}-way"
        )


class SectorCache:
    """Set-associative write-back, write-allocate sector cache."""

    def __init__(self, config: SectorCacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._policy = make_policy(
            config.replacement, config.num_sets, config.associativity
        )
        # set -> sector_id -> [valid_mask, dirty_mask]
        self._sets: list[dict[int, list[int]]] = [
            {} for _ in range(config.num_sets)
        ]
        self._time = 0

    def access(self, address: int, is_write: bool) -> bool:
        """One word access; True on a full hit (sector + subblock valid)."""
        config = self.config
        stats = self.stats
        sector = address // config.sector_bytes
        set_index = sector % config.num_sets
        sub_index = (address % config.sector_bytes) // config.subblock_bytes
        bit = 1 << sub_index
        time = self._time
        self._time += 1

        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        lines = self._sets[set_index]
        line = lines.get(sector)
        if line is not None and line[0] & bit:
            # full hit
            if is_write:
                stats.write_hits += 1
                line[1] |= bit
            else:
                stats.read_hits += 1
            self._policy.on_access(set_index, sector, time)
            return True

        if line is not None:
            # sector hit, subblock miss: fetch just the subblock
            stats.fetch_bytes += config.subblock_bytes
            line[0] |= bit
            if is_write:
                line[1] |= bit
            self._policy.on_access(set_index, sector, time)
            return False

        # sector miss: allocate the sector, fetch only the needed subblock
        if len(lines) >= config.associativity:
            victim = self._policy.choose_victim(set_index, time)
            victim_line = lines.pop(victim)
            if victim_line[1]:
                stats.writeback_bytes += (
                    victim_line[1].bit_count() * config.subblock_bytes
                )
            self._policy.on_evict(set_index, victim)
        stats.fetch_bytes += config.subblock_bytes
        lines[sector] = [bit, bit if is_write else 0]
        self._policy.on_fill(set_index, sector, time)
        return False

    def flush(self) -> int:
        """Write back every dirty subblock and empty the cache."""
        flushed = 0
        for set_index, lines in enumerate(self._sets):
            for sector, line in list(lines.items()):
                if line[1]:
                    flushed += line[1].bit_count() * self.config.subblock_bytes
                self._policy.on_evict(set_index, sector)
            lines.clear()
        self.stats.flush_writeback_bytes += flushed
        return flushed

    def simulate(self, trace: MemTrace, *, flush: bool = True) -> CacheStats:
        """Run a whole trace; oracle policies are prepared first."""
        if self._policy.needs_future:
            self._policy.prepare(trace.addresses // self.config.sector_bytes)
        access = self.access
        for address, write in zip(
            trace.addresses.tolist(), trace.is_write.tolist()
        ):
            access(address, write)
        if flush:
            self.flush()
        return self.stats

    def __repr__(self) -> str:
        return f"<SectorCache {self.config.describe()}>"


@dataclass(frozen=True, slots=True)
class TradeoffPoint:
    """One point of the Hill-Smith miss-ratio / traffic-ratio curve."""

    subblock_bytes: int
    miss_ratio: float
    traffic_ratio: float


def hill_smith_tradeoff(
    trace: MemTrace,
    *,
    size_bytes: int = 16 * 1024,
    sector_bytes: int = 64,
    associativity: int = 1,
) -> list[TradeoffPoint]:
    """Sweep the subblock size at a fixed sector size.

    Returns the trade-off curve the paper's Related Work credits to Hill &
    Smith: small subblocks minimize traffic, large subblocks minimize miss
    ratio.
    """
    points = []
    subblock = WORD_BYTES
    while subblock <= sector_bytes:
        config = SectorCacheConfig(
            size_bytes=size_bytes,
            sector_bytes=sector_bytes,
            subblock_bytes=subblock,
            associativity=associativity,
        )
        stats = SectorCache(config).simulate(trace)
        points.append(
            TradeoffPoint(
                subblock_bytes=subblock,
                miss_ratio=stats.miss_rate,
                traffic_ratio=stats.traffic_ratio,
            )
        )
        subblock *= 2
    return points
