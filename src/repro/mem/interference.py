"""Shared-cache interference: multithreading and single-chip MPs.

Two of the paper's Section 2 arguments made measurable:

* §2.1, multithreading: "Frequent switching of threads will increase
  interference in the caches and TLB ... causing an increase in cache
  misses and total traffic."
* §2.2, single-chip multiprocessors: "If one processor loses performance
  due to limited pin bandwidth, then multiple processors on a chip will
  lose far more performance for the same reason."

:func:`multithreaded_traffic` interleaves several workloads' traces on a
shared cache with a context-switch quantum and compares total traffic
against the same workloads run alone. :func:`chip_multiprocessor_demand`
scales per-core demand bandwidth against a fixed pin budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig, CacheStats
from repro.trace.model import MemTrace


@dataclass(frozen=True, slots=True)
class InterferenceReport:
    """Solo-vs-shared traffic comparison for one thread mix."""

    thread_names: tuple[str, ...]
    quantum: int
    solo_traffic_bytes: int          #: sum of each thread run alone
    shared_traffic_bytes: int        #: all threads interleaved, one cache
    solo_misses: int
    shared_misses: int

    @property
    def traffic_expansion(self) -> float:
        """Shared over solo: >1 means interference added traffic."""
        if not self.solo_traffic_bytes:
            return 1.0
        return self.shared_traffic_bytes / self.solo_traffic_bytes

    @property
    def miss_expansion(self) -> float:
        if not self.solo_misses:
            return 1.0
        return self.shared_misses / self.solo_misses


def _interleave(traces: Sequence[MemTrace], quantum: int) -> MemTrace:
    """Round-robin the traces in quantum-sized slices, with disjoint
    address spaces (threads do not share data)."""
    offset_step = 1 << 30
    parts_addr = []
    parts_write = []
    cursors = [0] * len(traces)
    live = set(range(len(traces)))
    while live:
        for index in sorted(live):
            trace = traces[index]
            start = cursors[index]
            stop = min(start + quantum, len(trace))
            parts_addr.append(
                trace.addresses[start:stop] + index * offset_step
            )
            parts_write.append(trace.is_write[start:stop])
            cursors[index] = stop
            if stop >= len(trace):
                live.discard(index)
    return MemTrace(
        np.concatenate(parts_addr), np.concatenate(parts_write), name="shared"
    )


def multithreaded_traffic(
    traces: Sequence[MemTrace],
    *,
    cache_config: CacheConfig | None = None,
    quantum: int = 200,
) -> InterferenceReport:
    """Measure the traffic cost of sharing one cache between threads."""
    if len(traces) < 2:
        raise ConfigurationError("need at least two threads to interfere")
    if quantum <= 0:
        raise ConfigurationError("quantum must be positive")
    if cache_config is None:
        cache_config = CacheConfig(size_bytes=16 * 1024, block_bytes=32)

    solo_traffic = 0
    solo_misses = 0
    for trace in traces:
        stats = Cache(cache_config).simulate(trace)
        solo_traffic += stats.total_traffic_bytes
        solo_misses += stats.misses

    shared: CacheStats = Cache(cache_config).simulate(
        _interleave(traces, quantum)
    )
    return InterferenceReport(
        thread_names=tuple(t.name for t in traces),
        quantum=quantum,
        solo_traffic_bytes=solo_traffic,
        shared_traffic_bytes=shared.total_traffic_bytes,
        solo_misses=solo_misses,
        shared_misses=shared.misses,
    )


@dataclass(frozen=True, slots=True)
class ChipMultiprocessorPoint:
    """Demand vs supply for one core count."""

    cores: int
    demand_mb_per_s: float
    pin_supply_mb_per_s: float

    @property
    def utilization(self) -> float:
        return self.demand_mb_per_s / self.pin_supply_mb_per_s

    @property
    def bandwidth_bound(self) -> bool:
        return self.demand_mb_per_s > self.pin_supply_mb_per_s


def chip_multiprocessor_demand(
    per_core_traffic_bytes: int,
    per_core_cycles: int,
    clock_mhz: float,
    pin_bandwidth_mb_per_s: float,
    *,
    max_cores: int = 16,
    sharing_penalty: float = 1.15,
) -> list[ChipMultiprocessorPoint]:
    """§2.2's scaling argument, quantified.

    Each additional core adds its full demand bandwidth (plus a shared-
    cache interference penalty per doubling) against a fixed pin budget.
    The returned curve shows where the chip becomes pin-bound.
    """
    if min(per_core_traffic_bytes, per_core_cycles) <= 0:
        raise ConfigurationError("traffic and cycles must be positive")
    if clock_mhz <= 0 or pin_bandwidth_mb_per_s <= 0:
        raise ConfigurationError("clock and pin bandwidth must be positive")
    seconds = per_core_cycles / (clock_mhz * 1e6)
    base_demand = per_core_traffic_bytes / seconds / 1e6  # MB/s
    points = []
    cores = 1
    while cores <= max_cores:
        interference = sharing_penalty ** max(0, cores.bit_length() - 1)
        points.append(
            ChipMultiprocessorPoint(
                cores=cores,
                demand_mb_per_s=base_demand * cores * interference,
                pin_supply_mb_per_s=pin_bandwidth_mb_per_s,
            )
        )
        cores *= 2
    return points
