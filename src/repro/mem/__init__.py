"""Memory-hierarchy substrate.

Trace-driven functional cache models (:mod:`repro.mem.cache`,
:mod:`repro.mem.mtc`) reproduce the paper's DineroIII and minimal-traffic-
cache measurements; :mod:`repro.mem.engines` holds their vectorized
simulation kernels plus the process-wide engine selection
(``auto``/``scalar``/``vector``/``sampled``); :mod:`repro.mem.sampled`
is the sampled tier — spatial reference sampling with error envelopes
for paper-scale traces; the timing-side memory system (:mod:`repro.mem.timing`
— buses, MSHRs, prefetch) serves the execution-time decomposition
experiments. Extension mechanisms from the paper's Sections 5.3/6 live in
:mod:`repro.mem.bypass` (Tyson-style selective caching),
:mod:`repro.mem.flexible` (the paper's proposed software-controlled
transfer sizes),
:mod:`repro.mem.sector` (Hill-Smith subblock caches),
:mod:`repro.mem.writeaware` (write-aware minimal replacement),
:mod:`repro.mem.prefetch` (tagged/stride/stream-buffer schemes),
:mod:`repro.mem.compression` (address-bus compression), and
:mod:`repro.mem.interference` (shared-cache and chip-multiprocessor
bandwidth pressure).
"""

from repro.mem.cache import Cache, CacheConfig, CacheStats, WritePolicy, AllocatePolicy
from repro.mem.engines import (
    ENGINE_CHOICES,
    current_engine,
    direct_mapped_family,
    fully_associative_lru_family,
    prepare_mtc,
    resolve_engine,
    set_engine,
    use_engine,
)
from repro.mem.hierarchy import HierarchyResult, TraceHierarchy
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.mem.sampled import (
    SamplingConfig,
    SamplingEnvelope,
    configure_sampling,
    current_sampling,
    use_sampling,
)
from repro.mem.bypass import BypassCache, BypassCacheConfig, bypass_benefit
from repro.mem.compression import (
    BaseRegisterCache,
    BaseRegisterCacheConfig,
    evaluate_address_compression,
)
from repro.mem.flexible import (
    FlexibleCache,
    FlexibleCacheConfig,
    RegionPolicy,
    flexible_gain,
    tune_regions,
)
from repro.mem.interference import (
    chip_multiprocessor_demand,
    multithreaded_traffic,
)
from repro.mem.policies import (
    FIFOPolicy,
    LRUPolicy,
    MINPolicy,
    RandomPolicy,
    make_policy,
)
from repro.mem.prefetch import (
    StreamBufferPrefetcher,
    StridePrefetcher,
    TaggedPrefetcher,
    evaluate_prefetcher,
)
from repro.mem.sector import SectorCache, SectorCacheConfig, hill_smith_tradeoff
from repro.mem.smart import (
    OffloadReport,
    offload_candidates,
    offload_saving,
    traffic_by_region,
)
from repro.mem.victim import VictimCache, VictimCacheConfig, victim_benefit
from repro.mem.writeaware import WriteAwareConfig, WriteAwareMTC, write_aware_gap

__all__ = [
    "Cache",
    "WritePolicy",
    "AllocatePolicy",
    "CacheConfig",
    "CacheStats",
    "ENGINE_CHOICES",
    "current_engine",
    "set_engine",
    "use_engine",
    "resolve_engine",
    "direct_mapped_family",
    "fully_associative_lru_family",
    "prepare_mtc",
    "SamplingConfig",
    "SamplingEnvelope",
    "configure_sampling",
    "current_sampling",
    "use_sampling",
    "TraceHierarchy",
    "HierarchyResult",
    "MinimalTrafficCache",
    "MTCConfig",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "MINPolicy",
    "make_policy",
    "BypassCache",
    "BypassCacheConfig",
    "bypass_benefit",
    "FlexibleCache",
    "FlexibleCacheConfig",
    "RegionPolicy",
    "flexible_gain",
    "tune_regions",
    "BaseRegisterCache",
    "BaseRegisterCacheConfig",
    "evaluate_address_compression",
    "multithreaded_traffic",
    "chip_multiprocessor_demand",
    "TaggedPrefetcher",
    "StridePrefetcher",
    "StreamBufferPrefetcher",
    "evaluate_prefetcher",
    "SectorCache",
    "SectorCacheConfig",
    "hill_smith_tradeoff",
    "OffloadReport",
    "offload_candidates",
    "offload_saving",
    "traffic_by_region",
    "VictimCache",
    "VictimCacheConfig",
    "victim_benefit",
    "WriteAwareMTC",
    "WriteAwareConfig",
    "write_aware_gap",
]
