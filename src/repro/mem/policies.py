"""Replacement policies for the set-associative cache model.

Three demand policies (LRU, FIFO, random) plus Belady's MIN oracle [3],
which the paper uses both inside the minimal-traffic cache and as the
"Replacement" factor of its Table 9 decomposition. MIN needs the future
reference stream; callers provide it through :meth:`ReplacementPolicy.prepare`
before simulation starts (the classic two-pass scheme of Sugumar &
Abraham [44]).

Each policy instance manages *all* sets of one cache: per-set state is kept
in small per-set structures indexed by set number.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError, SimulationError

#: Sentinel "never referenced again" distance for the MIN oracle.
NEVER = 1 << 62


class ReplacementPolicy(ABC):
    """Chooses victims within one set of a set-associative cache."""

    #: Registry name (set by subclasses, used by :func:`make_policy`).
    name: str = ""
    #: True when the policy needs the future trace via :meth:`prepare`.
    needs_future: bool = False

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ConfigurationError(
                f"need positive sets/ways, got {num_sets}/{ways}"
            )
        self.num_sets = num_sets
        self.ways = ways

    def prepare(self, block_sequence: np.ndarray) -> None:
        """Receive the full trace's block-id sequence before simulation.

        Only oracle policies use this; demand policies ignore it.
        """

    @abstractmethod
    def on_access(self, set_index: int, block: int, time: int) -> None:
        """Record a hit on *block* (already resident) at trace position *time*."""

    @abstractmethod
    def on_fill(self, set_index: int, block: int, time: int) -> None:
        """Record that *block* was just inserted at trace position *time*."""

    @abstractmethod
    def on_evict(self, set_index: int, block: int) -> None:
        """Record that *block* left the set (eviction or invalidation)."""

    @abstractmethod
    def choose_victim(self, set_index: int, time: int) -> int:
        """Return the resident block to evict from a full set."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: evict the block untouched the longest."""

    name = "lru"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        # Per set: block -> last-touch time. Python dicts preserve insertion
        # order, but we need recency order under re-touches, so store times.
        self._last_touch: list[dict[int, int]] = [{} for _ in range(num_sets)]

    def on_access(self, set_index: int, block: int, time: int) -> None:
        self._last_touch[set_index][block] = time

    def on_fill(self, set_index: int, block: int, time: int) -> None:
        self._last_touch[set_index][block] = time

    def on_evict(self, set_index: int, block: int) -> None:
        self._last_touch[set_index].pop(block, None)

    def choose_victim(self, set_index: int, time: int) -> int:
        touches = self._last_touch[set_index]
        if not touches:
            raise SimulationError("victim requested from an empty set")
        return min(touches, key=touches.__getitem__)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the block resident the longest."""

    name = "fifo"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._fill_time: list[dict[int, int]] = [{} for _ in range(num_sets)]

    def on_access(self, set_index: int, block: int, time: int) -> None:
        pass  # hits do not affect FIFO order

    def on_fill(self, set_index: int, block: int, time: int) -> None:
        self._fill_time[set_index][block] = time

    def on_evict(self, set_index: int, block: int) -> None:
        self._fill_time[set_index].pop(block, None)

    def choose_victim(self, set_index: int, time: int) -> int:
        fills = self._fill_time[set_index]
        if not fills:
            raise SimulationError("victim requested from an empty set")
        return min(fills, key=fills.__getitem__)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim choice (deterministic given the seed)."""

    name = "random"

    def __init__(self, num_sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, ways)
        self._rng = np.random.default_rng(seed)
        self._resident: list[list[int]] = [[] for _ in range(num_sets)]

    def on_access(self, set_index: int, block: int, time: int) -> None:
        pass

    def on_fill(self, set_index: int, block: int, time: int) -> None:
        self._resident[set_index].append(block)

    def on_evict(self, set_index: int, block: int) -> None:
        try:
            self._resident[set_index].remove(block)
        except ValueError as exc:
            raise SimulationError(
                f"evicting non-resident block {block:#x}"
            ) from exc

    def choose_victim(self, set_index: int, time: int) -> int:
        resident = self._resident[set_index]
        if not resident:
            raise SimulationError("victim requested from an empty set")
        return resident[int(self._rng.integers(len(resident)))]


class MINPolicy(ReplacementPolicy):
    """Belady's MIN oracle: evict the block referenced furthest in the
    future (or never again).

    Implementation: :meth:`prepare` computes, for each trace position, the
    position of the next reference to the same block (a single backward
    pass). During simulation each set keeps a lazy max-heap keyed on the
    resident blocks' next-use positions; stale heap entries are discarded
    when popped.
    """

    name = "min"
    needs_future = True

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._next_use: np.ndarray | None = None
        self._current_next: list[dict[int, int]] = [{} for _ in range(num_sets)]
        self._heaps: list[list[tuple[int, int]]] = [[] for _ in range(num_sets)]

    def prepare(self, block_sequence: np.ndarray) -> None:
        self._next_use = compute_next_use(block_sequence)

    def _require_prepared(self) -> np.ndarray:
        if self._next_use is None:
            raise SimulationError(
                "MINPolicy.prepare() must be called with the trace's block "
                "sequence before simulation"
            )
        return self._next_use

    def _touch(self, set_index: int, block: int, time: int) -> None:
        next_use = int(self._require_prepared()[time])
        self._current_next[set_index][block] = next_use
        heapq.heappush(self._heaps[set_index], (-next_use, block))

    def on_access(self, set_index: int, block: int, time: int) -> None:
        self._touch(set_index, block, time)

    def on_fill(self, set_index: int, block: int, time: int) -> None:
        self._touch(set_index, block, time)

    def on_evict(self, set_index: int, block: int) -> None:
        self._current_next[set_index].pop(block, None)

    def choose_victim(self, set_index: int, time: int) -> int:
        current = self._current_next[set_index]
        heap = self._heaps[set_index]
        while heap:
            negated, block = heap[0]
            if current.get(block) == -negated:
                return block
            heapq.heappop(heap)  # stale entry
        raise SimulationError("victim requested from an empty set")

    def furthest_next_use(self, set_index: int) -> int:
        """Next-use position of the current MIN victim (for bypassing)."""
        victim = self.choose_victim(set_index, 0)
        return self._current_next[set_index][victim]


def compute_next_use(block_sequence: np.ndarray) -> np.ndarray:
    """For each position i, the next position referencing the same block.

    Positions with no later reference get :data:`NEVER`. Vectorized: a
    stable argsort groups each block's occurrences in time order, so every
    occurrence's successor within its group is its next use. Equivalent to
    (and property-tested against) the obvious backward dict sweep, but an
    order of magnitude faster — this is pass 1 of every MIN simulation.
    """
    n = int(block_sequence.size)
    next_use = np.full(n, NEVER, dtype=np.int64)
    if n == 0:
        return next_use
    order = np.argsort(block_sequence, kind="stable")
    grouped = block_sequence[order]
    same_block = grouped[1:] == grouped[:-1]
    next_use[order[:-1][same_block]] = order[1:][same_block]
    return next_use


def compute_next_use_scalar(block_sequence: np.ndarray) -> np.ndarray:
    """Reference implementation of :func:`compute_next_use` (backward sweep).

    Kept as the differential-testing oracle for the vectorized version.
    """
    n = int(block_sequence.size)
    next_use = np.full(n, NEVER, dtype=np.int64)
    last_seen: dict[int, int] = {}
    blocks = block_sequence.tolist()
    for position in range(n - 1, -1, -1):
        block = blocks[position]
        seen = last_seen.get(block)
        if seen is not None:
            next_use[position] = seen
        last_seen[block] = position
    return next_use


_POLICIES: dict[str, type[ReplacementPolicy]] = {
    cls.name: cls for cls in (LRUPolicy, FIFOPolicy, RandomPolicy, MINPolicy)
}


def make_policy(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name."""
    cls = _POLICIES.get(name.lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; known: {sorted(_POLICIES)}"
        )
    return cls(num_sets, ways)
