"""Write-aware minimal-traffic replacement (the Horwitz et al. direction).

Section 5.2 of the paper notes that Belady's MIN "is not optimal for
write-back caches, since there is an additional cost associated with
replacing a dirty block", cites the Horwitz/Karp/Miller/Winograd index-
register algorithm [22], and then deliberately *skips* it: "We believe
that the disparity between the two is small, and therefore not worth the
additional complexity."

This module implements a write-aware replacement heuristic so that claim
can be tested instead of assumed. True traffic-optimal replacement with
write-backs is a hard offline problem; the implementation here is the
standard cost-aware greedy refinement of MIN:

* on an eviction, consider the candidates with the furthest next uses;
* among candidates whose next use lies beyond the bypass/eviction horizon
  anyway, prefer evicting a *clean* block (cost 0) over a *dirty* one
  (cost = one write-back), evicting the dirty block only when keeping it
  saves a future refetch that outweighs the write-back.

Concretely, each resident block is scored by the traffic its eviction
costs now (write-back bytes if dirty) minus the traffic its retention
saves later (refetch bytes if referenced again); the block with the
lowest eviction loss goes. Plain MIN is the special case where dirtiness
is ignored. The ablation benchmark measures the gap between the two,
validating (or refuting) the paper's simplification for each workload.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import AllocatePolicy, CacheStats
from repro.mem.mtc import MTCConfig
from repro.mem.policies import NEVER, compute_next_use
from repro.trace.model import MemTrace, WORD_BYTES


@dataclass(frozen=True, slots=True)
class WriteAwareConfig:
    """Configuration for the write-aware minimal-traffic simulator.

    The write-back penalty weight lets the heuristic interpolate between
    plain MIN (0.0) and fully cost-aware (1.0).
    """

    size_bytes: int
    writeback_weight: float = 1.0
    bypass: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes < WORD_BYTES:
            raise ConfigurationError("write-aware MTC smaller than one word")
        if not 0.0 <= self.writeback_weight <= 1.0:
            raise ConfigurationError(
                f"writeback weight must be in [0, 1], got {self.writeback_weight}"
            )

    @property
    def capacity_words(self) -> int:
        return self.size_bytes // WORD_BYTES


class WriteAwareMTC:
    """Word-granularity minimal-traffic cache with dirty-cost awareness.

    Like :class:`~repro.mem.mtc.MinimalTrafficCache` (word blocks,
    write-validate, bypass) but the victim choice charges dirty blocks
    their write-back cost: a clean word with a slightly nearer next use
    may be evicted instead of a dirty word with a slightly further one,
    when the saved write-back exceeds the expected refetch.

    Victim rule: evict the word with the maximum *net* score

        score = next_use_distance - writeback_weight * W * dirty

    where W is a distance-equivalent write-back penalty (one word of
    traffic translated into the distance domain via the mean reuse
    distance of the trace). Scores are maintained in a lazy max-heap.
    """

    def __init__(self, config: WriteAwareConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._ran = False

    def simulate(self, trace: MemTrace, *, flush: bool = True) -> CacheStats:
        if self._ran:
            raise SimulationError("WriteAwareMTC instances are single-use")
        self._ran = True

        config = self.config
        capacity = config.capacity_words
        allow_bypass = config.bypass

        words = trace.words
        next_use = compute_next_use(words).tolist()
        word_list = words.tolist()
        writes = trace.is_write.tolist()
        n = len(word_list)

        # Distance-equivalent write-back penalty: one write-back costs one
        # word of traffic, the same as one refetch; a refetch happens when
        # the next use arrives, so weight dirty blocks as if their next
        # use were this much further away.
        penalty = int(config.writeback_weight * max(1, n // max(1, capacity)))

        stats = self.stats
        stats.accesses = n
        stats.reads = trace.read_count
        stats.writes = trace.write_count

        resident: dict[int, list[int]] = {}  # word -> [next_use, dirty]
        heap: list[tuple[int, int]] = []     # (-score, word), lazy

        def score(use: int, dirty: int) -> int:
            base = use if use != NEVER else NEVER
            if dirty and base != NEVER:
                return max(0, base - penalty)
            if dirty and base == NEVER:
                # dirty, never reused: eviction costs a write-back now or
                # at flush — indifferent, keep it cheap to evict.
                return NEVER - penalty
            return base

        fetch = 0
        writeback = 0
        writethrough = 0
        read_hits = 0
        write_hits = 0

        for position in range(n):
            word = word_list[position]
            use = next_use[position]
            is_write = writes[position]
            line = resident.get(word)

            if line is not None:
                if is_write:
                    write_hits += 1
                    line[1] = 1
                else:
                    read_hits += 1
                line[0] = use
                heapq.heappush(heap, (-score(use, line[1]), word))
                continue

            inserting = True
            if len(resident) >= capacity:
                while heap:
                    negated, candidate = heap[0]
                    entry = resident.get(candidate)
                    if entry is not None and -negated == score(entry[0], entry[1]):
                        break
                    heapq.heappop(heap)
                if not heap:
                    raise SimulationError("full cache with empty victim heap")
                victim_score = -heap[0][0]
                incoming_score = score(use, 1 if is_write else 0)
                if allow_bypass and incoming_score >= victim_score:
                    inserting = False
                else:
                    victim = heap[0][1]
                    heapq.heappop(heap)
                    victim_line = resident.pop(victim)
                    if victim_line[1]:
                        writeback += WORD_BYTES

            if inserting:
                if is_write:
                    resident[word] = [use, 1]     # write-validate
                else:
                    fetch += WORD_BYTES
                    resident[word] = [use, 0]
                entry = resident[word]
                heapq.heappush(heap, (-score(entry[0], entry[1]), word))
            else:
                if is_write:
                    writethrough += WORD_BYTES
                else:
                    fetch += WORD_BYTES

        stats.fetch_bytes = fetch
        stats.writeback_bytes = writeback
        stats.writethrough_bytes = writethrough
        stats.read_hits = read_hits
        stats.write_hits = write_hits
        if flush:
            stats.flush_writeback_bytes = WORD_BYTES * sum(
                1 for line in resident.values() if line[1]
            )
        return stats


def write_aware_gap(trace: MemTrace, size_bytes: int) -> tuple[int, int, float]:
    """(plain-MIN traffic, write-aware traffic, relative gap).

    The paper's claim — "the disparity between the two is small" — holds
    when the returned gap is near zero.
    """
    from repro.mem.mtc import MinimalTrafficCache

    plain = MinimalTrafficCache(
        MTCConfig(size_bytes=size_bytes, allocate=AllocatePolicy.WRITE_VALIDATE)
    ).simulate(trace)
    aware = WriteAwareMTC(WriteAwareConfig(size_bytes=size_bytes)).simulate(trace)
    plain_traffic = plain.total_traffic_bytes
    aware_traffic = aware.total_traffic_bytes
    if plain_traffic == 0:
        return plain_traffic, aware_traffic, 0.0
    return (
        plain_traffic,
        aware_traffic,
        (plain_traffic - aware_traffic) / plain_traffic,
    )
