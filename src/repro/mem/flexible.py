"""Flexible caches: software-controlled transfer sizes (Section 5.3).

The paper's concrete proposal: "machines of the future will likely have
programmable mechanisms to support variable block sizes. Allowing
software-controlled transfer sizes will permit each application to
optimize its traffic based on its reference patterns — large transfers to
minimize request overhead if there is sufficient spatial locality, and
small transfers in the absence of spatial locality."

This module implements that mechanism and the software side that drives
it:

* :class:`FlexibleCache` — a sector cache whose *transfer size* is chosen
  per address region from a software-programmed region table (the
  "compiler-managed" control the paper sketches). Tags are kept at a
  fixed sector granularity; a miss fetches the region's configured number
  of subblocks around the requested word.
* :func:`tune_regions` — the "compiler": profiles a training trace,
  estimates each region's spatial locality, and programs the region
  table (large transfers for streaming regions, word transfers for
  pointer/hash regions).
* :func:`flexible_gain` — end-to-end comparison against the best *fixed*
  block size, quantifying what the proposed mechanism buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig, CacheStats
from repro.mem.policies import make_policy
from repro.trace.model import MemTrace, WORD_BYTES
from repro.util import require_power_of_two


@dataclass(frozen=True, slots=True)
class RegionPolicy:
    """One entry of the software-programmed region table."""

    start: int
    end: int            #: exclusive byte bound
    transfer_bytes: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(f"empty region [{self.start}, {self.end})")
        require_power_of_two(self.transfer_bytes, "transfer size")
        if self.transfer_bytes < WORD_BYTES:
            raise ConfigurationError("transfer must be at least one word")


@dataclass(frozen=True, slots=True)
class FlexibleCacheConfig:
    """Geometry of the flexible cache.

    Tag granularity (``sector_bytes``) and transfer size are decoupled:
    a region programmed with a transfer larger than the sector fetches
    several consecutive sectors in one bus transaction, so fine tags
    (capacity for scattered words) coexist with large streaming
    transfers.
    """

    size_bytes: int
    sector_bytes: int = 16       #: tag granularity
    associativity: int = 2
    default_transfer_bytes: int = 32
    max_transfer_bytes: int = 128

    def __post_init__(self) -> None:
        require_power_of_two(self.size_bytes, "cache size")
        require_power_of_two(self.sector_bytes, "sector size")
        require_power_of_two(self.default_transfer_bytes, "default transfer")
        require_power_of_two(self.max_transfer_bytes, "max transfer")
        if self.default_transfer_bytes > self.max_transfer_bytes:
            raise ConfigurationError("default transfer exceeds the maximum")
        sectors = self.size_bytes // self.sector_bytes
        if sectors == 0 or self.associativity <= 0 or sectors % self.associativity:
            raise ConfigurationError("invalid flexible-cache geometry")

    @property
    def num_sets(self) -> int:
        return (self.size_bytes // self.sector_bytes) // self.associativity


class FlexibleCache:
    """Sector cache with per-region software-selected transfer sizes.

    Valid/dirty state is tracked per word within the sector; a miss
    fetches the region's transfer unit (aligned) around the missing word,
    so small-transfer regions never move unused words while streaming
    regions amortize whole sectors. Write misses allocate without
    fetching (write-validate) — the natural companion policy, since a
    software-managed cache knows the store needn't read first.
    """

    def __init__(
        self,
        config: FlexibleCacheConfig,
        regions: list[RegionPolicy] | None = None,
    ) -> None:
        self.config = config
        self.stats = CacheStats()
        self._regions = sorted(regions or [], key=lambda r: r.start)
        for earlier, later in zip(self._regions, self._regions[1:]):
            if later.start < earlier.end:
                raise ConfigurationError(
                    f"overlapping regions at {later.start:#x}"
                )
        self._policy = make_policy(
            "lru", config.num_sets, config.associativity
        )
        self._sets: list[dict[int, list[int]]] = [
            {} for _ in range(config.num_sets)
        ]
        self._time = 0
        self._region_starts = [r.start for r in self._regions]
        #: Bus transactions issued (fetches, write-backs, flushes): the
        #: request-overhead side of the paper's transfer-size trade-off.
        self.transactions = 0

    def transfer_bytes_for(self, address: int) -> int:
        """The programmed transfer size for *address*."""
        import bisect

        index = bisect.bisect_right(self._region_starts, address) - 1
        if index >= 0:
            region = self._regions[index]
            if address < region.end:
                return min(region.transfer_bytes, self.config.max_transfer_bytes)
        return self.config.default_transfer_bytes

    def access(self, address: int, is_write: bool) -> bool:
        config = self.config
        stats = self.stats
        sector = address // config.sector_bytes
        set_index = sector % config.num_sets
        word_bit = 1 << ((address % config.sector_bytes) // WORD_BYTES)
        time = self._time
        self._time += 1

        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        lines = self._sets[set_index]
        line = lines.get(sector)
        if line is not None and line[0] & word_bit:
            if is_write:
                stats.write_hits += 1
                line[1] |= word_bit
            else:
                stats.read_hits += 1
            self._policy.on_access(set_index, sector, time)
            return True

        # miss (sector absent or word invalid)
        if is_write:
            # write-validate: allocate the sector, claim only the word
            line = self._ensure_sector(sector, time)
            line[0] |= word_bit
            line[1] |= word_bit
            return False

        # read miss: fetch the region's transfer window — possibly
        # several consecutive sectors — in one bus transaction.
        transfer = self.transfer_bytes_for(address)
        window_start = (address // transfer) * transfer
        fetched_words = 0
        full_sector = (1 << (config.sector_bytes // WORD_BYTES)) - 1
        for sector_addr in range(
            window_start, window_start + max(transfer, config.sector_bytes),
            config.sector_bytes,
        ):
            target_sector = sector_addr // config.sector_bytes
            target_line = self._ensure_sector(target_sector, time)
            if transfer >= config.sector_bytes:
                missing = full_sector & ~target_line[0]
                target_line[0] = full_sector
            else:
                words = transfer // WORD_BYTES
                offset_words = (
                    (window_start % config.sector_bytes) // WORD_BYTES
                )
                mask = ((1 << words) - 1) << offset_words
                missing = mask & ~target_line[0]
                target_line[0] |= mask
            fetched_words += missing.bit_count()
        stats.fetch_bytes += fetched_words * WORD_BYTES
        self.transactions += 1
        return False

    def _ensure_sector(self, sector: int, time: int) -> list[int]:
        """Return the line for *sector*, allocating (and evicting) if needed."""
        config = self.config
        set_index = sector % config.num_sets
        lines = self._sets[set_index]
        line = lines.get(sector)
        if line is not None:
            self._policy.on_access(set_index, sector, time)
            return line
        if len(lines) >= config.associativity:
            victim = self._policy.choose_victim(set_index, time)
            victim_line = lines.pop(victim)
            if victim_line[1]:
                self.stats.writeback_bytes += (
                    victim_line[1].bit_count() * WORD_BYTES
                )
                self.transactions += 1
            self._policy.on_evict(set_index, victim)
        line = [0, 0]
        lines[sector] = line
        self._policy.on_fill(set_index, sector, time)
        return line

    def flush(self) -> int:
        flushed = 0
        for set_index, lines in enumerate(self._sets):
            for sector, line in list(lines.items()):
                if line[1]:
                    flushed += line[1].bit_count() * WORD_BYTES
                    self.transactions += 1
                self._policy.on_evict(set_index, sector)
            lines.clear()
        self.stats.flush_writeback_bytes += flushed
        return flushed

    def simulate(self, trace: MemTrace, *, flush: bool = True) -> CacheStats:
        access = self.access
        for address, write in zip(
            trace.addresses.tolist(), trace.is_write.tolist()
        ):
            access(address, write)
        if flush:
            self.flush()
        return self.stats


def tune_regions(
    trace: MemTrace,
    *,
    region_bytes: int = 64 * 1024,
    small_transfer: int = WORD_BYTES,
    large_transfer: int = 64,
    utilization_threshold: float = 0.55,
) -> list[RegionPolicy]:
    """The software half: profile a trace and program the region table.

    For each *region_bytes*-sized address region, measures *spatial
    utilization*: of the large-transfer-sized blocks the region's
    references touch, what fraction of their words are ever used? Dense
    regions (streams, grids — utilization near 1) get *large_transfer*;
    scattered regions (hash tables, pointer heaps) get *small_transfer*,
    because most of a large transfer would move unused words.
    """
    require_power_of_two(region_bytes, "region size")
    if not len(trace):
        return []
    addresses = trace.addresses
    regions = addresses // region_bytes
    policies: list[RegionPolicy] = []
    words_per_block = large_transfer // WORD_BYTES
    for region in np.unique(regions):
        in_region = addresses[regions == region]
        touched_words = np.unique(in_region // WORD_BYTES).size
        touched_blocks = np.unique(in_region // large_transfer).size
        utilization = touched_words / (touched_blocks * words_per_block)
        transfer = (
            large_transfer
            if utilization >= utilization_threshold
            else small_transfer
        )
        policies.append(
            RegionPolicy(
                start=int(region) * region_bytes,
                end=(int(region) + 1) * region_bytes,
                transfer_bytes=transfer,
            )
        )
    return policies


@dataclass(frozen=True, slots=True)
class FlexibleGain:
    """Fixed-best vs flexible comparison for one trace.

    Traffic totals include per-transaction request overhead — the paper's
    stated rationale for large transfers ("large transfers to minimize
    request overhead") and the quantity its Table 7 deliberately excludes.
    """

    best_fixed_block: int
    best_fixed_traffic: int
    flexible_traffic: int

    @property
    def saving(self) -> float:
        if not self.best_fixed_traffic:
            return 0.0
        return 1.0 - self.flexible_traffic / self.best_fixed_traffic


#: Address/command bytes charged per bus transaction.
REQUEST_OVERHEAD_BYTES = 8


def flexible_gain(
    trace: MemTrace,
    *,
    size_bytes: int = 16 * 1024,
    blocks: tuple[int, ...] = (4, 8, 16, 32, 64),
    sector_bytes: int = 16,
) -> FlexibleGain:
    """Compare the tuned flexible cache against every fixed block size.

    The flexible cache is trained and evaluated on the same trace (the
    paper imagines per-application tuning, and the benchmarks are
    deterministic); the fixed competitor gets the *best* block size in
    hindsight, so any positive saving is a genuine win for flexibility.
    Both sides pay :data:`REQUEST_OVERHEAD_BYTES` per bus transaction.
    """
    best_block = blocks[0]
    best_traffic: int | None = None
    for block in blocks:
        config = CacheConfig(
            size_bytes=size_bytes,
            block_bytes=block,
            associativity=min(2, size_bytes // block),
        )
        stats = Cache(config).simulate(trace)
        transactions = (
            stats.fetch_bytes
            + stats.writeback_bytes
            + stats.flush_writeback_bytes
        ) // block + stats.writethrough_bytes // WORD_BYTES
        traffic = (
            stats.total_traffic_bytes
            + transactions * REQUEST_OVERHEAD_BYTES
        )
        if best_traffic is None or traffic < best_traffic:
            best_traffic = traffic
            best_block = block
    assert best_traffic is not None

    regions = tune_regions(trace)
    flexible = FlexibleCache(
        FlexibleCacheConfig(
            size_bytes=size_bytes,
            sector_bytes=sector_bytes,
            associativity=2,
        ),
        regions,
    )
    stats = flexible.simulate(trace)
    flexible_traffic = (
        stats.total_traffic_bytes
        + flexible.transactions * REQUEST_OVERHEAD_BYTES
    )
    return FlexibleGain(
        best_fixed_block=best_block,
        best_fixed_traffic=best_traffic,
        flexible_traffic=flexible_traffic,
    )
