"""Spatial-sampling simulation engine with error envelopes.

The exact engines cap out near 10^6-10^7 references/second, which keeps
the paper's original 10^8-10^9-reference traces out of reach — the MTC
grid behind Table 8 in particular, whose sequential Belady MIN decisions
resist vectorization. This module implements the classic fix, SHARDS-
style *spatial sampling* (Waldspurger et al.): hash each block address,
keep a reference iff its block's hash falls under a threshold set by the
sampling rate R, and simulate a *miniature* cache of capacity round(C*R)
over the sampled sub-trace. Because both the reference stream and the
capacity shrink by the same factor, the miniature run's stack behaviour
mirrors the full one, and scaling its counts by 1/R yields estimates of
the exact stats.

Two estimators are provided, matching the repo's two exact substrates:

* :func:`simulate_cache_sampled` — fully-associative LRU (write-back,
  write-allocate), through the extended Mattson machinery of
  :func:`repro.trace.mrc.traffic_curve` applied to the sampled
  sub-trace.
* :func:`simulate_mtc_sampled` — the minimal-traffic cache (Belady MIN
  + bypass, write-validate), by running the exact
  :func:`repro.mem.engines.simulate_mtc_fast` kernel on the sampled
  sub-trace at the scaled capacity (MIN is fully associative, so
  miniature simulation applies to it just as it does to LRU).

Every estimate carries a :class:`SamplingEnvelope` (attached as
``CacheStats.estimate``): the point estimate plus a confidence
half-width for the traffic ratio and miss rate. The half-width comes
from a K-stratum **jackknife**: a second, independent slice of the same
block hash splits the sampled blocks into K strata; each
leave-one-stratum-out replicate is re-simulated at capacity
round(C*R*(K-1)/K) and rescaled, and the jackknife standard error
``sqrt((K-1)/K * sum((theta_k - mean)^2))`` is widened by a small
relative guard that covers miniature-capacity rounding bias. The
differential suite (``tests/test_mem_sampled.py``) asserts the measured
|sampled - exact| error stays inside this envelope on every workload.

Sampling is a process-wide configuration like the engine choice:
:func:`configure_sampling` / :func:`use_sampling`, the
``REPRO_SAMPLE_RATE`` / ``REPRO_SAMPLE_SEED`` environment variables, or
the CLI's ``--sample-rate`` / ``--sample-seed`` flags. Under
``--engine sampled`` an unconfigured process falls back to
:data:`DEFAULT_SAMPLE_RATE`; under ``auto`` sampling is only ever picked
when a rate was configured explicitly *and* the trace is at least
:data:`AUTO_SAMPLED_MIN_REFS` references (estimates never silently
replace exact numbers).
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import (
    AllocatePolicy,
    CacheConfig,
    CacheStats,
    WritePolicy,
)
from repro.mem.engines import mtc_fast_supported, simulate_mtc_fast
from repro.obs import OBS
from repro.trace.model import MemTrace, WORD_BYTES

__all__ = [
    "DEFAULT_SAMPLE_RATE",
    "DEFAULT_STRATA",
    "AUTO_SAMPLED_MIN_REFS",
    "SamplingConfig",
    "SamplingEnvelope",
    "configure_sampling",
    "current_sampling",
    "use_sampling",
    "sampling_for",
    "sample_mask",
    "cache_sampled_reason",
    "mtc_sampled_reason",
    "simulate_cache_sampled",
    "simulate_mtc_sampled",
]

#: Rate used by ``--engine sampled`` when no rate was configured.
DEFAULT_SAMPLE_RATE = 0.01

#: Jackknife strata per estimate. Each stratum costs one extra miniature
#: simulation over ~(K-1)/K of the sampled references, so the whole
#: envelope costs about K times the point estimate — still ~K*R of the
#: exact run's work.
DEFAULT_STRATA = 8

#: ``auto`` never samples below this many references: at small scale the
#: exact engines are already fast and estimates would be pure downside.
AUTO_SAMPLED_MIN_REFS = 5_000_000

#: Hash-space modulus for the inclusion threshold (power of two so the
#: threshold test is a mask-and-compare). rate is quantized to 1/2^24.
_SAMPLE_MODULUS = 1 << 24

#: Normal ~99% two-sided quantile for the jackknife CI.
_Z = 2.576

#: Relative guard added to every half-width: covers miniature-capacity
#: rounding (round(C*R) quantization) and the residual bias a variance
#: estimate cannot see. Validated empirically by the differential suite.
_RELATIVE_GUARD = 0.04

#: Absolute floors so degenerate (near-zero) estimates keep a usable CI.
_TRAFFIC_RATIO_FLOOR = 5e-3
_MISS_RATE_FLOOR = 5e-4

#: Minimum miniature-cache size in blocks. Below this the estimate is
#: dominated by capacity-quantization bias (a 51-block MIN cache does
#: not behave like a scaled 1024-block one), so each estimate raises its
#: per-run rate until ``round(C*R) >= _MIN_SCALED_BLOCKS``; at rate 1.0
#: the "sample" is the whole trace and the result is exact (zero-width
#: envelope). Small caches therefore cost more than ``R*n`` work — the
#: price of estimates that stay inside their envelopes.
_MIN_SCALED_BLOCKS = 64


@dataclass(frozen=True, slots=True)
class SamplingConfig:
    """Process-wide spatial-sampling parameters.

    *rate* is the target inclusion probability per block (quantized to
    1/2^24 — see :attr:`effective_rate`); *seed* decorrelates the block
    hash between runs; *strata* sets the jackknife replicate count.
    """

    rate: float
    seed: int = 0
    strata: int = DEFAULT_STRATA

    def __post_init__(self) -> None:
        if not (0.0 < self.rate <= 1.0) or math.isnan(self.rate):
            raise ConfigurationError(
                f"sample rate must be in (0, 1], got {self.rate!r}"
            )
        if self.strata < 2:
            raise ConfigurationError(
                f"jackknife needs at least 2 strata, got {self.strata}"
            )

    @property
    def threshold(self) -> int:
        """Inclusion threshold in hash space (at least one slot)."""
        return max(1, round(self.rate * _SAMPLE_MODULUS))

    @property
    def effective_rate(self) -> float:
        """The exact rate implied by the quantized threshold."""
        return self.threshold / _SAMPLE_MODULUS


def _env_sampling() -> SamplingConfig | None:
    raw = os.environ.get("REPRO_SAMPLE_RATE")
    if not raw:
        return None
    try:
        rate = float(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"REPRO_SAMPLE_RATE is not a number: {raw!r}"
        ) from exc
    return SamplingConfig(
        rate=rate, seed=int(os.environ.get("REPRO_SAMPLE_SEED", "0"))
    )


_sampling: SamplingConfig | None = _env_sampling()


def configure_sampling(config: SamplingConfig | None) -> None:
    """Set (or clear, with None) the process-wide sampling parameters."""
    global _sampling
    _sampling = config


def current_sampling() -> SamplingConfig | None:
    """The process-wide sampling parameters, or None when unconfigured."""
    return _sampling


@contextmanager
def use_sampling(config: SamplingConfig | None):
    """Temporarily install sampling parameters; ``None`` is a no-op."""
    if config is None:
        yield
        return
    previous = _sampling
    configure_sampling(config)
    try:
        yield
    finally:
        configure_sampling(previous)


def sampling_for(selection: str, references: int) -> SamplingConfig | None:
    """The sampling to apply under engine *selection*, or None for exact.

    ``sampled`` always samples (falling back to the default rate);
    ``auto`` samples only when a rate was explicitly configured *and*
    the trace is large enough that exact simulation is the bottleneck.
    """
    if selection == "sampled":
        return _sampling or SamplingConfig(DEFAULT_SAMPLE_RATE)
    if selection == "auto" and _sampling is not None:
        if references >= AUTO_SAMPLED_MIN_REFS:
            return _sampling
    return None


# --------------------------------------------------------------------------
# Block hashing and mask construction
# --------------------------------------------------------------------------

_GOLDEN = 0x9E3779B97F4A7C15


def _block_hash(blocks: np.ndarray, seed: int) -> np.ndarray:
    """SplitMix64 finalizer over block ids, perturbed by *seed*.

    Low bits feed the inclusion threshold, high bits the stratum split —
    one hash pass serves both and the two slices are independent.
    """
    x = blocks.astype(np.uint64)
    x = x * np.uint64(_GOLDEN) + np.uint64((seed * _GOLDEN + 1) & (2**64 - 1))
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def sample_mask(
    trace: MemTrace, block_bytes: int, config: SamplingConfig
) -> np.ndarray:
    """Boolean inclusion mask over *trace* at *block_bytes* granularity."""
    hashes = _block_hash(trace.addresses // block_bytes, config.seed)
    return (hashes & np.uint64(_SAMPLE_MODULUS - 1)) < np.uint64(
        config.threshold
    )


# --------------------------------------------------------------------------
# Error envelope
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SamplingEnvelope:
    """Point estimates and confidence half-widths of one sampled run.

    The contract (validated by the differential suite): with ~99%
    confidence, the exact run's traffic ratio lies within
    ``traffic_ratio ± traffic_ratio_half_width`` and its miss rate
    within ``miss_rate ± miss_rate_half_width``. Half-widths come from a
    leave-one-stratum-out jackknife plus a small relative bias guard.
    """

    rate: float              #: effective (quantized) sampling rate
    seed: int
    strata: int
    sampled_refs: int
    total_refs: int
    traffic_ratio: float
    traffic_ratio_half_width: float
    miss_rate: float
    miss_rate_half_width: float

    @property
    def traffic_ratio_ci(self) -> tuple[float, float]:
        return (
            self.traffic_ratio - self.traffic_ratio_half_width,
            self.traffic_ratio + self.traffic_ratio_half_width,
        )

    @property
    def miss_rate_ci(self) -> tuple[float, float]:
        return (
            max(0.0, self.miss_rate - self.miss_rate_half_width),
            min(1.0, self.miss_rate + self.miss_rate_half_width),
        )

    def describe(self) -> str:
        return (
            f"sampled estimate: rate {self.rate:g}, seed {self.seed}, "
            f"{self.sampled_refs:,}/{self.total_refs:,} refs, "
            f"{self.strata}-stratum jackknife (~99% CI)"
        )


# --------------------------------------------------------------------------
# Core estimator
# --------------------------------------------------------------------------


def _scaled_capacity(capacity_blocks: int, rate: float) -> int:
    return max(1, round(capacity_blocks * rate))


def _subtrace(trace: MemTrace, keep: np.ndarray, label: str) -> MemTrace:
    sub = MemTrace.__new__(MemTrace)
    addresses = trace.addresses[keep]
    is_write = trace.is_write[keep]
    addresses.setflags(write=False)
    is_write.setflags(write=False)
    # Addresses come pre-aligned from the parent trace, so the private
    # constructor path skips MemTrace's re-validation copy.
    sub._addresses = addresses
    sub._is_write = is_write
    sub.name = label
    return sub


def _estimate(
    trace: MemTrace,
    block_bytes: int,
    capacity_blocks: int,
    sampling: SamplingConfig,
    simulate,
) -> CacheStats:
    """Sampled estimate of ``simulate(full trace, capacity_blocks)``.

    *simulate(subtrace, capacity) -> CacheStats* must be an exact
    miniature run of the target cache at the given (block) capacity.
    """
    n = len(trace)
    if n == 0:
        return CacheStats()
    if round(capacity_blocks * sampling.rate) < _MIN_SCALED_BLOCKS:
        # Capacity floor: keep the miniature cache out of the
        # quantization-bias regime by raising this run's rate.
        floored = min(1.0, _MIN_SCALED_BLOCKS / capacity_blocks)
        sampling = SamplingConfig(
            floored, seed=sampling.seed, strata=sampling.strata
        )
    rate = sampling.effective_rate
    hashes = _block_hash(trace.addresses // block_bytes, sampling.seed)
    keep = (hashes & np.uint64(_SAMPLE_MODULUS - 1)) < np.uint64(
        sampling.threshold
    )
    sampled = int(np.count_nonzero(keep))
    if sampled == 0:
        raise SimulationError(
            f"spatial sample at rate {sampling.rate:g} selected 0 of "
            f"{n:,} references; raise the rate or change the seed"
        )
    label = f"{trace.name}~sampled" if trace.name else "~sampled"
    sub = _subtrace(trace, keep, label)
    strata = (hashes[keep] >> np.uint64(32)) % np.uint64(sampling.strata)

    point = simulate(sub, _scaled_capacity(capacity_blocks, rate))
    request_bytes = n * WORD_BYTES
    ratio_point = point.total_traffic_bytes / rate / request_bytes

    # Misses and traffic are *block-additive*: each sampled block
    # contributes its own misses/bytes, so dividing by R is unbiased and
    # low-variance. Hits are dense per-reference counts whose sampled
    # fraction wanders far from R on skewed traces — never scale them;
    # derive hits as (exact totals − scaled misses) instead.
    reads = trace.read_count
    writes = trace.write_count

    def scaled(value: int) -> int:
        return round(value / rate)

    read_misses = min(reads, scaled(point.reads - point.read_hits))
    write_misses = min(writes, scaled(point.writes - point.write_hits))
    miss_point = (read_misses + write_misses) / n

    # Leave-one-stratum-out jackknife. Strata come from an independent
    # slice of the block hash, so each replicate is itself an unbiased
    # spatial sample at rate R*(K-1)/K. At rate 1.0 (capacity floor hit
    # the ceiling) the "sample" is the whole trace: the point run is
    # exact and the envelope collapses to zero width.
    k = sampling.strata
    ratio_reps = []
    miss_reps = []
    if rate < 1.0:
        for leave_out in range(k):
            rep_keep = strata != leave_out
            rep_rate = rate * (k - 1) / k
            rep = simulate(
                _subtrace(sub, rep_keep, label),
                _scaled_capacity(capacity_blocks, rep_rate),
            )
            ratio_reps.append(
                rep.total_traffic_bytes / rep_rate / request_bytes
            )
            miss_reps.append(min(1.0, rep.misses / rep_rate / n))

    def half_width(reps: list[float], center: float, floor: float) -> float:
        if not reps:
            return 0.0
        mean = sum(reps) / k
        variance = sum((value - mean) ** 2 for value in reps)
        se = math.sqrt((k - 1) / k * variance)
        return _Z * se + _RELATIVE_GUARD * abs(center) + floor

    envelope = SamplingEnvelope(
        rate=rate,
        seed=sampling.seed,
        strata=k,
        sampled_refs=sampled,
        total_refs=n,
        traffic_ratio=ratio_point,
        traffic_ratio_half_width=half_width(
            ratio_reps, ratio_point, _TRAFFIC_RATIO_FLOOR
        ),
        miss_rate=miss_point,
        miss_rate_half_width=half_width(
            miss_reps, miss_point, _MISS_RATE_FLOOR
        ),
    )

    # Scale the miniature counts back to full-trace magnitudes. Access
    # totals are known exactly; the hit counts are derived from the
    # scaled miss estimates so stats.miss_rate equals the envelope's
    # miss-rate estimate by construction.
    stats = CacheStats(
        accesses=n,
        reads=reads,
        writes=writes,
        read_hits=reads - read_misses,
        write_hits=writes - write_misses,
        fetch_bytes=scaled(point.fetch_bytes),
        writeback_bytes=scaled(point.writeback_bytes),
        writethrough_bytes=scaled(point.writethrough_bytes),
        flush_writeback_bytes=scaled(point.flush_writeback_bytes),
        estimate=envelope,
    )
    if OBS.enabled:
        OBS.count("sampled.estimates")
        OBS.count("sampled.refs", sampled)
        OBS.emit(
            "sampled.estimate",
            trace=trace.name,
            rate=rate,
            seed=sampling.seed,
            sampled_refs=sampled,
            total_refs=n,
            traffic_ratio=ratio_point,
            traffic_ratio_half_width=envelope.traffic_ratio_half_width,
        )
    return stats


# --------------------------------------------------------------------------
# Public engine entry points
# --------------------------------------------------------------------------


def cache_sampled_reason(config: CacheConfig, listener=None) -> str | None:
    """Why *config* cannot use the sampled cache engine (None = it can).

    Miniature simulation needs the capacity to be scalable by R, which
    holds for fully-associative stacks (LRU, and MIN via the MTC) but
    not for set-indexed caches, where shrinking the capacity changes the
    set mapping rather than the per-set competition.
    """
    if listener is not None:
        return "traffic listeners require the per-access scalar loop"
    if not config.is_fully_associative:
        return (
            "spatial sampling estimates fully-associative caches only "
            f"(got {config.num_sets} sets)"
        )
    if config.replacement != "lru":
        return (
            f"{config.replacement!r} replacement has no sampled Mattson "
            "machinery (LRU only)"
        )
    if config.write_policy is not WritePolicy.WRITEBACK:
        return "the sampled traffic curve covers write-back caches only"
    if config.allocate is not AllocatePolicy.WRITE_ALLOCATE:
        return (
            "the sampled traffic curve covers write-allocate caches only"
        )
    return None


def mtc_sampled_reason(config) -> str | None:
    """Why *config* cannot use the sampled MTC engine (None = it can)."""
    return mtc_fast_supported(config)


def simulate_cache_sampled(
    config: CacheConfig,
    trace: MemTrace,
    *,
    flush: bool = True,
    sampling: SamplingConfig | None = None,
) -> CacheStats:
    """Sampled fully-associative LRU estimate with an error envelope.

    Runs the extended Mattson pass (:func:`repro.trace.mrc.traffic_curve`)
    over the spatially-sampled sub-trace and reads the stats at the
    R-scaled capacity; all counts are rescaled by 1/R and the returned
    stats carry a :class:`SamplingEnvelope` in ``estimate``.
    """
    from repro.trace.mrc import traffic_curve

    reason = cache_sampled_reason(config)
    if reason is not None:
        raise ConfigurationError(
            f"no sampled engine for {config.describe()}: {reason}"
        )
    if sampling is None:
        sampling = _sampling or SamplingConfig(DEFAULT_SAMPLE_RATE)

    def miniature(sub: MemTrace, capacity: int) -> CacheStats:
        curve = traffic_curve(sub, block_bytes=config.block_bytes)
        return curve.stats_at(capacity, flush=flush)

    return _estimate(
        trace, config.block_bytes, config.num_blocks, sampling, miniature
    )


@dataclass(frozen=True, slots=True)
class _ScaledMTC:
    """Duck-typed MTC configuration at a non-power-of-two capacity.

    ``MTCConfig`` insists on power-of-two sizes; the R-scaled miniature
    capacity is almost never one, so the miniature runs hand the fast
    kernel this shim instead (it only reads the fields below).
    """

    capacity_blocks: int
    block_bytes: int
    allocate: AllocatePolicy
    bypass: bool

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // WORD_BYTES

    def describe(self) -> str:
        return f"MTC~sampled {self.capacity_blocks} blocks"


def simulate_mtc_sampled(
    config,
    trace: MemTrace,
    *,
    flush: bool = True,
    sampling: SamplingConfig | None = None,
) -> CacheStats:
    """Sampled minimal-traffic-cache estimate with an error envelope.

    MIN is fully associative, so miniature simulation applies: the exact
    :func:`~repro.mem.engines.simulate_mtc_fast` kernel runs over the
    sampled sub-trace at capacity round(C*R), and the counts scale back
    by 1/R. *config* is an :class:`~repro.mem.mtc.MTCConfig`.
    """
    reason = mtc_sampled_reason(config)
    if reason is not None:
        raise ConfigurationError(
            f"no sampled engine for {config.describe()}: {reason}"
        )
    if sampling is None:
        sampling = _sampling or SamplingConfig(DEFAULT_SAMPLE_RATE)

    def miniature(sub: MemTrace, capacity: int) -> CacheStats:
        shim = _ScaledMTC(
            capacity_blocks=capacity,
            block_bytes=config.block_bytes,
            allocate=config.allocate,
            bypass=config.bypass,
        )
        return simulate_mtc_fast(shim, sub, flush=flush)

    return _estimate(
        trace,
        config.block_bytes,
        config.capacity_blocks,
        sampling,
        miniature,
    )
