"""Timing memory system: L1 + L2 + DRAM with buses, MSHRs, prefetch.

This is the memory half of the paper's Section 3 simulations (Table 4
parameters): a one-cycle L1, an off-chip L2 reached over a 128-bit bus
running at a fraction of the processor clock, and a 90 ns main memory with
infinite banks behind a 64-bit bus. Lockup-free caches are modelled with a
finite MSHR file; experiments E/F add tagged prefetch [17].

Three modes implement the execution-time decomposition:

* ``full``     — finite buses (occupancy + queueing) and finite MSHRs;
* ``infinite`` — same latencies but infinitely wide paths: transfers are
  instantaneous and nothing queues (the paper's T_I);
* ``perfect``  — every access completes in one cycle (T_P).

All times are in processor cycles.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.obs import OBS
from repro.trace.model import WORD_BYTES


class MemoryMode(enum.Enum):
    FULL = "full"
    INFINITE = "infinite"
    PERFECT = "perfect"


@dataclass(frozen=True, slots=True)
class BusSpec:
    """A data bus between two hierarchy levels."""

    width_bytes: int
    #: Processor cycles per bus cycle (the paper's bus/proc clock ratio
    #: denominator: 3 for SPEC92, 4 for SPEC95).
    proc_cycles_per_beat: int
    #: Extra beats per transaction (address phase / turnaround; the paper
    #: multiplexes data and address on the main-memory bus).
    overhead_beats: int = 1

    def __post_init__(self) -> None:
        if self.width_bytes <= 0 or self.proc_cycles_per_beat <= 0:
            raise ConfigurationError("bus width and clock ratio must be positive")
        if self.overhead_beats < 0:
            raise ConfigurationError("overhead beats cannot be negative")

    def beats(self, nbytes: int) -> int:
        return math.ceil(nbytes / self.width_bytes)

    def occupancy_cycles(self, nbytes: int) -> int:
        return (self.beats(nbytes) + self.overhead_beats) * self.proc_cycles_per_beat


class TimingBus:
    """A bus with an earliest-free cursor (FCFS occupancy model)."""

    __slots__ = (
        "spec", "infinite", "next_free", "busy_cycles",
        "name", "_ctr_transfers", "_ctr_busy",
    )

    def __init__(self, spec: BusSpec, *, infinite: bool, name: str = "bus") -> None:
        self.spec = spec
        self.infinite = infinite
        self.next_free = 0
        self.busy_cycles = 0
        self.name = name
        self._ctr_transfers = f"bus.{name}.transfers"
        self._ctr_busy = f"bus.{name}.busy_cycles"

    def transfer(self, request_time: int, nbytes: int) -> tuple[int, int]:
        """Schedule a transfer; returns (first_beat_done, all_done).

        ``first_beat_done`` is when the critical word is available (the
        paper assumes critical-word-first); ``all_done`` is when the bus
        frees. In infinite mode both equal *request_time* — an infinitely
        wide path moves any block instantaneously and never queues.
        """
        if self.infinite:
            # Infinitely wide: the whole block moves in one bus beat and
            # the bus never queues.
            done = request_time + self.spec.proc_cycles_per_beat
            return done, done
        start = max(request_time, self.next_free)
        duration = self.spec.occupancy_cycles(nbytes)
        end = start + duration
        self.next_free = end
        self.busy_cycles += duration
        if OBS.enabled:
            OBS.count(self._ctr_transfers)
            OBS.count(self._ctr_busy, duration)
            OBS.emit(
                "bus.transfer",
                bus=self.name,
                nbytes=nbytes,
                request=request_time,
                start=start,
                end=end,
            )
        return start + self.spec.proc_cycles_per_beat, end


@dataclass(frozen=True, slots=True)
class TimingMemoryParams:
    """Table 4 parameters, expressed in processor cycles."""

    l1_config: CacheConfig
    l2_config: CacheConfig
    l1_l2_bus: BusSpec
    l2_mem_bus: BusSpec
    l1_hit_cycles: int = 1
    l2_access_cycles: int = 9     #: 30 ns at 300 MHz
    memory_access_cycles: int = 27  #: 90 ns at 300 MHz
    mshr_count: int = 1           #: 1 = blocking (hit-under-miss only)
    tagged_prefetch: bool = False

    def __post_init__(self) -> None:
        if self.l1_hit_cycles <= 0:
            raise ConfigurationError("L1 hit time must be positive")
        if self.mshr_count <= 0:
            raise ConfigurationError("need at least one MSHR")


@dataclass(slots=True)
class TimingMemoryStats:
    accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    mshr_merges: int = 0
    mshr_stall_cycles: int = 0
    prefetches_issued: int = 0
    prefetches_dropped: int = 0
    l1_l2_traffic_bytes: int = 0
    l2_mem_traffic_bytes: int = 0


class TimingMemory:
    """The full memory system as seen by one core.

    The functional cache state (what hits, what gets evicted) is identical
    across the three modes — only timing differs — so T_P, T_I and T are
    measured over the same miss stream, as the decomposition requires.
    """

    def __init__(self, params: TimingMemoryParams, mode: MemoryMode) -> None:
        self.params = params
        self.mode = mode
        self.stats = TimingMemoryStats()
        infinite = mode is not MemoryMode.FULL
        self._l1 = Cache(params.l1_config, listener=self._on_l1_event)
        self._l2 = Cache(params.l2_config, listener=self._on_l2_event)
        self._l1_l2 = TimingBus(params.l1_l2_bus, infinite=infinite, name="l1_l2")
        self._l2_mem = TimingBus(params.l2_mem_bus, infinite=infinite, name="l2_mem")
        self._now = 0
        self._in_l1_writeback = False
        #: Outstanding fills: block -> (fill_time, mshr_release_time).
        self._outstanding: dict[int, tuple[int, int]] = {}
        #: Release times of allocated MSHRs (kept sorted lazily).
        self._mshr_release: list[int] = []
        #: Tag bits for the tagged prefetcher: prefetched, not yet demanded.
        self._prefetch_tags: set[int] = set()

    # -- traffic listeners -------------------------------------------------------------

    def _on_l1_event(self, kind: str, address: int, nbytes: int) -> None:
        """Dirty L1 evictions go down to L2: functional write + bus time."""
        if kind not in ("writeback", "flush"):
            return
        self.stats.l1_l2_traffic_bytes += nbytes
        if self.mode is MemoryMode.FULL:
            self._l1_l2.transfer(self._now, nbytes)
        self._in_l1_writeback = True
        try:
            self._l2.access(address, True)
        finally:
            self._in_l1_writeback = False

    def _on_l2_event(self, kind: str, address: int, nbytes: int) -> None:
        """L2 write-backs — and fetches forced by write-allocating an L1
        write-back — occupy the memory bus."""
        if kind in ("writeback", "flush") or (
            kind == "fetch" and self._in_l1_writeback
        ):
            self.stats.l2_mem_traffic_bytes += nbytes
            if self.mode is MemoryMode.FULL:
                self._l2_mem.transfer(self._now, nbytes)

    # -- public API -------------------------------------------------------------------

    def access(self, time: int, address: int, is_write: bool) -> int:
        """Process one data access; returns the completion cycle.

        Stores complete in one cycle regardless (the paper assumes an
        infinitely deep write buffer) but still move their blocks and
        consume bus bandwidth. Loads complete when the critical word
        arrives.
        """
        self.stats.accesses += 1
        if self.mode is MemoryMode.PERFECT:
            return time + 1

        self._now = time
        params = self.params
        block = address // params.l1_config.block_bytes
        l1_hit = self._l1.contains(address)
        if l1_hit:
            self._touch_l1(address, is_write)
            completion = time + params.l1_hit_cycles
            pending = self._outstanding.get(block)
            if pending is not None and pending[0] > time and not is_write:
                # The block's fill is still in flight: this reference
                # merges into the outstanding miss and waits for the data.
                self.stats.mshr_merges += 1
                if OBS.enabled:
                    OBS.count("mshr.merges")
                completion = max(completion, pending[0])
            if params.tagged_prefetch and block in self._prefetch_tags:
                # First demand reference to a prefetched block: tag fires.
                self._prefetch_tags.discard(block)
                self._issue_prefetch(time, (block + 1) * params.l1_config.block_bytes)
            return completion

        # ---- L1 miss ----
        self.stats.l1_misses += 1
        if OBS.enabled:
            OBS.count("timing.l1_misses")

        start = self._allocate_mshr(time)
        fill_time, release = self._fetch_into_l1(start, address)
        self._register_mshr(block, fill_time, release)
        self._touch_l1_fill(address, is_write)
        if params.tagged_prefetch:
            self._issue_prefetch(time, (block + 1) * params.l1_config.block_bytes)
        if is_write:
            return time + params.l1_hit_cycles
        return max(time + params.l1_hit_cycles, fill_time)

    def busy_fraction(self, total_cycles: int) -> tuple[float, float]:
        """(L1/L2, L2/mem) bus utilisation over *total_cycles*."""
        if total_cycles <= 0:
            return 0.0, 0.0
        return (
            self._l1_l2.busy_cycles / total_cycles,
            self._l2_mem.busy_cycles / total_cycles,
        )

    # -- internals ---------------------------------------------------------------------

    def _touch_l1(self, address: int, is_write: bool) -> None:
        self._l1.access(address, is_write)

    def _touch_l1_fill(self, address: int, is_write: bool) -> None:
        """Update functional L1 state for a miss (fills the block)."""
        self._l1.access(address, is_write)

    def _allocate_mshr(self, time: int) -> int:
        """Earliest time an MSHR is available at or after *time*.

        MSHR limits apply in both the full and the infinite-width modes:
        a blocking cache is a latency property of the design, not a path-
        width limit, so the paper's T_I keeps it (only the buses widen).
        """
        releases = self._mshr_release
        # Drop entries already free.
        releases[:] = [r for r in releases if r > time]
        if len(releases) < self.params.mshr_count:
            return time
        earliest = min(releases)
        self.stats.mshr_stall_cycles += earliest - time
        if OBS.enabled:
            OBS.count("mshr.stalls")
            OBS.count("mshr.stall_cycles", earliest - time)
            OBS.emit("mshr.stall", at=time, until=earliest)
        return earliest

    def _register_mshr(self, block: int, fill_time: int, release: int) -> None:
        self._outstanding[block] = (fill_time, release)
        self._mshr_release.append(release)
        # Retire completed outstanding entries opportunistically.
        if len(self._outstanding) > 4 * self.params.mshr_count + 8:
            horizon = fill_time
            self._outstanding = {
                b: (f, r)
                for b, (f, r) in self._outstanding.items()
                if r > horizon - 1
            }

    def _fetch_into_l1(self, time: int, address: int) -> tuple[int, int]:
        """Move the block containing *address* into L1; returns
        (critical-word time, MSHR release time)."""
        params = self.params
        l1_block = params.l1_config.block_bytes
        block_addr = (address // l1_block) * l1_block

        l2_ready = time + params.l2_access_cycles
        if self._l2.contains(block_addr):
            self._l2.access(block_addr, False)
            data_at_l2 = l2_ready
        else:
            self.stats.l2_misses += 1
            if OBS.enabled:
                OBS.count("timing.l2_misses")
            self._l2.access(block_addr, False)
            l2_block = params.l2_config.block_bytes
            mem_done_first, mem_done_all = self._l2_mem.transfer(
                l2_ready + params.memory_access_cycles, l2_block
            )
            self.stats.l2_mem_traffic_bytes += l2_block
            data_at_l2 = mem_done_first
            del mem_done_all

        first, all_done = self._l1_l2.transfer(data_at_l2, l1_block)
        self.stats.l1_l2_traffic_bytes += l1_block
        return first, all_done

    def _issue_prefetch(self, time: int, address: int) -> None:
        """Tagged prefetch of the next sequential block (best effort)."""
        params = self.params
        block = address // params.l1_config.block_bytes
        if self._l1.contains(address) or block in self._outstanding:
            return
        releases = [r for r in self._mshr_release if r > time]
        if len(releases) >= params.mshr_count:
            # No MSHR to spare: drop rather than stall the processor.
            self.stats.prefetches_dropped += 1
            if OBS.enabled:
                OBS.count("prefetch.dropped")
            return
        self.stats.prefetches_issued += 1
        if OBS.enabled:
            OBS.count("prefetch.issued")
        fill_time, release = self._fetch_into_l1(time, address)
        self._register_mshr(block, fill_time, release)
        self._l1.access(address, False)
        self._prefetch_tags.add(block)
        if len(self._prefetch_tags) > 4096:
            self._prefetch_tags.clear()
