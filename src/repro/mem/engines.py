"""Vectorized simulation engines and one-pass multi-size sweep kernels.

The scalar simulators in :mod:`repro.mem.cache` and :mod:`repro.mem.mtc`
process one reference per Python-interpreter iteration, which caps every
experiment near 10^6 references/second. This module provides numpy
kernels that compute *bit-identical* :class:`~repro.mem.cache.CacheStats`
(the differential property suite in ``tests/test_mem_engines.py`` holds
them to exact equality):

* :func:`simulate_cache_columns` — A-way set-associative LRU simulation
  for every write/allocate policy combination. References are grouped by
  set with one stable sort, then laid out column-major (k-th access of
  every set side by side) so each time step updates all sets' LRU stacks
  with a handful of array operations instead of one Python iteration per
  reference.
* :func:`simulate_mtc_fast` — the minimal-traffic cache's Belady MIN
  with a vectorized next-use pass and batched hit accounting: runs of
  hits between misses are counted with array reductions, and only the
  misses (where the lazy victim heap is consulted) run in Python.
* :func:`direct_mapped_family` / :func:`fully_associative_lru_family` —
  one-pass multi-size sweeps. The direct-mapped family shares one stable
  sort across the whole size axis (each doubling refines the previous
  partition by one set-index bit — an LSD radix step, so the per-size
  orderings are exactly the ones ``np.argsort`` would produce); the
  fully-associative family reads every size off a single Mattson
  stack-distance pass (:func:`repro.trace.mrc.traffic_curve`).

Engine selection is a process-wide choice (``auto`` | ``scalar`` |
``vector`` | ``sampled``) settable via :func:`set_engine`, the
:func:`use_engine` context manager, the ``REPRO_ENGINE`` environment
variable, or the CLI's ``--engine`` flag. ``auto`` picks vector kernels
when they are eligible and a simple cost model predicts a win; ``scalar``
forces the reference implementations (including disabling the
long-standing direct-mapped fast path — this is the honest baseline for
differential tests and benchmarks); ``vector`` demands a vector kernel
and raises :class:`~repro.errors.ConfigurationError` where none exists.
``sampled`` is the third tier (:mod:`repro.mem.sampled`): spatial
reference sampling producing *estimates with error envelopes* instead of
exact counts — ``auto`` only ever picks it when a sampling rate was
explicitly configured and the trace is huge.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import (
    AllocatePolicy,
    CacheConfig,
    CacheStats,
    WritePolicy,
    _simulate_direct_mapped_writeback,
)
from repro.mem.mtc import MTCConfig
from repro.mem.policies import NEVER, compute_next_use
from repro.obs import OBS, TRACER
from repro.trace.model import MemTrace, WORD_BYTES

__all__ = [
    "ENGINE_CHOICES",
    "current_engine",
    "set_engine",
    "use_engine",
    "resolve_engine",
    "cache_vector_reason",
    "simulate_cache_columns",
    "direct_mapped_family",
    "fully_associative_lru_family",
    "PreparedMTC",
    "prepare_mtc",
    "mtc_fast_supported",
    "simulate_mtc_fast",
]

#: Valid values for the process-wide engine selection.
ENGINE_CHOICES = ("auto", "scalar", "vector", "sampled")

#: Word masks fit one int64 (bit 63 is the sign), so write-validate's
#: per-word valid/dirty masks vectorize only up to this many words.
MAX_MASK_WORDS = 62


def _validated(name: str) -> str:
    if name not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose from {'|'.join(ENGINE_CHOICES)}"
        )
    return name


_engine: str = _validated(os.environ.get("REPRO_ENGINE", "auto"))


def current_engine() -> str:
    """The process-wide engine selection (``auto``/``scalar``/``vector``)."""
    return _engine


def set_engine(name: str) -> None:
    """Set the process-wide engine selection."""
    global _engine
    _engine = _validated(name)


@contextmanager
def use_engine(name: str | None):
    """Temporarily set the engine selection; ``None`` is a no-op."""
    if name is None:
        yield
        return
    previous = _engine
    set_engine(name)
    try:
        yield
    finally:
        set_engine(previous)


def resolve_engine(explicit: str | None = None) -> str:
    """An explicit per-call engine choice, else the process-wide one."""
    return _validated(explicit) if explicit is not None else _engine


# --------------------------------------------------------------------------
# Auto-selection cost model
# --------------------------------------------------------------------------

# Rough single-core throughput constants, calibrated on the container
# this repo benchmarks in (see docs/performance.md). They only steer the
# scalar/vector choice under "auto"; correctness never depends on them.
_SCALAR_SECONDS_PER_REF = 1.0e-6
_VECTOR_SECONDS_PER_COLUMN = 3.0e-5
_VECTOR_SECONDS_PER_REF = 2.0e-7
_VECTOR_SECONDS_PER_WAY_REF = 2.0e-9


def _columns_profitable(n: int, ways: int, longest_set: int) -> bool:
    """Predict whether the column kernel beats the scalar loop.

    The kernel's cost has a per-column floor (one batch of numpy calls
    per time step), so heavily skewed set-access distributions — one hot
    set receiving most references, as Compress's hash loop produces —
    make it slower than the scalar loop even though balanced traces run
    an order of magnitude faster.
    """
    vector = (
        longest_set * _VECTOR_SECONDS_PER_COLUMN
        + n * _VECTOR_SECONDS_PER_REF
        + n * ways * _VECTOR_SECONDS_PER_WAY_REF
    )
    return vector < n * _SCALAR_SECONDS_PER_REF


# --------------------------------------------------------------------------
# Set-associative LRU column kernel
# --------------------------------------------------------------------------


def cache_vector_reason(config: CacheConfig, listener=None) -> str | None:
    """Why *config* cannot use a vector cache engine (None = it can)."""
    if listener is not None:
        return "traffic listeners require the per-access scalar loop"
    if config.replacement == "min":
        return "MIN replacement is served by the MTC engine, not the cache kernel"
    if config.replacement != "lru" and config.associativity > 1:
        return (
            f"{config.replacement!r} replacement only vectorizes at "
            "associativity 1 (victim choice is forced)"
        )
    if (
        config.allocate is AllocatePolicy.WRITE_VALIDATE
        and config.words_per_block > MAX_MASK_WORDS
    ):
        return (
            f"write-validate masks for {config.words_per_block}-word "
            f"blocks exceed one int64 ({MAX_MASK_WORDS} words)"
        )
    return None


def _dm_fast_eligible(config: CacheConfig, listener) -> bool:
    return (
        listener is None
        and config.associativity == 1
        and config.write_policy is WritePolicy.WRITEBACK
        and config.allocate is AllocatePolicy.WRITE_ALLOCATE
        and config.replacement in ("lru", "fifo", "random")
    )


def dispatch_cache(
    config: CacheConfig,
    trace: MemTrace,
    *,
    flush: bool,
    selection: str,
    listener=None,
) -> CacheStats | None:
    """Pick and run a vector cache engine, or return None for scalar.

    ``selection`` is a resolved engine name other than ``"scalar"`` or
    ``"sampled"`` (the sampled tier dispatches in ``Cache.simulate``
    before this point). Under ``"vector"`` an ineligible configuration
    raises; under ``"auto"`` the cost model may still prefer the scalar
    loop.
    """
    if _dm_fast_eligible(config, listener):
        return _simulate_direct_mapped_writeback(config, trace, flush)
    reason = cache_vector_reason(config, listener)
    if reason is not None:
        if selection == "vector":
            raise ConfigurationError(
                f"no vector engine for {config.describe()}: {reason}"
            )
        return None
    if selection == "auto":
        n = len(trace)
        if n == 0:
            return None
        sets = (trace.addresses // config.block_bytes) % config.num_sets
        if config.num_sets <= 1 << 22:
            counts = np.bincount(sets, minlength=1)
        else:  # sparse giant set spaces: count per touched set only
            _, counts = np.unique(sets, return_counts=True)
        if not _columns_profitable(n, config.associativity, int(counts.max())):
            return None
    return simulate_cache_columns(config, trace, flush=flush)


def _column_layout(sets: np.ndarray):
    """Column-major layout of references grouped by set.

    Returns ``(colorder, lanes_per_column, offsets, longest)`` where
    ``colorder`` permutes the trace so that column ``t`` (every set's
    t-th access, sets ordered by descending access count) occupies the
    contiguous slice ``offsets[t]:offsets[t + 1]``. Ordering sets by
    count makes the active lanes of every column a prefix of the state
    arrays, so each time step works on plain slices.
    """
    n = sets.size
    order = np.argsort(sets, kind="stable")
    grouped = sets[order]
    heads = np.empty(n, dtype=bool)
    heads[0] = True
    heads[1:] = grouped[1:] != grouped[:-1]
    group_of = np.cumsum(heads) - 1
    counts = np.bincount(group_of)
    num_groups = counts.size
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    position = np.arange(n, dtype=np.int64) - np.repeat(starts, counts)
    by_count = np.argsort(-counts, kind="stable")
    lane_of_group = np.empty(num_groups, dtype=np.int64)
    lane_of_group[by_count] = np.arange(num_groups, dtype=np.int64)
    lane = lane_of_group[group_of]
    colorder = order[np.argsort(position * num_groups + lane, kind="stable")]
    counts_desc = counts[by_count]
    longest = int(counts_desc[0])
    lanes_per_column = np.searchsorted(
        -counts_desc, -np.arange(longest, dtype=np.int64), side="left"
    )
    offsets = np.concatenate(([0], np.cumsum(lanes_per_column)))
    return colorder, lanes_per_column, offsets, longest


def simulate_cache_columns(
    config: CacheConfig, trace: MemTrace, *, flush: bool = True
) -> CacheStats:
    """Vectorized exact set-associative LRU simulation (all policies).

    Each set's LRU stack is one row of an ``(active sets, ways)`` array,
    MRU first. Every time step processes one access per active set: a
    block match against the stack gives hits and ways, and a gather with
    a per-row shifted source index rotates the touched (or victim) way
    to the front — the array form of the scalar move-to-front.

    Stack entries are packed as ``block << 1 | dirty`` (sentinel ``-2``),
    so the block-granularity write-back state rides along in the one
    rotate gather instead of needing its own gather and copy-back per
    column — the loop body is pure per-call overhead at these widths, so
    fewer numpy crossings is directly fewer microseconds per column.
    Write-validate keeps separate per-word valid/dirty masks (bit 0 of
    the packed entry stays clear).
    """
    reason = cache_vector_reason(config)
    if reason is not None:
        raise ConfigurationError(
            f"no vector engine for {config.describe()}: {reason}"
        )
    n = len(trace)
    stats = CacheStats(
        accesses=n, reads=trace.read_count, writes=trace.write_count
    )
    if n == 0:
        return stats

    block_bytes = config.block_bytes
    ways = config.associativity
    writeback = config.write_policy is WritePolicy.WRITEBACK
    write_validate = config.allocate is AllocatePolicy.WRITE_VALIDATE
    no_allocate = config.allocate is AllocatePolicy.NO_ALLOCATE

    blocks = trace.addresses // block_bytes
    sets = blocks % config.num_sets
    colorder, lanes, offsets, longest = _column_layout(sets)
    # Packed column streams: block << 1 (dirty bit clear) and its |1 twin
    # for sentinel-proof matching (sentinel | 1 == -1 matches nothing).
    cpacked = blocks[colorder] << 1
    cmatch = cpacked | 1
    cwrites = trace.is_write[colorder]
    if write_validate:
        word_bits = np.int64(1) << (
            (trace.addresses % block_bytes) // WORD_BYTES
        )
        cbits = word_bits[colorder]
        full_mask = np.int64((1 << config.words_per_block) - 1)

    num_lanes = int(lanes[0])
    stack = np.full((num_lanes, ways), -2, dtype=np.int64)
    if write_validate:
        valid = np.zeros((num_lanes, ways), dtype=np.int64)
        dirty_mask = np.zeros((num_lanes, ways), dtype=np.int64)

    way_index = np.arange(ways, dtype=np.int64)
    way_row = way_index[None, :]
    rows_full = np.arange(num_lanes, dtype=np.intp)[:, None]
    read_hits = 0
    write_hits = 0
    fetch_blocks = 0
    fetch_words = 0
    writeback_blocks = 0
    writeback_words = 0
    writethrough_words = 0
    last_way = ways - 1
    track_dirty = writeback and not write_validate

    for t in range(longest):
        active = int(lanes[t])
        start = int(offsets[t])
        stop = start + active
        wrt = cwrites[start:stop]
        sb = stack[:active]

        match = (sb | 1) == cmatch[start:stop, None]
        hit = match.any(axis=1)
        miss = ~hit
        way = np.where(hit, match.argmax(axis=1), last_way)

        hits_here = int(np.count_nonzero(hit))
        rh = int(np.count_nonzero(hit & ~wrt))
        read_hits += rh
        write_hits += hits_here - rh

        if no_allocate:
            # Write misses bypass the cache entirely: no state change.
            change = hit | ~wrt
            writethrough_words += int(np.count_nonzero(miss & wrt))
            evict = miss & ~wrt
        else:
            change = None
            evict = miss

        # Victim accounting happens before the rotate overwrites way 0;
        # never-filled ways hold the clean -2 sentinel.
        if track_dirty:
            victim_dirty = (sb[:, last_way] & 1) != 0
            writeback_blocks += int(np.count_nonzero(evict & victim_dirty))
        elif writeback:
            wv_victim = dirty_mask[:active, last_way][evict]
            writeback_words += int(np.bitwise_count(wv_victim).sum())

        src = way_row - (way_row <= way[:, None])
        src[:, 0] = way
        rows = rows_full[:active]
        new_stack = sb[rows, src]

        if write_validate:
            new_valid = valid[:active][rows, src]
            new_dirty = dirty_mask[:active][rows, src]
            front_valid = new_valid[:, 0]
            # Read of a write-validated hole: fetch the whole block.
            hole = hit & ~wrt & ((front_valid & cbits[start:stop]) == 0)
            fetch_blocks += int(np.count_nonzero(miss & ~wrt))
            fetch_blocks += int(np.count_nonzero(hole))
            bit = cbits[start:stop]
            wbit = np.where(wrt, bit, np.int64(0))
            new_valid[:, 0] = np.where(
                hit,
                np.where(hole, full_mask, front_valid) | wbit,
                np.where(wrt, bit, full_mask),
            )
            new_dirty[:, 0] = np.where(hit, new_dirty[:, 0] | wbit, wbit)
            valid[:active] = new_valid
            dirty_mask[:active] = new_dirty
            new_stack[:, 0] = cpacked[start:stop]
        else:
            if config.allocate is AllocatePolicy.WRITE_ALLOCATE:
                fetch_blocks += active - hits_here
            else:  # no-allocate: only read misses fetch
                fetch_blocks += int(np.count_nonzero(evict))
            if track_dirty:
                # Hits inherit the touched way's dirty bit; fills start
                # dirty exactly when the access is a write.
                stay_dirty = hit & ((new_stack[:, 0] & 1) != 0)
                new_stack[:, 0] = cpacked[start:stop] + (wrt | stay_dirty)
            else:
                new_stack[:, 0] = cpacked[start:stop]

        if change is not None:
            stack[:active] = np.where(change[:, None], new_stack, sb)
        else:
            stack[:active] = new_stack

    if config.write_policy is WritePolicy.WRITETHROUGH:
        # Every write sends its word below, hit or miss, all policies.
        writethrough_words = trace.write_count

    stats.read_hits = read_hits
    stats.write_hits = write_hits
    stats.fetch_bytes = fetch_blocks * block_bytes + fetch_words * WORD_BYTES
    stats.writeback_bytes = (
        writeback_blocks * block_bytes + writeback_words * WORD_BYTES
    )
    stats.writethrough_bytes = writethrough_words * WORD_BYTES

    if flush and writeback:
        if write_validate:
            stats.flush_writeback_bytes = (
                int(np.bitwise_count(dirty_mask).sum()) * WORD_BYTES
            )
        else:
            # Dirty bits live in bit 0 of the packed stack entries; the
            # -2 sentinel has a clear bit 0 and never counts.
            stats.flush_writeback_bytes = (
                int(np.count_nonzero(stack & 1)) * block_bytes
            )
    return stats


# --------------------------------------------------------------------------
# One-pass multi-size families
# --------------------------------------------------------------------------


def _record_family(
    kind: str,
    trace: MemTrace,
    results: dict[int, CacheStats],
    started: float | None = None,
) -> None:
    """Credit a family pass with the per-size simulations it replaced.

    Each size's stats cover the full trace, so the counters receive the
    *equivalent* per-size reference counts — ``cache.accesses`` divided
    by wall-clock then reads as effective throughput, which is exactly
    the quantity the one-pass sweep is supposed to multiply.
    """
    if TRACER.enabled and started is not None:
        TRACER.emit_span(
            "engine.family",
            started,
            time.time(),
            family=kind,
            trace=trace.name,
            sizes=len(results),
        )
    if not OBS.enabled:
        return
    if started is not None:
        OBS.hist(f"engine.family.{kind}.time", time.time() - started)
    OBS.count("cache.simulations", len(results))
    total = 0
    for stats in results.values():
        total += stats.accesses
        OBS.count("cache.accesses", stats.accesses)
        OBS.count("cache.misses", stats.misses)
        OBS.count("cache.fetch_bytes", stats.fetch_bytes)
        OBS.count(
            "cache.writeback_bytes",
            stats.writeback_bytes + stats.flush_writeback_bytes,
        )
        OBS.count("cache.writethrough_bytes", stats.writethrough_bytes)
    OBS.emit(
        "engine.family",
        family=kind,
        trace=trace.name,
        sizes=sorted(results),
        accesses=total,
    )


def direct_mapped_family(
    trace: MemTrace,
    sizes_bytes: list[int],
    *,
    block_bytes: int = 32,
    flush: bool = True,
) -> dict[int, CacheStats]:
    """Exact stats for every direct-mapped WB/WA cache size in one pass.

    One stable sort at the smallest set count; each size doubling then
    refines the permutation with a single stable bit partition (an LSD
    radix step), which reproduces ``np.argsort(blocks % sets, stable)``
    for that size exactly — so every per-size result is bit-identical to
    :func:`~repro.mem.cache._simulate_direct_mapped_writeback` while the
    O(n log n) sort is paid once for the whole axis.
    """
    results: dict[int, CacheStats] = {}
    if not sizes_bytes:
        return results
    started = time.time()
    for size in sizes_bytes:
        # Validate every size eagerly (matches per-size construction).
        CacheConfig(size_bytes=size, block_bytes=block_bytes)
    n = len(trace)
    blocks = trace.addresses // block_bytes
    writes = trace.is_write
    order: np.ndarray | None = None
    bits_done = 0
    for size in sorted(set(sizes_bytes)):
        num_sets = size // block_bytes
        bits = num_sets.bit_length() - 1
        if n == 0:
            results[size] = CacheStats()
            continue
        if order is None:
            order = np.argsort(blocks % num_sets, kind="stable")
        else:
            for bit in range(bits_done, bits):
                is_set = ((blocks[order] >> bit) & 1).astype(bool)
                order = np.concatenate((order[~is_set], order[is_set]))
        bits_done = bits
        config = CacheConfig(size_bytes=size, block_bytes=block_bytes)
        results[size] = _dm_stats_from_order(
            config, blocks, writes, order, trace, flush
        )
    _record_family("direct-mapped", trace, results, started)
    return results


def _dm_stats_from_order(
    config: CacheConfig,
    blocks: np.ndarray,
    writes: np.ndarray,
    order: np.ndarray,
    trace: MemTrace,
    flush: bool,
) -> CacheStats:
    """Direct-mapped WB/WA stats given the set-grouped permutation.

    Mirrors ``_simulate_direct_mapped_writeback`` step for step; the
    differential suite pins the two to exact equality on every size of
    random sweeps so they cannot drift apart.
    """
    n = blocks.size
    stats = CacheStats(
        accesses=n, reads=trace.read_count, writes=trace.write_count
    )
    sorted_blocks = blocks[order]
    sorted_sets = sorted_blocks % config.num_sets
    sorted_writes = writes[order]

    same_set = np.empty(n, dtype=bool)
    same_set[0] = False
    same_set[1:] = sorted_sets[1:] == sorted_sets[:-1]
    same_block = np.empty(n, dtype=bool)
    same_block[0] = False
    same_block[1:] = sorted_blocks[1:] == sorted_blocks[:-1]
    hit = same_set & same_block
    miss = ~hit

    stats.read_hits = int(np.sum(hit & ~sorted_writes))
    stats.write_hits = int(np.sum(hit & sorted_writes))
    stats.fetch_bytes = int(miss.sum()) * config.block_bytes

    run_id = np.cumsum(miss) - 1
    dirty_runs = np.zeros(int(run_id[-1]) + 1, dtype=bool)
    np.logical_or.at(dirty_runs, run_id[sorted_writes], True)
    dirty_total = int(dirty_runs.sum()) * config.block_bytes

    last_of_set = np.zeros(int(run_id[-1]) + 1, dtype=bool)
    set_change = np.empty(n, dtype=bool)
    set_change[:-1] = sorted_sets[1:] != sorted_sets[:-1]
    set_change[-1] = True
    last_of_set[run_id[set_change]] = True
    flushed = int(np.sum(dirty_runs & last_of_set)) * config.block_bytes
    if flush:
        stats.flush_writeback_bytes = flushed
        stats.writeback_bytes = dirty_total - flushed
    else:
        stats.writeback_bytes = dirty_total - flushed
    return stats


def fully_associative_lru_family(
    trace: MemTrace,
    sizes_bytes: list[int],
    *,
    block_bytes: int = 32,
    flush: bool = True,
) -> dict[int, CacheStats]:
    """Exact stats for every fully-associative LRU WB/WA size in one pass.

    Built on the extended Mattson analysis of
    :func:`repro.trace.mrc.traffic_curve`: one stack-distance pass yields
    hits, fetches, write-backs, and flush write-backs for *every*
    capacity at once. Bit-identical to simulating each size with
    ``CacheConfig.fully_associative`` (the differential suite holds it
    to exact equality).
    """
    from repro.trace.mrc import traffic_curve

    started = time.time()
    for size in sizes_bytes:
        CacheConfig.fully_associative(size, block_bytes)
    curve = traffic_curve(trace, block_bytes=block_bytes)
    results = {
        size: curve.stats_at(size // block_bytes, flush=flush)
        for size in sizes_bytes
    }
    _record_family("fully-associative-lru", trace, results, started)
    return results


# --------------------------------------------------------------------------
# Minimal-traffic cache (Belady MIN) fast engine
# --------------------------------------------------------------------------


@dataclass(slots=True)
class PreparedMTC:
    """Pass-1 products of an MTC run, reusable across cache sizes.

    ``dense`` maps each reference to a dense block id (``np.unique``
    keeps ids in block-value order, so heap tie-breaks on dense ids
    order identically to ties on raw block numbers).
    """

    block_bytes: int
    dense: np.ndarray        #: per-reference dense block id (int64)
    next_use: np.ndarray     #: per-reference next-use position (int64)
    is_write: np.ndarray     #: per-reference write flag (bool)
    #: Sorted positions of each block's first reference (always misses).
    first_positions: np.ndarray
    #: write_prefix[p] = number of writes before position p (len n + 1).
    write_prefix: np.ndarray
    num_blocks: int          #: distinct blocks in the trace
    _lists: tuple[list, list, list] | None = None

    def as_lists(self) -> tuple[list, list, list]:
        """(dense, next_use, is_write) as plain lists, memoized.

        Python-level indexing is ~3x cheaper on lists than on numpy
        scalars; the short-run fallback of :func:`simulate_mtc_fast` is
        hot enough for that to matter, and memoizing on the prepared
        pass shares the conversion across a whole size sweep.
        """
        if self._lists is None:
            self._lists = (
                self.dense.tolist(),
                self.next_use.tolist(),
                self.is_write.tolist(),
            )
        return self._lists


def prepare_mtc(trace: MemTrace, block_bytes: int = WORD_BYTES) -> PreparedMTC:
    """Vectorized pass 1: dense ids, next-use chains, first touches."""
    blocks = trace.addresses // block_bytes
    uniq, dense = np.unique(blocks, return_inverse=True)
    dense = dense.astype(np.int64, copy=False)
    n = dense.size
    next_use = np.full(n, NEVER, dtype=np.int64)
    if n:
        order = np.argsort(dense, kind="stable")
        grouped = dense[order]
        heads = np.empty(n, dtype=bool)
        heads[0] = True
        heads[1:] = grouped[1:] != grouped[:-1]
        same = ~heads[1:]
        next_use[order[:-1][same]] = order[1:][same]
        first_positions = np.sort(order[heads])
    else:
        first_positions = np.empty(0, dtype=np.int64)
    write_prefix = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(trace.is_write, out=write_prefix[1:])
    return PreparedMTC(
        block_bytes=block_bytes,
        dense=dense,
        next_use=next_use,
        is_write=trace.is_write,
        first_positions=first_positions,
        write_prefix=write_prefix,
        num_blocks=int(uniq.size),
    )


def mtc_fast_supported(config: MTCConfig) -> str | None:
    """Why *config* cannot use the fast MTC engine (None = it can)."""
    if config.words_per_block != 1:
        return (
            "the batched MTC engine is word-granularity only "
            f"(got {config.block_bytes}-byte blocks)"
        )
    return None


def simulate_mtc_fast(
    config: MTCConfig,
    trace: MemTrace,
    *,
    flush: bool = True,
    prepared: PreparedMTC | None = None,
) -> CacheStats:
    """Fast word-granularity MTC simulation (exact Belady MIN + bypass).

    Pass 1 is fully vectorized (and shareable across sizes through
    *prepared*). Pass 2 *jumps from miss to miss*: in a MIN cache with
    bypass, every future miss is predictable online — a reference misses
    iff it is its block's first touch, or its block's previous reference
    was bypassed, or the block was evicted since (and an evicted or
    bypassed block's next reference is known: it is the next-use chain
    value that made it the victim). The engine pre-marks first touches
    on a byte timeline and marks each induced miss with one store at
    the eviction/bypass that causes it, so finding the next miss is one
    C-level ``bytearray.find`` (memchr), and everything strictly between
    consecutive misses is a hit run:
    hit counts come from a prefix sum of writes, dirty marking is one
    boolean scatter, and the victim heap's refresh entries are exactly
    the run positions whose next use lies beyond the run (each block's
    last occurrence in the run — one push per distinct block, no
    residency checks anywhere). Keys must be every resident block's
    *current* next use: an earlier revision kept insert-time keys as
    lower bounds, and a heap ordered by lower bounds can bury the true
    MIN victim below a fresher-looking top.
    """
    import heapq

    reason = mtc_fast_supported(config)
    if reason is not None:
        raise ConfigurationError(f"no vector engine for {config.describe()}: {reason}")
    if prepared is None:
        prepared = prepare_mtc(trace, config.block_bytes)
    elif prepared.block_bytes != config.block_bytes:
        raise ConfigurationError(
            f"prepared pass for {prepared.block_bytes}-byte blocks reused "
            f"at {config.block_bytes}-byte blocks"
        )

    n = int(prepared.dense.size)
    stats = CacheStats(
        accesses=n, reads=trace.read_count, writes=trace.write_count
    )
    if n == 0:
        return stats

    write_validate = config.allocate is AllocatePolicy.WRITE_VALIDATE
    capacity = config.capacity_blocks
    num_blocks = prepared.num_blocks
    dense = prepared.dense
    is_write = prepared.is_write

    if capacity >= num_blocks:
        # The MTC never fills: every miss is a first touch, nothing is
        # ever evicted or bypassed. Closed form, no loop at all.
        cold_writes = int(np.count_nonzero(is_write[prepared.first_positions]))
        cold_reads = num_blocks - cold_writes
        stats.read_hits = stats.reads - cold_reads
        stats.write_hits = stats.writes - cold_writes
        fetch_words = cold_reads if write_validate else num_blocks
        stats.fetch_bytes = fetch_words * WORD_BYTES
        if flush:
            dirty = np.zeros(num_blocks, dtype=bool)
            dirty[dense[is_write]] = True
            stats.flush_writeback_bytes = (
                int(np.count_nonzero(dirty)) * WORD_BYTES
            )
        return stats

    next_use = prepared.next_use
    dense_l, next_l, write_l = prepared.as_lists()
    allow_bypass = config.bypass
    resident = np.zeros(num_blocks, dtype=bool)
    dirty = np.zeros(num_blocks, dtype=bool)
    current_use = np.zeros(num_blocks, dtype=np.int64)
    write_prefix = prepared.write_prefix
    #: miss_flag[p] is nonzero iff position p will miss; first touches are
    #: pre-marked, induced misses get marked as their causes happen. A
    #: bytearray keeps single-flag stores cheap while "next miss after p"
    #: stays one C-level memchr via ``bytearray.find``.
    first_flags = np.zeros(n, dtype=np.uint8)
    first_flags[prepared.first_positions] = 1
    miss_flag = bytearray(first_flags.tobytes())
    find_flag = miss_flag.find
    resident_count = 0
    heap: list[tuple[int, int]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop

    read_hits = 0
    write_hits = 0
    fetch_words = 0
    writeback_words = 0
    writethrough_words = 0

    position = 0  # always a miss (the first reference is a first touch)
    while True:
        block = dense_l[position]
        write = write_l[position]
        use = next_l[position]
        inserting = True
        if resident_count >= capacity:
            while heap:
                negated, candidate = heap[0]
                if resident[candidate] and current_use[candidate] == -negated:
                    break
                heappop(heap)  # stale or evicted entry
            if not heap:
                raise SimulationError("full MTC with an empty victim heap")
            victim_use = -heap[0][0]
            if allow_bypass and use >= victim_use:
                inserting = False
            else:
                victim = heap[0][1]
                heappop(heap)
                resident[victim] = False
                resident_count -= 1
                if dirty[victim]:
                    writeback_words += 1
                    dirty[victim] = False
                if victim_use < n:
                    miss_flag[victim_use] = 1
        if inserting:
            resident[block] = True
            resident_count += 1
            dirty[block] = write
            current_use[block] = use
            if not (write and write_validate):
                fetch_words += 1
            heappush(heap, (-use, block))
        else:
            if write:
                writethrough_words += 1
            else:
                fetch_words += 1
            if use < n:
                miss_flag[use] = 1

        # ---- jump to the next miss; everything in between is a hit ----
        start = position + 1
        if start >= n:
            break
        following = find_flag(1, start)
        if following < 0:
            following = n
        if following - start >= 32:
            nw = int(write_prefix[following] - write_prefix[start])
            write_hits += nw
            read_hits += following - start - nw
            if nw:
                dirty[dense[start:following][is_write[start:following]]] = True
            # Refresh entries: the run positions whose next use escapes
            # the run are each block's last occurrence within it.
            rel = np.nonzero(next_use[start:following] >= following)[0]
            touched = dense[start + rel]
            refreshed = next_use[start + rel]
            current_use[touched] = refreshed
            for key, ident in zip((-refreshed).tolist(), touched.tolist()):
                heappush(heap, (key, ident))
        else:
            # Short runs: numpy slicing overhead beats its throughput.
            for pos in range(start, following):
                if write_l[pos]:
                    write_hits += 1
                    dirty[dense_l[pos]] = True
                else:
                    read_hits += 1
                hit_use = next_l[pos]
                if hit_use >= following:
                    hit_block = dense_l[pos]
                    current_use[hit_block] = hit_use
                    heappush(heap, (-hit_use, hit_block))
        if following >= n:
            break
        position = following

    stats.read_hits = read_hits
    stats.write_hits = write_hits
    stats.fetch_bytes = fetch_words * WORD_BYTES
    stats.writeback_bytes = writeback_words * WORD_BYTES
    stats.writethrough_bytes = writethrough_words * WORD_BYTES
    if flush:
        stats.flush_writeback_bytes = (
            int(np.count_nonzero(dirty & resident)) * WORD_BYTES
        )
    return stats
