"""Selective cache bypassing (Tyson et al. [45]).

Section 5.3 of the paper: "Tyson et al. recently showed that, for small
caches, greater selectivity about what is cached can significantly reduce
memory traffic." The MTC's oracle bypass shows the *potential*; this
module provides a realizable, online approximation so that potential can
be compared against a practical mechanism.

The predictor is a table of two-bit saturating reuse counters indexed by
block address. When a block is evicted without ever having been re-
referenced, its counter decays toward "don't cache"; re-referenced blocks
train toward "cache". A miss whose counter says "don't cache" is serviced
around the cache: the word moves (4 bytes of traffic), nothing is
allocated, nothing useful is evicted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.cache import CacheStats
from repro.mem.policies import make_policy
from repro.trace.model import MemTrace, WORD_BYTES
from repro.util import require_power_of_two


@dataclass(frozen=True, slots=True)
class BypassCacheConfig:
    """A write-back, write-allocate cache with a reuse-based bypass table."""

    size_bytes: int
    block_bytes: int = 32
    associativity: int = 1
    replacement: str = "lru"
    predictor_entries: int = 4096
    #: Counter threshold below which a miss bypasses (0 disables bypassing
    #: entirely, making this an ordinary cache).
    bypass_threshold: int = 1

    def __post_init__(self) -> None:
        require_power_of_two(self.size_bytes, "cache size")
        require_power_of_two(self.block_bytes, "block size")
        require_power_of_two(self.predictor_entries, "predictor size")
        if self.block_bytes < WORD_BYTES:
            raise ConfigurationError("block must be at least one word")
        if self.size_bytes < self.block_bytes:
            raise ConfigurationError("cache smaller than one block")
        blocks = self.size_bytes // self.block_bytes
        if self.associativity <= 0 or blocks % self.associativity:
            raise ConfigurationError("invalid associativity")
        if not 0 <= self.bypass_threshold <= 3:
            raise ConfigurationError("threshold must be a 2-bit value")

    @property
    def num_sets(self) -> int:
        return (self.size_bytes // self.block_bytes) // self.associativity


@dataclass(slots=True)
class BypassStats:
    """Bypass-specific counters, alongside the usual CacheStats."""

    bypassed_reads: int = 0
    bypassed_writes: int = 0

    @property
    def bypasses(self) -> int:
        return self.bypassed_reads + self.bypassed_writes


class BypassCache:
    """Cache with Tyson-style selective allocation."""

    def __init__(self, config: BypassCacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self.bypass_stats = BypassStats()
        self._policy = make_policy(
            config.replacement, config.num_sets, config.associativity
        )
        # set -> block -> [dirty, reused]
        self._sets: list[dict[int, list[int]]] = [
            {} for _ in range(config.num_sets)
        ]
        # 2-bit reuse counters, initialised to "probably cache" (2).
        self._counters = bytearray([2] * config.predictor_entries)
        self._counter_mask = config.predictor_entries - 1
        self._time = 0

    def _counter_index(self, block: int) -> int:
        return (block ^ (block >> 7)) & self._counter_mask

    def access(self, address: int, is_write: bool) -> bool:
        config = self.config
        stats = self.stats
        block = address // config.block_bytes
        set_index = block % config.num_sets
        time = self._time
        self._time += 1

        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        lines = self._sets[set_index]
        line = lines.get(block)
        if line is not None:
            if is_write:
                stats.write_hits += 1
                line[0] = 1
            else:
                stats.read_hits += 1
            line[1] = 1  # reused
            self._policy.on_access(set_index, block, time)
            return True

        # ---- miss: consult the reuse predictor ----
        counter_index = self._counter_index(block)
        if (
            config.bypass_threshold > 0
            and self._counters[counter_index] < config.bypass_threshold
        ):
            # Bypass: move only the requested word; train back up slowly
            # so a block that becomes hot gets another chance.
            if is_write:
                stats.writethrough_bytes += WORD_BYTES
                self.bypass_stats.bypassed_writes += 1
            else:
                stats.fetch_bytes += WORD_BYTES
                self.bypass_stats.bypassed_reads += 1
            if self._counters[counter_index] < 3:
                self._counters[counter_index] += 1
            return False

        # Allocate.
        if len(lines) >= config.associativity:
            victim = self._policy.choose_victim(set_index, time)
            victim_line = lines.pop(victim)
            if victim_line[0]:
                stats.writeback_bytes += config.block_bytes
            self._policy.on_evict(set_index, victim)
            # Train the predictor on the victim's observed reuse.
            victim_counter = self._counter_index(victim)
            if victim_line[1]:
                if self._counters[victim_counter] < 3:
                    self._counters[victim_counter] += 1
            else:
                if self._counters[victim_counter] > 0:
                    self._counters[victim_counter] -= 1
        stats.fetch_bytes += config.block_bytes
        lines[block] = [1 if is_write else 0, 0]
        self._policy.on_fill(set_index, block, time)
        return False

    def flush(self) -> int:
        flushed = 0
        for set_index, lines in enumerate(self._sets):
            for block, line in list(lines.items()):
                if line[0]:
                    flushed += self.config.block_bytes
                self._policy.on_evict(set_index, block)
            lines.clear()
        self.stats.flush_writeback_bytes += flushed
        return flushed

    def simulate(self, trace: MemTrace, *, flush: bool = True) -> CacheStats:
        access = self.access
        for address, write in zip(
            trace.addresses.tolist(), trace.is_write.tolist()
        ):
            access(address, write)
        if flush:
            self.flush()
        return self.stats


def bypass_benefit(
    trace: MemTrace, size_bytes: int, *, block_bytes: int = 32
) -> tuple[int, int, float]:
    """(plain traffic, bypassing traffic, relative saving) for one trace.

    Compares an ordinary cache against the same geometry with the reuse
    predictor enabled — the realizable fraction of the MTC's bypass gain.
    """
    plain = BypassCache(
        BypassCacheConfig(
            size_bytes=size_bytes, block_bytes=block_bytes, bypass_threshold=0
        )
    ).simulate(trace)
    selective = BypassCache(
        BypassCacheConfig(
            size_bytes=size_bytes, block_bytes=block_bytes, bypass_threshold=1
        )
    ).simulate(trace)
    base = plain.total_traffic_bytes
    improved = selective.total_traffic_bytes
    saving = (base - improved) / base if base else 0.0
    return base, improved, saving
