"""Minimal-traffic cache (MTC): the paper's optimally-managed memory.

Section 5.2 defines the MTC as the memory that "generates the minimum
possible traffic" for a given size: fully associative, transfer size equal
to the request size (one word), Belady's MIN replacement [3], and bypassing
of sufficiently low-priority fills. Stores use a write-back, write-validate
policy [25] — a store miss allocates by overwriting, fetching nothing.

The simulator is two-pass, in the style of Sugumar & Abraham [44]: pass one
computes each reference's next-use position; pass two runs MIN with a lazy
max-heap over resident blocks' next uses. Block size is configurable so
the same engine also produces the "MIN, fa, 32B" rows of the paper's
Table 10 factor experiments; bypass and write-validate can be toggled for
the ablations.

As in the paper, the write-aware Horwitz et al. [22] optimal policy is
*not* implemented — MIN ignores the extra cost of evicting dirty words, so
measured MTC traffic is an aggressive upper bound on optimality, not an
exact minimum (Section 5.2 makes the same simplification).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import AllocatePolicy, CacheStats
from repro.mem.policies import NEVER, compute_next_use
from repro.obs import OBS, TRACER
from repro.trace.model import MemTrace, WORD_BYTES
from repro.util import format_size, require_power_of_two


@dataclass(frozen=True, slots=True)
class MTCConfig:
    """Configuration of a minimal-traffic cache run."""

    size_bytes: int
    block_bytes: int = WORD_BYTES
    allocate: AllocatePolicy = AllocatePolicy.WRITE_VALIDATE
    bypass: bool = True

    def __post_init__(self) -> None:
        require_power_of_two(self.size_bytes, "MTC size")
        require_power_of_two(self.block_bytes, "MTC block size")
        if self.block_bytes < WORD_BYTES:
            raise ConfigurationError("MTC block must be at least one word")
        if self.size_bytes < self.block_bytes:
            raise ConfigurationError("MTC smaller than one block")
        if self.allocate is AllocatePolicy.NO_ALLOCATE:
            raise ConfigurationError("MTC does not support no-allocate")

    @property
    def capacity_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // WORD_BYTES

    def describe(self) -> str:
        policy = "WV" if self.allocate is AllocatePolicy.WRITE_VALIDATE else "WA"
        bypass = "+bypass" if self.bypass else ""
        return f"MTC {format_size(self.size_bytes)}/{self.block_bytes}B/{policy}{bypass}"


class MinimalTrafficCache:
    """Two-pass Belady-MIN simulator producing :class:`CacheStats`.

    Unlike :class:`repro.mem.cache.Cache` this is a whole-trace simulator
    only: MIN needs the complete future, so there is no per-access API.
    """

    def __init__(self, config: MTCConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._ran = False

    def simulate(
        self,
        trace: MemTrace,
        *,
        flush: bool = True,
        engine: str | None = None,
        prepared=None,
    ) -> CacheStats:
        """Run *trace* through the MTC and return its traffic statistics.

        *engine* overrides the process-wide selection (see
        :mod:`repro.mem.engines`); the fast engine is bit-identical, so
        results never depend on the choice. *prepared* optionally reuses
        a :class:`~repro.mem.engines.PreparedMTC` pass-1 product across
        sizes (fast engine only; the scalar loop recomputes its own).
        """
        if self._ran:
            raise SimulationError("MinimalTrafficCache instances are single-use")
        self._ran = True

        from repro.mem import engines

        started = time.time()
        selection = engines.resolve_engine(engine)
        if selection in ("sampled", "auto"):
            from repro.mem import sampled as sampled_engine

            sampling = sampled_engine.sampling_for(selection, len(trace))
            if sampling is not None:
                reason = sampled_engine.mtc_sampled_reason(self.config)
                if reason is None:
                    # *prepared* covers the full trace; the sampled
                    # sub-trace prepares its own (much smaller) pass 1.
                    self.stats = sampled_engine.simulate_mtc_sampled(
                        self.config, trace, flush=flush, sampling=sampling
                    )
                    self._record(trace, engine="sampled", started=started)
                    return self.stats
                if selection == "sampled":
                    raise ConfigurationError(
                        f"no sampled engine for {self.config.describe()}: "
                        f"{reason}"
                    )
        if selection not in ("scalar", "sampled"):
            reason = engines.mtc_fast_supported(self.config)
            if reason is None:
                self.stats = engines.simulate_mtc_fast(
                    self.config, trace, flush=flush, prepared=prepared
                )
                self._record(trace, engine="fast", started=started)
                return self.stats
            if selection == "vector":
                raise ConfigurationError(
                    f"no vector engine for {self.config.describe()}: {reason}"
                )

        config = self.config
        block_bytes = config.block_bytes
        words_per_block = config.words_per_block
        full_mask = (1 << words_per_block) - 1
        write_validate = config.allocate is AllocatePolicy.WRITE_VALIDATE
        capacity = config.capacity_blocks
        allow_bypass = config.bypass

        blocks_arr = trace.addresses // block_bytes
        next_use = compute_next_use(blocks_arr).tolist()
        blocks = blocks_arr.tolist()
        if words_per_block > 1:
            word_bits = (
                ((trace.addresses % block_bytes) // WORD_BYTES)
            ).tolist()
        else:
            word_bits = None
        writes = trace.is_write.tolist()

        stats = self.stats
        stats.accesses = len(trace)
        stats.reads = trace.read_count
        stats.writes = trace.write_count

        # Resident state: block -> [next_use, valid_mask, dirty_mask].
        resident: dict[int, list[int]] = {}
        # Lazy max-heap of (-next_use, block); entries go stale when a
        # block is re-touched or evicted.
        heap: list[tuple[int, int]] = []

        fetch = 0
        writeback = 0
        writethrough = 0
        read_hits = 0
        write_hits = 0

        for position, block in enumerate(blocks):
            use = next_use[position]
            is_write = writes[position]
            bit = 1 << word_bits[position] if word_bits is not None else 1
            line = resident.get(block)

            if line is not None:
                # ---- hit ----
                if not is_write and not (line[1] & bit):
                    # Read of a write-validated hole: fetch the block.
                    fetch += block_bytes
                    line[1] = full_mask
                if is_write:
                    write_hits += 1
                    line[1] |= bit
                    line[2] |= bit
                else:
                    read_hits += 1
                line[0] = use
                heapq.heappush(heap, (-use, block))
                continue

            # ---- miss: decide insert vs bypass ----
            inserting = True
            if len(resident) >= capacity:
                # Find the true MIN victim through the lazy heap.
                while heap:
                    negated, candidate = heap[0]
                    entry = resident.get(candidate)
                    if entry is not None and entry[0] == -negated:
                        break
                    heapq.heappop(heap)
                if not heap:
                    raise SimulationError("full MTC with an empty victim heap")
                victim_use = -heap[0][0]
                if allow_bypass and use >= victim_use:
                    inserting = False
                else:
                    victim = heap[0][1]
                    heapq.heappop(heap)
                    victim_line = resident.pop(victim)
                    if victim_line[2]:
                        if write_validate:
                            writeback += victim_line[2].bit_count() * WORD_BYTES
                        else:
                            writeback += block_bytes

            if inserting:
                if is_write and write_validate:
                    line_state = [use, bit, bit]       # allocate, no fetch
                else:
                    fetch += block_bytes
                    line_state = [use, full_mask, bit if is_write else 0]
                resident[block] = line_state
                heapq.heappush(heap, (-use, block))
            else:
                # Bypassed reference: the word moves, nothing is cached.
                if is_write:
                    writethrough += WORD_BYTES
                else:
                    fetch += WORD_BYTES

        stats.fetch_bytes = fetch
        stats.writeback_bytes = writeback
        stats.writethrough_bytes = writethrough
        stats.read_hits = read_hits
        stats.write_hits = write_hits

        if flush:
            flushed = 0
            for line in resident.values():
                if line[2]:
                    if write_validate:
                        flushed += line[2].bit_count() * WORD_BYTES
                    else:
                        flushed += block_bytes
            stats.flush_writeback_bytes = flushed

        self._record(trace, engine="scalar", started=started)
        return stats

    def _record(
        self,
        trace: MemTrace,
        *,
        engine: str = "scalar",
        started: float | None = None,
    ) -> None:
        """Aggregate one simulate() run into the instrumentation layer."""
        if TRACER.enabled and started is not None:
            TRACER.emit_span(
                "sim.mtc",
                started,
                time.time(),
                engine=engine,
                trace=trace.name,
                accesses=self.stats.accesses,
            )
        if not OBS.enabled:
            return
        if started is not None:
            OBS.hist(f"sim.mtc.{engine}.time", time.time() - started)
        stats = self.stats
        OBS.count("mtc.simulations")
        OBS.count("mtc.accesses", stats.accesses)
        OBS.count("mtc.misses", stats.misses)
        OBS.count("mtc.traffic_bytes", stats.total_traffic_bytes)
        OBS.emit(
            "mtc.simulate",
            config=self.config.describe(),
            trace=trace.name,
            accesses=stats.accesses,
            misses=stats.misses,
            traffic_bytes=stats.total_traffic_bytes,
        )

    def __repr__(self) -> str:
        return f"<MinimalTrafficCache {self.config.describe()}>"


def minimal_traffic_bytes(
    trace: MemTrace,
    size_bytes: int,
    *,
    block_bytes: int = WORD_BYTES,
    allocate: AllocatePolicy = AllocatePolicy.WRITE_VALIDATE,
    bypass: bool = True,
) -> int:
    """Convenience wrapper: total MTC traffic for *trace* at *size_bytes*."""
    mtc = MinimalTrafficCache(
        MTCConfig(
            size_bytes=size_bytes,
            block_bytes=block_bytes,
            allocate=allocate,
            bypass=bypass,
        )
    )
    return mtc.simulate(trace).total_traffic_bytes
