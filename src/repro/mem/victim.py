"""Victim caches (Jouppi [24]).

The paper cites Jouppi's victim cache among the latency-tolerance
hardware of its survey: a small fully-associative buffer that catches
blocks evicted from a direct-mapped cache, converting conflict misses
into cheap swaps. For this library the interesting quantity is the
*traffic* effect: every conflict miss the victim cache absorbs is a block
fetch (and possibly a write-back) that never crosses the pins.

:class:`VictimCache` wraps a direct-mapped :class:`~repro.mem.cache.Cache`
-equivalent with an N-entry victim buffer; :func:`victim_benefit`
measures the traffic saved on a trace, which is large exactly for the
conflict-dominated benchmarks (Su2cor, Espresso) and negligible for
streaming ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig, CacheStats
from repro.trace.model import MemTrace
from repro.util import require_power_of_two


@dataclass(frozen=True, slots=True)
class VictimCacheConfig:
    """A direct-mapped main cache plus a small fully-associative buffer."""

    size_bytes: int
    block_bytes: int = 32
    victim_entries: int = 4

    def __post_init__(self) -> None:
        require_power_of_two(self.size_bytes, "cache size")
        require_power_of_two(self.block_bytes, "block size")
        if self.size_bytes < self.block_bytes:
            raise ConfigurationError("cache smaller than one block")
        if self.victim_entries <= 0:
            raise ConfigurationError("victim buffer needs at least one entry")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // self.block_bytes


class VictimCache:
    """Direct-mapped cache with an N-entry victim buffer.

    On a main-cache miss that hits in the victim buffer, the block swaps
    back (no off-chip traffic). On a real miss the block is fetched; the
    displaced main-cache block moves into the victim buffer, whose own
    LRU casualty is written back if dirty.
    """

    def __init__(self, config: VictimCacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self.victim_hits = 0
        # main cache: set -> (block, dirty); victim buffer: block -> dirty
        self._main: dict[int, tuple[int, int]] = {}
        self._victims: dict[int, int] = {}  # insertion-ordered = LRU order

    def access(self, address: int, is_write: bool) -> bool:
        config = self.config
        stats = self.stats
        block = address // config.block_bytes
        set_index = block % config.num_sets

        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        entry = self._main.get(set_index)
        if entry is not None and entry[0] == block:
            if is_write:
                stats.write_hits += 1
                self._main[set_index] = (block, 1)
            else:
                stats.read_hits += 1
            return True

        if block in self._victims:
            # Victim hit: swap, no off-chip traffic. Counted as a hit —
            # the paper's traffic accounting cares about pins, not the
            # one-cycle swap penalty.
            self.victim_hits += 1
            if is_write:
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            dirty = self._victims.pop(block)
            if entry is not None:
                self._insert_victim(entry[0], entry[1])
            self._main[set_index] = (block, max(dirty, 1 if is_write else 0))
            return True

        # real miss
        stats.fetch_bytes += config.block_bytes
        if entry is not None:
            self._insert_victim(entry[0], entry[1])
        self._main[set_index] = (block, 1 if is_write else 0)
        return False

    def _insert_victim(self, block: int, dirty: int) -> None:
        if block in self._victims:
            self._victims.pop(block)
        self._victims[block] = dirty
        if len(self._victims) > self.config.victim_entries:
            oldest = next(iter(self._victims))
            if self._victims.pop(oldest):
                self.stats.writeback_bytes += self.config.block_bytes

    def flush(self) -> int:
        flushed = 0
        for _, (block, dirty) in list(self._main.items()):
            if dirty:
                flushed += self.config.block_bytes
        for dirty in self._victims.values():
            if dirty:
                flushed += self.config.block_bytes
        self._main.clear()
        self._victims.clear()
        self.stats.flush_writeback_bytes += flushed
        return flushed

    def simulate(self, trace: MemTrace, *, flush: bool = True) -> CacheStats:
        access = self.access
        for address, write in zip(
            trace.addresses.tolist(), trace.is_write.tolist()
        ):
            access(address, write)
        if flush:
            self.flush()
        return self.stats


def victim_benefit(
    trace: MemTrace,
    size_bytes: int,
    *,
    block_bytes: int = 32,
    victim_entries: int = 4,
) -> tuple[int, int, float]:
    """(plain traffic, with-victim traffic, relative saving)."""
    plain = Cache(
        CacheConfig(size_bytes=size_bytes, block_bytes=block_bytes)
    ).simulate(trace)
    with_victim = VictimCache(
        VictimCacheConfig(
            size_bytes=size_bytes,
            block_bytes=block_bytes,
            victim_entries=victim_entries,
        )
    ).simulate(trace)
    base = plain.total_traffic_bytes
    improved = with_victim.total_traffic_bytes
    return base, improved, (base - improved) / base if base else 0.0
