"""Prefetchers and their traffic cost: tagged, stride-directed, stream
buffers.

Section 2.1 of the paper argues that prefetching "can increase traffic to
main memory ... prefetch data too early ... evict needed data ... stream
buffers prefetch unnecessary data at the end of a stream [and] falsely
identify streams". The timing model integrates tagged prefetch; this
module provides all three classic hardware schemes behind one interface
plus an evaluator that quantifies exactly the costs the paper describes:

* **coverage** — fraction of demand misses removed;
* **accuracy** — fraction of prefetched blocks actually used;
* **traffic overhead** — extra bytes moved relative to no prefetching.

The evaluator is functional, not timed: it measures *what* is prefetched,
not *when* (timeliness is the timing model's concern — see
:mod:`repro.mem.timing`). Coverage therefore reports the upper bound on
eliminated misses for perfectly timely prefetches.

Schemes:

* :class:`TaggedPrefetcher` — one-block lookahead on miss or first use of
  a prefetched block (Gindele [17]);
* :class:`StridePrefetcher` — per-PC-less stride detection on the miss
  address stream (Fu/Patel/Janssens [14], simplified to a global recent-
  miss table);
* :class:`StreamBufferPrefetcher` — N FIFO buffers prefetching ahead of
  detected sequential streams (Jouppi [24]).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.trace.model import MemTrace


class Prefetcher(ABC):
    """Produces block-granularity prefetch suggestions."""

    name: str = ""

    @abstractmethod
    def on_access(self, block: int, was_hit: bool) -> list[int]:
        """Observe a demand access; return blocks to prefetch."""

    def on_prefetch_used(self, block: int) -> list[int]:
        """Observe the first demand use of a prefetched block."""
        return []


class TaggedPrefetcher(Prefetcher):
    """One-block lookahead, re-armed by the tag bit (Gindele [17])."""

    name = "tagged"

    def on_access(self, block: int, was_hit: bool) -> list[int]:
        return [] if was_hit else [block + 1]

    def on_prefetch_used(self, block: int) -> list[int]:
        return [block + 1]


class StridePrefetcher(Prefetcher):
    """Detects constant strides in the miss stream.

    Keeps the last few miss addresses; when the last two deltas agree the
    stride is confirmed and the next *degree* blocks along it are
    prefetched.
    """

    name = "stride"

    def __init__(self, degree: int = 2) -> None:
        if degree <= 0:
            raise ConfigurationError("prefetch degree must be positive")
        self.degree = degree
        self._last: int | None = None
        self._stride: int | None = None

    def on_access(self, block: int, was_hit: bool) -> list[int]:
        if was_hit:
            return []
        suggestions: list[int] = []
        if self._last is not None:
            stride = block - self._last
            if stride != 0 and stride == self._stride:
                suggestions = [
                    block + stride * i for i in range(1, self.degree + 1)
                ]
            self._stride = stride
        self._last = block
        return suggestions


class StreamBufferPrefetcher(Prefetcher):
    """N FIFO stream buffers (Jouppi [24]).

    A miss that matches no buffer allocates a new buffer (evicting the
    least-recently-matched) and prefetches *depth* sequential blocks. A
    miss matching a buffer head consumes it and tops the buffer up. The
    paper's criticisms fall out naturally: buffers run past the ends of
    streams and false streams allocate buffers that are never consumed.
    """

    name = "stream-buffers"

    def __init__(self, buffers: int = 4, depth: int = 4) -> None:
        if buffers <= 0 or depth <= 0:
            raise ConfigurationError("buffers and depth must be positive")
        self.buffers = buffers
        self.depth = depth
        self._queues: deque[deque[int]] = deque(maxlen=buffers)

    def on_access(self, block: int, was_hit: bool) -> list[int]:
        if was_hit:
            return []
        # Does any buffer's head match?
        for queue in self._queues:
            if queue and queue[0] == block:
                queue.popleft()
                next_block = (queue[-1] + 1) if queue else block + self.depth
                queue.append(next_block)
                self._queues.remove(queue)
                self._queues.append(queue)  # most-recently used
                return [next_block]
        # Allocate a new stream: prefetch depth sequential successors.
        blocks = [block + i for i in range(1, self.depth + 1)]
        self._queues.append(deque(blocks))
        return list(blocks)


@dataclass(frozen=True, slots=True)
class PrefetchReport:
    """Outcome of evaluating one prefetcher on one trace."""

    scheme: str
    demand_misses_without: int
    demand_misses_with: int
    prefetches_issued: int
    prefetches_used: int
    traffic_without_bytes: int
    traffic_with_bytes: int

    @property
    def coverage(self) -> float:
        """Fraction of demand misses eliminated."""
        if not self.demand_misses_without:
            return 0.0
        removed = self.demand_misses_without - self.demand_misses_with
        return removed / self.demand_misses_without

    @property
    def accuracy(self) -> float:
        """Fraction of prefetched blocks referenced before eviction."""
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_used / self.prefetches_issued

    @property
    def traffic_overhead(self) -> float:
        """Extra traffic relative to the no-prefetch baseline."""
        if not self.traffic_without_bytes:
            return 0.0
        return self.traffic_with_bytes / self.traffic_without_bytes - 1.0


def evaluate_prefetcher(
    trace: MemTrace,
    prefetcher: Prefetcher,
    *,
    cache_config: CacheConfig | None = None,
) -> PrefetchReport:
    """Drive *trace* through a cache with and without the prefetcher.

    Prefetches are injected as reads of the suggested blocks; a per-block
    tag set tracks which prefetched blocks are used before being
    re-prefetched or evicted (approximated by first-use tracking).
    """
    if cache_config is None:
        cache_config = CacheConfig(size_bytes=8 * 1024, block_bytes=32)
    block_bytes = cache_config.block_bytes

    baseline = Cache(cache_config).simulate(trace)

    cache = Cache(cache_config)
    tags: set[int] = set()
    issued = 0
    used = 0
    demand_misses = 0

    def do_prefetch(blocks: list[int]) -> None:
        nonlocal issued
        for target in blocks:
            address = target * block_bytes
            if cache.contains(address):
                continue
            issued += 1
            cache.access(address, False)
            tags.add(target)

    for address, is_write in zip(
        trace.addresses.tolist(), trace.is_write.tolist()
    ):
        block = address // block_bytes
        hit = cache.access(address, is_write)
        if not hit:
            demand_misses += 1
        if block in tags:
            tags.discard(block)
            used += 1
            do_prefetch(prefetcher.on_prefetch_used(block))
        do_prefetch(prefetcher.on_access(block, hit))
    flush = cache.flush()
    del flush

    return PrefetchReport(
        scheme=prefetcher.name,
        demand_misses_without=baseline.misses,
        demand_misses_with=demand_misses,
        prefetches_issued=issued,
        prefetches_used=used,
        traffic_without_bytes=baseline.total_traffic_bytes,
        traffic_with_bytes=cache.stats.total_traffic_bytes,
    )
