"""Low-level building blocks for synthetic address streams.

Each helper produces ``(addresses, is_write)`` numpy array pairs that the
workload models in :mod:`repro.workloads` compose into full benchmark
traces. All generators are deterministic given their ``rng`` and are
vectorized so that million-reference traces are cheap to build.

The blocks correspond to the access idioms the paper attributes to its
benchmarks: dense array sweeps (Swm, Tomcatv), conflicting multi-array
sweeps (Su2cor), hash-table probing (Compress), pointer chasing (Li,
Eqntott), tiled kernels (Dnasa2), and hot/cold heap references (Perl,
Vortex).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.trace.model import MemTrace, WORD_BYTES

StreamPair = tuple[np.ndarray, np.ndarray]


def _check_positive(value: int, name: str) -> None:
    if value <= 0:
        raise WorkloadError(f"{name} must be positive, got {value}")


def sweep(
    base: int,
    length_words: int,
    *,
    passes: int = 1,
    stride_words: int = 1,
    write_every: int = 0,
    repeats: int = 1,
) -> StreamPair:
    """Sequential sweep over an array: the streaming idiom of Swm/Tomcatv.

    Produces ``passes`` left-to-right passes over ``length_words`` words
    starting at byte address *base*, with an optional stride. When
    *write_every* is n > 0, every n-th reference is a store (read-modify-
    write loops store a fraction of what they load). *repeats* issues each
    word address that many times consecutively — the byte-scanning loops of
    Compress appear to a word-granularity tracer as four back-to-back
    references per word.
    """
    _check_positive(length_words, "length_words")
    _check_positive(passes, "passes")
    _check_positive(stride_words, "stride_words")
    _check_positive(repeats, "repeats")
    one_pass = base + np.arange(0, length_words, stride_words, dtype=np.int64) * WORD_BYTES
    if repeats > 1:
        one_pass = np.repeat(one_pass, repeats)
    addresses = np.tile(one_pass, passes)
    writes = np.zeros(addresses.size, dtype=bool)
    if write_every > 0:
        writes[write_every - 1:: write_every] = True
    return addresses, writes


def column_sweep(
    base: int,
    rows: int,
    row_words: int,
    *,
    passes: int = 1,
    write_every: int = 0,
) -> StreamPair:
    """Column-major sweep over a row-major 2-D array.

    Consecutive references stride a whole row apart, so small caches see no
    spatial locality at all; once a cache can hold one block per row
    (``rows x block`` bytes) adjacent column sweeps re-hit the same blocks
    and the traffic collapses. This is the vectorized-along-columns idiom
    of Tomcatv and the transposed phases of FFT codes.
    """
    _check_positive(rows, "rows")
    _check_positive(row_words, "row_words")
    _check_positive(passes, "passes")
    rr, cc = np.meshgrid(
        np.arange(rows, dtype=np.int64),
        np.arange(row_words, dtype=np.int64),
        indexing="ij",
    )
    # Transpose the visit order: iterate columns outermost.
    order = (rr * row_words + cc).T.reshape(-1)
    addresses = np.tile(base + order * WORD_BYTES, passes)
    writes = np.zeros(addresses.size, dtype=bool)
    if write_every > 0:
        writes[write_every - 1:: write_every] = True
    return addresses, writes


def interleaved_sweep(
    bases: list[int],
    length_words: int,
    *,
    passes: int = 1,
    write_last_array: bool = True,
) -> StreamPair:
    """Element-wise interleaved sweep over several arrays (stencil/update
    loops: ``c[i] = f(a[i], b[i])``).

    For each index i the generator touches ``a0[i], a1[i], ... ak[i]`` in
    turn; when *write_last_array* is set the final array of each group is
    stored, the rest loaded. When the arrays' bases conflict modulo a cache
    size this reproduces Su2cor's pathological conflict behaviour.
    """
    if not bases:
        raise WorkloadError("interleaved_sweep needs at least one array")
    _check_positive(length_words, "length_words")
    _check_positive(passes, "passes")
    index = np.arange(length_words, dtype=np.int64) * WORD_BYTES
    per_array = [base + index for base in bases]
    stacked = np.stack(per_array, axis=1).reshape(-1)
    addresses = np.tile(stacked, passes)
    writes = np.zeros(len(bases), dtype=bool)
    if write_last_array:
        writes[-1] = True
    write_pattern = np.tile(writes, length_words * passes)
    return addresses, write_pattern


def random_probes(
    rng: np.random.Generator,
    base: int,
    table_words: int,
    count: int,
    *,
    write_fraction: float = 0.0,
    hot_fraction: float = 0.0,
    hot_words: int = 0,
) -> StreamPair:
    """Uniform random probes into a table: Compress's hash-table idiom.

    Optionally a *hot_fraction* of probes lands in a small hot region of
    *hot_words* words at the start of the table (dictionary heads, counters),
    giving a modest amount of temporal locality without spatial locality.
    """
    _check_positive(table_words, "table_words")
    _check_positive(count, "count")
    if not 0.0 <= write_fraction <= 1.0:
        raise WorkloadError(f"write_fraction out of range: {write_fraction}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise WorkloadError(f"hot_fraction out of range: {hot_fraction}")
    indices = rng.integers(0, table_words, size=count, dtype=np.int64)
    if hot_fraction > 0.0:
        if hot_words <= 0:
            raise WorkloadError("hot_words must be positive when hot_fraction > 0")
        hot_mask = rng.random(count) < hot_fraction
        indices[hot_mask] = rng.integers(0, hot_words, size=int(hot_mask.sum()))
    addresses = base + indices * WORD_BYTES
    writes = rng.random(count) < write_fraction
    return addresses, writes


def zipf_probes(
    rng: np.random.Generator,
    base: int,
    table_words: int,
    count: int,
    *,
    alpha: float = 1.1,
    write_fraction: float = 0.0,
) -> StreamPair:
    """Zipf-distributed probes: hot/cold heap objects (Perl, Vortex).

    Word *k* is touched with probability proportional to ``1/(k+1)^alpha``,
    producing strong temporal locality on a small set of hot words over a
    large cold footprint. The word identity mapping is shuffled so hot words
    are scattered through the table (no accidental spatial locality).
    """
    _check_positive(table_words, "table_words")
    _check_positive(count, "count")
    if alpha <= 0:
        raise WorkloadError(f"alpha must be positive, got {alpha}")
    ranks = np.arange(1, table_words + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    permutation = rng.permutation(table_words)
    drawn = rng.choice(table_words, size=count, p=weights)
    addresses = base + permutation[drawn].astype(np.int64) * WORD_BYTES
    writes = rng.random(count) < write_fraction
    return addresses, writes


def pointer_chain(
    rng: np.random.Generator,
    base: int,
    nodes: int,
    node_words: int,
    count: int,
    *,
    write_fraction: float = 0.05,
    locality: float = 0.0,
) -> StreamPair:
    """Pointer-chasing over a linked structure (Li's cons cells).

    A random permutation over *nodes* nodes is walked; visiting a node
    touches its *node_words* consecutive words (header + fields), giving
    node-sized spatial locality but no inter-node locality. *locality* in
    [0, 1) makes the permutation prefer nearby nodes, modelling a compacting
    allocator.
    """
    _check_positive(nodes, "nodes")
    _check_positive(node_words, "node_words")
    _check_positive(count, "count")
    if not 0.0 <= locality < 1.0:
        raise WorkloadError(f"locality out of range: {locality}")
    if locality:
        # Biased successor choice: jump a geometric distance forward.
        jumps = rng.geometric(1.0 - locality, size=count).astype(np.int64)
        node_seq = np.cumsum(jumps) % nodes
    else:
        order = rng.permutation(nodes).astype(np.int64)
        repeats = count // nodes + 1
        node_seq = np.tile(order, repeats)[:count]
    offsets = np.arange(node_words, dtype=np.int64)
    addresses = (
        base
        + (node_seq[:, None] * node_words + offsets[None, :]) * WORD_BYTES
    ).reshape(-1)
    writes = rng.random(addresses.size) < write_fraction
    return addresses, writes


def tiled_matrix_multiply(
    base_a: int,
    base_b: int,
    base_c: int,
    n: int,
    tile: int,
) -> StreamPair:
    """Reference stream of a tiled N x N matrix multiply (Dnasa2's MxM).

    Emits the loads of A and B and the load+store of C for a blocked
    ``C += A x B`` with square tiles of side *tile*. The stream is generated
    per tile with vectorized index arithmetic; its traffic obeys the
    O(N^3 / sqrt(S)) law analysed in the paper's Section 2.4.
    """
    _check_positive(n, "n")
    _check_positive(tile, "tile")
    if n % tile:
        raise WorkloadError(f"tile {tile} must divide matrix side {n}")
    blocks = n // tile
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    ii, kk = np.meshgrid(
        np.arange(tile, dtype=np.int64),
        np.arange(tile, dtype=np.int64),
        indexing="ij",
    )
    flat_ik = (ii * n + kk).ravel()
    for bi in range(blocks):
        for bj in range(blocks):
            c_block = ((bi * tile + ii) * n + bj * tile + kk).ravel()
            for bk in range(blocks):
                a_block = base_a + (flat_ik + (bi * tile * n + bk * tile)) * WORD_BYTES
                b_block = base_b + (flat_ik + (bk * tile * n + bj * tile)) * WORD_BYTES
                addr_parts.extend((a_block, b_block))
                write_parts.append(np.zeros(a_block.size + b_block.size, dtype=bool))
            c_addr = base_c + c_block * WORD_BYTES
            addr_parts.extend((c_addr, c_addr))
            rw = np.zeros(2 * c_addr.size, dtype=bool)
            rw[c_addr.size:] = True
            write_parts.append(rw)
    return np.concatenate(addr_parts), np.concatenate(write_parts)


def fft_butterflies(base: int, n_points: int, *, element_words: int = 2) -> StreamPair:
    """Reference stream of an in-place radix-2 FFT over *n_points* complex
    points (Dnasa2's FFT kernel).

    Each of the ``log2 N`` stages reads and writes both endpoints of every
    butterfly; elements are *element_words* words (real + imaginary).
    """
    _check_positive(n_points, "n_points")
    if n_points & (n_points - 1):
        raise WorkloadError(f"n_points must be a power of two, got {n_points}")
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    indices = np.arange(n_points, dtype=np.int64)
    span = 1
    while span < n_points:
        partner = indices ^ span
        lower = indices[indices < partner]
        upper = partner[indices < partner]
        # load both, store both — classic butterfly
        pair_sequence = np.stack([lower, upper, lower, upper], axis=1).reshape(-1)
        writes = np.tile(np.array([False, False, True, True]), lower.size)
        for word in range(element_words):
            addr_parts.append(base + (pair_sequence * element_words + word) * WORD_BYTES)
            write_parts.append(writes)
        span *= 2
    return np.concatenate(addr_parts), np.concatenate(write_parts)


def stencil_sweeps(
    base: int,
    n: int,
    *,
    iterations: int = 1,
    points: int = 5,
) -> StreamPair:
    """Jacobi-style *points*-point stencil over an N x N grid (Tomcatv,
    Hydro2d, Applu idiom).

    Each iteration loads the neighbours of every interior cell and stores
    the cell, in row-major order — high spatial locality, little temporal
    locality beyond adjacent rows.
    """
    _check_positive(n, "n")
    _check_positive(iterations, "iterations")
    if points not in (5, 9):
        raise WorkloadError(f"only 5- and 9-point stencils supported, got {points}")
    rows = np.arange(1, n - 1, dtype=np.int64)
    cols = np.arange(1, n - 1, dtype=np.int64)
    rr, cc = np.meshgrid(rows, cols, indexing="ij")
    centre = (rr * n + cc).ravel()
    if points == 5:
        neighbour_offsets = np.array([-n, -1, 1, n], dtype=np.int64)
    else:
        neighbour_offsets = np.array(
            [-n - 1, -n, -n + 1, -1, 1, n - 1, n, n + 1], dtype=np.int64
        )
    per_cell = np.concatenate([neighbour_offsets, np.zeros(1, dtype=np.int64)])
    cell_addresses = centre[:, None] + per_cell[None, :]
    writes_one = np.zeros(per_cell.size, dtype=bool)
    writes_one[-1] = True
    one_iteration = base + cell_addresses.reshape(-1) * WORD_BYTES
    one_writes = np.tile(writes_one, centre.size)
    return (
        np.tile(one_iteration, iterations),
        np.tile(one_writes, iterations),
    )


def quicksort_scans(
    base: int,
    n_words: int,
    *,
    min_run_words: int = 64,
    write_every: int = 5,
    bottom_repeats: int = 3,
) -> StreamPair:
    """Depth-first recursive partition scans — the quicksort memory idiom.

    Scans the range, then recurses into each half, producing reuse at every
    power-of-two granularity: a cache of C words captures the rescans of
    all sub-ranges smaller than ~2C, so the traffic ratio declines
    *logarithmically* with cache size. This is the smooth working-set
    spectrum of Eqntott's Table 7 row (R from 1.04 at 1 KB down to 0.06 at
    1 MB).
    """
    _check_positive(n_words, "n_words")
    _check_positive(min_run_words, "min_run_words")
    addr_parts: list[np.ndarray] = []
    # Iterative depth-first traversal of the recursion tree.
    stack: list[tuple[int, int]] = [(0, n_words)]
    while stack:
        lo, hi = stack.pop()
        length = hi - lo
        if length <= 0:
            continue
        run = base + np.arange(lo, hi, dtype=np.int64) * WORD_BYTES
        if length > min_run_words:
            addr_parts.append(run)
            mid = lo + length // 2
            # Push right first so the left half is scanned immediately
            # after its parent (short reuse distance).
            stack.append((mid, hi))
            stack.append((lo, mid))
        else:
            # The insertion-sort bottom makes several passes over each
            # min-run — the dense reuse that keeps even 1 KB caches at a
            # traffic ratio near 1 for sorting codes.
            addr_parts.extend([run] * bottom_repeats)
    addresses = np.concatenate(addr_parts)
    writes = np.zeros(addresses.size, dtype=bool)
    if write_every > 0:
        writes[write_every - 1:: write_every] = True
    return addresses, writes


def fft2d_passes(base: int, rows: int, cols: int) -> StreamPair:
    """Reference stream of a 2-D FFT over a rows x cols complex grid.

    Row phase: an in-place radix-2 FFT along each (contiguous) row — good
    spatial locality even in small caches. Column phase: ``log2(rows)``
    strided passes over the grid — no locality until a cache holds one
    block per row. The row length is padded by one element to avoid
    pathological power-of-two set aliasing, as real FFT codes do.
    """
    _check_positive(rows, "rows")
    _check_positive(cols, "cols")
    if cols & (cols - 1):
        raise WorkloadError(f"cols must be a power of two, got {cols}")
    if rows & (rows - 1):
        raise WorkloadError(f"rows must be a power of two, got {rows}")
    element_words = 2  # complex: real + imaginary
    # Pad the row stride to an odd word count: an even stride aliases the
    # columns into a fraction of a direct-mapped cache's sets.
    row_stride = cols * element_words + 1
    parts: list[StreamPair] = []
    for row in range(rows):
        parts.append(
            fft_butterflies(
                base + row * row_stride * WORD_BYTES, cols,
                element_words=element_words,
            )
        )
    column_phase_passes = max(1, int(np.log2(rows)))
    parts.append(
        column_sweep(
            base,
            rows,
            row_stride,
            passes=column_phase_passes,
            write_every=2,
        )
    )
    return concat_streams(parts)


def merge_sort_passes(base: int, n_words: int) -> StreamPair:
    """Reference stream of a bottom-up merge sort over *n_words* words.

    Each of the ``log2 N`` passes streams the whole array once as reads
    (from the source buffer) and once as writes (to the destination buffer),
    alternating buffers — the O(N log N / log S) traffic shape of Table 2.
    """
    _check_positive(n_words, "n_words")
    if n_words & (n_words - 1):
        raise WorkloadError(f"n_words must be a power of two, got {n_words}")
    passes = max(1, int(np.log2(n_words)))
    src = base
    dst = base + n_words * WORD_BYTES
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    index = np.arange(n_words, dtype=np.int64) * WORD_BYTES
    for _ in range(passes):
        merged = np.stack([src + index, dst + index], axis=1).reshape(-1)
        addr_parts.append(merged)
        writes = np.zeros(merged.size, dtype=bool)
        writes[1::2] = True
        write_parts.append(writes)
        src, dst = dst, src
    return np.concatenate(addr_parts), np.concatenate(write_parts)


def interleave_streams(
    rng: np.random.Generator,
    streams: list[StreamPair],
    *,
    chunk: int = 64,
) -> StreamPair:
    """Interleave several streams in round-robin chunks.

    Models phase-interleaved program behaviour (e.g. Perl alternating hash
    probing with string scanning) while keeping each stream's internal
    order. The longest stream advances *chunk* references per round and
    shorter streams proportionally fewer, so all streams finish together —
    a truncated prefix of the result then preserves each stream's share of
    the reference mix.
    """
    _check_positive(chunk, "chunk")
    if not streams:
        raise WorkloadError("interleave_streams needs at least one stream")
    longest = max(s[0].size for s in streams)
    if longest == 0:
        raise WorkloadError("cannot interleave empty streams")
    chunk_sizes = [
        max(1, round(chunk * s[0].size / longest)) for s in streams
    ]
    cursors = [0] * len(streams)
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    live = set(range(len(streams)))
    while live:
        for stream_index in sorted(live):
            addresses, writes = streams[stream_index]
            start = cursors[stream_index]
            stop = min(start + chunk_sizes[stream_index], addresses.size)
            addr_parts.append(addresses[start:stop])
            write_parts.append(writes[start:stop])
            cursors[stream_index] = stop
            if stop >= addresses.size:
                live.discard(stream_index)
    del rng  # reserved for future randomized interleaving
    return np.concatenate(addr_parts), np.concatenate(write_parts)


def concat_streams(streams: list[StreamPair]) -> StreamPair:
    """Concatenate streams back-to-back (program phases in sequence)."""
    if not streams:
        raise WorkloadError("concat_streams needs at least one stream")
    return (
        np.concatenate([s[0] for s in streams]),
        np.concatenate([s[1] for s in streams]),
    )


def truncate(pair: StreamPair, limit: int) -> StreamPair:
    """Clip a stream to at most *limit* references."""
    _check_positive(limit, "limit")
    addresses, writes = pair
    return addresses[:limit], writes[:limit]


def to_trace(pair: StreamPair, name: str = "") -> MemTrace:
    """Wrap a stream pair into a :class:`MemTrace`."""
    addresses, writes = pair
    return MemTrace(addresses, writes, name=name)
