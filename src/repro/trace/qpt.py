"""QPT-compatible trace preparation and a simple on-disk trace format.

The paper generated traces with the Wisconsin QPT tool, which "handles
double-word memory accesses by consecutively issuing the two adjacent
single-word addresses" (Section 4.1). :func:`split_doublewords` reproduces
that behaviour for traces whose accesses carry a size; the plain-text trace
format lets experiments cache generated traces on disk.
"""

from __future__ import annotations

import io
import zipfile
from pathlib import Path
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.model import MemTrace, WORD_BYTES


def split_doublewords(
    addresses: Sequence[int] | np.ndarray,
    is_write: Sequence[bool] | np.ndarray,
    sizes: Sequence[int] | np.ndarray,
    name: str = "",
) -> MemTrace:
    """Expand sized accesses into consecutive word accesses, QPT-style.

    Each access of ``size`` bytes becomes ``ceil(size / 4)`` word accesses at
    consecutive word addresses, all with the original read/write kind. A
    double-word (8-byte) access therefore issues exactly the two adjacent
    single-word addresses QPT would.
    """
    addr = np.asarray(addresses, dtype=np.int64)
    writes = np.asarray(is_write, dtype=bool)
    size_arr = np.asarray(sizes, dtype=np.int64)
    if not (addr.shape == writes.shape == size_arr.shape):
        raise TraceError("addresses, kinds, and sizes must have equal length")
    if size_arr.size and size_arr.min() <= 0:
        raise TraceError("access sizes must be positive")

    words_per_access = (size_arr + WORD_BYTES - 1) // WORD_BYTES
    total = int(words_per_access.sum())
    out_addr = np.empty(total, dtype=np.int64)
    out_write = np.empty(total, dtype=bool)

    # Vectorized expansion: compute, for every output slot, which input access
    # it belongs to and its word offset inside that access.
    starts = np.concatenate(([0], np.cumsum(words_per_access)[:-1]))
    owner = np.repeat(np.arange(addr.size, dtype=np.int64), words_per_access)
    offset = np.arange(total, dtype=np.int64) - starts[owner]
    out_addr[:] = (addr[owner] & ~np.int64(WORD_BYTES - 1)) + offset * WORD_BYTES
    out_write[:] = writes[owner]
    return MemTrace(out_addr, out_write, name=name)


def write_trace(trace: MemTrace, path: str | Path) -> None:
    """Write a trace to *path* in a compact ``.npz`` container."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        target,
        addresses=trace.addresses,
        is_write=trace.is_write,
        name=np.array(trace.name),
    )


def read_trace(path: str | Path) -> MemTrace:
    """Read a trace previously written by :func:`write_trace`.

    Raises :class:`TraceError` naming the file for anything unreadable:
    a missing path, a truncated or garbage archive (``.npz`` files are
    zip containers, so damage surfaces as :class:`zipfile.BadZipFile`
    or ``EOFError``), or an archive missing the expected arrays.
    """
    source = Path(path)
    if not source.exists():
        raise TraceError(f"trace file not found: {source}")
    try:
        with np.load(source, allow_pickle=False) as data:
            return MemTrace(
                data["addresses"], data["is_write"], name=str(data["name"])
            )
    except (KeyError, ValueError, OSError, EOFError, zipfile.BadZipFile) as exc:
        raise TraceError(f"malformed trace file {source}: {exc}") from exc


def parse_dinero_din(text: str | io.TextIOBase, name: str = "") -> MemTrace:
    """Parse the classic DineroIII ``.din`` ASCII format.

    Each line is ``<label> <hex-address>`` where label 0 is a data read,
    1 a data write, and 2 an instruction fetch. Instruction fetches are
    dropped, matching the paper's data-only traffic measurements.
    """
    if isinstance(text, str):
        lines: Iterable[str] = text.splitlines()
    else:
        lines = text
    addresses: list[int] = []
    writes: list[bool] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise TraceError(f"line {lineno}: expected '<label> <address>'")
        try:
            label = int(parts[0])
            address = int(parts[1], 16)
        except ValueError as exc:
            raise TraceError(f"line {lineno}: {exc}") from exc
        if label == 2:
            continue
        if label not in (0, 1):
            raise TraceError(f"line {lineno}: unknown label {label}")
        addresses.append(address)
        writes.append(label == 1)
    return MemTrace(addresses, writes, name=name)


def to_dinero_din(trace: MemTrace) -> str:
    """Render a trace in DineroIII ``.din`` format (data accesses only)."""
    lines = [
        f"{1 if write else 0} {address:x}"
        for address, write in zip(trace.addresses.tolist(), trace.is_write.tolist())
    ]
    return "\n".join(lines) + ("\n" if lines else "")
