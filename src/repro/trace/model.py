"""Memory-trace containers.

A :class:`MemTrace` is an immutable, numpy-backed sequence of data-memory
references. Following the paper's methodology (Section 4.1) every reference
is a 4-byte word access; the QPT front end (:mod:`repro.trace.qpt`) splits
wider accesses into consecutive word accesses before they reach any
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import TraceError

#: All simulated requests are one machine word, as in the paper ("We assume
#: requests of four-byte words for all experiments", Section 5.2).
WORD_BYTES = 4


@dataclass(frozen=True, slots=True)
class MemRecord:
    """One data-memory reference: a word-aligned address plus a kind."""

    address: int
    is_write: bool

    @property
    def is_read(self) -> bool:
        return not self.is_write

    @property
    def word(self) -> int:
        """Word index of the reference (address / word size)."""
        return self.address // WORD_BYTES


class MemTrace:
    """An immutable sequence of word-granularity memory references.

    Parameters
    ----------
    addresses:
        Byte addresses of the references. They are word-aligned on
        construction (the low two bits are cleared), matching the
        word-request model of the paper.
    is_write:
        Boolean array marking stores; parallel to *addresses*.
    name:
        Optional label (the generating workload's name) used in reports.
    """

    __slots__ = ("_addresses", "_is_write", "name")

    def __init__(
        self,
        addresses: Iterable[int] | np.ndarray,
        is_write: Iterable[bool] | np.ndarray,
        name: str = "",
    ) -> None:
        addr = np.asarray(addresses, dtype=np.int64)
        writes = np.asarray(is_write, dtype=bool)
        if addr.ndim != 1 or writes.ndim != 1:
            raise TraceError("trace arrays must be one-dimensional")
        if addr.shape != writes.shape:
            raise TraceError(
                f"address/kind length mismatch: {addr.shape[0]} vs {writes.shape[0]}"
            )
        if addr.size and addr.min() < 0:
            raise TraceError("trace contains a negative address")
        # Word-align every address; simulators all operate on words.
        self._addresses = (addr & ~np.int64(WORD_BYTES - 1)).copy()
        self._addresses.setflags(write=False)
        self._is_write = writes.copy()
        self._is_write.setflags(write=False)
        self.name = name

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return int(self._addresses.size)

    def __iter__(self) -> Iterator[MemRecord]:
        for address, write in zip(self._addresses.tolist(), self._is_write.tolist()):
            yield MemRecord(address, write)

    def __getitem__(self, index: int | slice) -> "MemRecord | MemTrace":
        if isinstance(index, slice):
            return MemTrace(
                self._addresses[index], self._is_write[index], name=self.name
            )
        return MemRecord(int(self._addresses[index]), bool(self._is_write[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemTrace):
            return NotImplemented
        return bool(
            np.array_equal(self._addresses, other._addresses)
            and np.array_equal(self._is_write, other._is_write)
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<MemTrace{label} len={len(self)} footprint={self.footprint_bytes}B>"

    # -- array views ----------------------------------------------------------------

    @property
    def addresses(self) -> np.ndarray:
        """Read-only array of word-aligned byte addresses."""
        return self._addresses

    @property
    def is_write(self) -> np.ndarray:
        """Read-only boolean array; True marks stores."""
        return self._is_write

    @property
    def words(self) -> np.ndarray:
        """Word indices (address / 4) of every reference."""
        return self._addresses >> 2

    # -- summary statistics -----------------------------------------------------------

    @property
    def read_count(self) -> int:
        return len(self) - self.write_count

    @property
    def write_count(self) -> int:
        return int(self._is_write.sum())

    @property
    def footprint_bytes(self) -> int:
        """Number of distinct bytes touched (distinct words x word size)."""
        if not len(self):
            return 0
        return int(np.unique(self._addresses).size) * WORD_BYTES

    @property
    def request_bytes(self) -> int:
        """Total bytes requested by the processor (refs x word size).

        This is the denominator of the paper's traffic ratio: "the product
        of the loads and stores issued and the load/store size".
        """
        return len(self) * WORD_BYTES

    # -- construction helpers ----------------------------------------------------------

    @classmethod
    def concatenate(cls, traces: Iterable["MemTrace"], name: str = "") -> "MemTrace":
        """Join several traces into one, preserving order."""
        items = list(traces)
        if not items:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), name=name)
        return cls(
            np.concatenate([t._addresses for t in items]),
            np.concatenate([t._is_write for t in items]),
            name=name or items[0].name,
        )

    @classmethod
    def from_records(cls, records: Iterable[MemRecord], name: str = "") -> "MemTrace":
        """Build a trace from individual :class:`MemRecord` objects."""
        items = list(records)
        return cls(
            np.fromiter((r.address for r in items), dtype=np.int64, count=len(items)),
            np.fromiter((r.is_write for r in items), dtype=bool, count=len(items)),
            name=name,
        )

    def with_name(self, name: str) -> "MemTrace":
        """Return the same trace relabelled as *name* (arrays are shared)."""
        clone = MemTrace.__new__(MemTrace)
        clone._addresses = self._addresses
        clone._is_write = self._is_write
        clone.name = name
        return clone
