"""Miss-ratio curves via Mattson's stack algorithm.

The classic single-pass technique behind tables like the paper's Table 7:
because LRU has the *stack inclusion* property, one pass that records each
reference's reuse distance (number of distinct blocks since the previous
touch) yields the miss count of **every** fully-associative LRU cache size
at once — a reference misses in a cache of C blocks iff its reuse distance
is at least C (or it is a cold miss).

:func:`miss_ratio_curve` computes the curve; :func:`predicted_misses`
gives the exact fully-associative LRU miss count for one size, which the
test suite cross-validates against the event-driven simulator — two
independent implementations agreeing on every trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.model import MemTrace
from repro.trace.stats import reuse_distances


@dataclass(frozen=True, slots=True)
class MissRatioCurve:
    """Miss ratios of fully-associative LRU caches of every size."""

    block_bytes: int
    total_references: int
    cold_misses: int
    #: histogram[d] = number of references with reuse distance d.
    distance_histogram: np.ndarray

    def misses_at(self, capacity_blocks: int) -> int:
        """Exact LRU miss count for a cache of *capacity_blocks*."""
        if capacity_blocks <= 0:
            raise TraceError("capacity must be positive")
        reuse_hits = int(self.distance_histogram[:capacity_blocks].sum())
        return self.total_references - reuse_hits

    def miss_ratio_at(self, capacity_blocks: int) -> float:
        if not self.total_references:
            return 0.0
        return self.misses_at(capacity_blocks) / self.total_references

    def curve(self, capacities: list[int]) -> list[tuple[int, float]]:
        """(capacity, miss ratio) points for the given capacities."""
        return [(c, self.miss_ratio_at(c)) for c in capacities]

    @property
    def compulsory_miss_ratio(self) -> float:
        """The floor no capacity can beat (cold misses)."""
        if not self.total_references:
            return 0.0
        return self.cold_misses / self.total_references


def miss_ratio_curve(trace: MemTrace, block_bytes: int = 32) -> MissRatioCurve:
    """One-pass Mattson analysis of *trace* at *block_bytes* granularity."""
    if block_bytes <= 0:
        raise TraceError("block_bytes must be positive")
    distances = reuse_distances(trace, block_bytes=block_bytes)
    total = len(trace)
    cold = total - distances.size
    if distances.size:
        histogram = np.bincount(distances)
    else:
        histogram = np.zeros(1, dtype=np.int64)
    return MissRatioCurve(
        block_bytes=block_bytes,
        total_references=total,
        cold_misses=cold,
        distance_histogram=histogram,
    )


def predicted_misses(
    trace: MemTrace, capacity_blocks: int, block_bytes: int = 32
) -> int:
    """Fully-associative LRU miss count, from the stack algorithm.

    Must agree exactly with simulating a fully-associative LRU cache of
    ``capacity_blocks * block_bytes`` bytes — the test suite asserts this
    equivalence on random traces (stack inclusion is easy to get subtly
    wrong in either implementation; two independent paths catching each
    other is the point).
    """
    return miss_ratio_curve(trace, block_bytes).misses_at(capacity_blocks)


def working_set_sizes(
    trace: MemTrace,
    *,
    block_bytes: int = 32,
    knee_fraction: float = 0.9,
) -> list[int]:
    """Capacities at which the miss ratio stops improving quickly.

    Returns the capacities (in blocks) where the achievable hit gain
    reaches *knee_fraction* of its maximum — the working-set "knees" that
    decide which Table 7 column a benchmark's ratio collapses in.
    """
    if not 0 < knee_fraction < 1:
        raise TraceError("knee_fraction must be in (0, 1)")
    curve = miss_ratio_curve(trace, block_bytes)
    histogram = curve.distance_histogram
    if not histogram.sum():
        return []
    cumulative = np.cumsum(histogram)
    target = knee_fraction * cumulative[-1]
    knee = int(np.searchsorted(cumulative, target)) + 1
    return [knee]
