"""Miss-ratio curves via Mattson's stack algorithm.

The classic single-pass technique behind tables like the paper's Table 7:
because LRU has the *stack inclusion* property, one pass that records each
reference's reuse distance (number of distinct blocks since the previous
touch) yields the miss count of **every** fully-associative LRU cache size
at once — a reference misses in a cache of C blocks iff its reuse distance
is at least C (or it is a cold miss).

:func:`miss_ratio_curve` computes the curve; :func:`predicted_misses`
gives the exact fully-associative LRU miss count for one size, which the
test suite cross-validates against the event-driven simulator — two
independent implementations agreeing on every trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TraceError
from repro.trace.model import MemTrace
from repro.trace.stats import reuse_distances, stack_distance_profile

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.mem.cache import CacheStats

#: Sentinel distance for cold misses / never-again events (matches
#: :data:`repro.mem.policies.NEVER`; kept literal to avoid an import cycle).
_INFINITE = 1 << 62


@dataclass(frozen=True, slots=True)
class MissRatioCurve:
    """Miss ratios of fully-associative LRU caches of every size."""

    block_bytes: int
    total_references: int
    cold_misses: int
    #: histogram[d] = number of references with reuse distance d.
    distance_histogram: np.ndarray

    def misses_at(self, capacity_blocks: int) -> int:
        """Exact LRU miss count for a cache of *capacity_blocks*."""
        if capacity_blocks <= 0:
            raise TraceError("capacity must be positive")
        reuse_hits = int(self.distance_histogram[:capacity_blocks].sum())
        return self.total_references - reuse_hits

    def miss_ratio_at(self, capacity_blocks: int) -> float:
        if not self.total_references:
            return 0.0
        return self.misses_at(capacity_blocks) / self.total_references

    def curve(self, capacities: list[int]) -> list[tuple[int, float]]:
        """(capacity, miss ratio) points for the given capacities."""
        return [(c, self.miss_ratio_at(c)) for c in capacities]

    @property
    def compulsory_miss_ratio(self) -> float:
        """The floor no capacity can beat (cold misses)."""
        if not self.total_references:
            return 0.0
        return self.cold_misses / self.total_references


def miss_ratio_curve(trace: MemTrace, block_bytes: int = 32) -> MissRatioCurve:
    """One-pass Mattson analysis of *trace* at *block_bytes* granularity."""
    if block_bytes <= 0:
        raise TraceError("block_bytes must be positive")
    distances = reuse_distances(trace, block_bytes=block_bytes)
    total = len(trace)
    cold = total - distances.size
    if distances.size:
        histogram = np.bincount(distances)
    else:
        histogram = np.zeros(1, dtype=np.int64)
    return MissRatioCurve(
        block_bytes=block_bytes,
        total_references=total,
        cold_misses=cold,
        distance_histogram=histogram,
    )


def predicted_misses(
    trace: MemTrace, capacity_blocks: int, block_bytes: int = 32
) -> int:
    """Fully-associative LRU miss count, from the stack algorithm.

    Must agree exactly with simulating a fully-associative LRU cache of
    ``capacity_blocks * block_bytes`` bytes — the test suite asserts this
    equivalence on random traces (stack inclusion is easy to get subtly
    wrong in either implementation; two independent paths catching each
    other is the point).
    """
    return miss_ratio_curve(trace, block_bytes).misses_at(capacity_blocks)


@dataclass(frozen=True, slots=True)
class TrafficCurve:
    """Full traffic statistics of every fully-associative LRU size at once.

    The classic Mattson pass yields the *miss* count of every capacity
    from one distance histogram. This extends the same pass to the
    paper's *traffic* accounting for a write-back, write-allocate LRU
    cache — fetches, dirty-eviction write-backs, and end-of-run flush
    write-backs — by histogramming three more per-reference/per-block
    quantities over stack distance:

    * per-kind distance histograms split hits into read and write hits;
    * a *dirty generation* starts at any write whose block missed since
      the block's previous write — i.e. whose window-maximum stack
      distance reaches the capacity — and each dirty generation is
      written back exactly once (at eviction or at the final flush);
    * a dirty generation is a *flush* (not an eviction) write-back iff
      the block's last write's generation survives to the end of the
      run, which reduces to ``max(trailing-window distance, distinct
      blocks after last touch) < capacity`` — one more histogram.

    :meth:`stats_at` therefore reproduces, exactly, the ``CacheStats``
    of an event-driven fully-associative LRU simulation at any capacity;
    the differential suite pins this equality.
    """

    block_bytes: int
    total_references: int
    total_reads: int
    total_writes: int
    #: Histograms over stack distance d of finite-distance references,
    #: split by kind: a reference hits at capacity C iff d < C.
    read_hit_histogram: np.ndarray
    write_hit_histogram: np.ndarray
    #: Histogram of each write's window-maximum distance M_w (finite
    #: values); the write starts a new dirty generation iff M_w >= C.
    dirty_generation_histogram: np.ndarray
    #: Writes whose window reaches a cold miss (every block's first
    #: write): these start a dirty generation at every capacity.
    always_dirty_generations: int
    #: Histogram of max(trailing distance, blocks-after-last-touch) per
    #: written block; the block's final dirty data is flushed (still
    #: resident at end of run) iff that maximum is < C.
    flush_histogram: np.ndarray

    def stats_at(self, capacity_blocks: int, *, flush: bool = True) -> "CacheStats":
        """Exact WB/WA fully-associative LRU stats at one capacity."""
        from repro.mem.cache import CacheStats

        if capacity_blocks <= 0:
            raise TraceError("capacity must be positive")
        c = capacity_blocks
        block_bytes = self.block_bytes
        read_hits = int(self.read_hit_histogram[:c].sum())
        write_hits = int(self.write_hit_histogram[:c].sum())
        misses = self.total_references - read_hits - write_hits
        dirty_generations = self.always_dirty_generations + int(
            self.dirty_generation_histogram[c:].sum()
        )
        flushed = int(self.flush_histogram[:c].sum())
        stats = CacheStats(
            accesses=self.total_references,
            reads=self.total_reads,
            writes=self.total_writes,
            read_hits=read_hits,
            write_hits=write_hits,
            fetch_bytes=misses * block_bytes,
            writeback_bytes=(dirty_generations - flushed) * block_bytes,
        )
        if flush:
            stats.flush_writeback_bytes = flushed * block_bytes
        return stats


def traffic_curve(trace: MemTrace, block_bytes: int = 32) -> TrafficCurve:
    """One-pass extended Mattson analysis of *trace* (see TrafficCurve).

    Cost: one Fenwick stack-distance pass plus a handful of vectorized
    segmented reductions — independent of how many capacities are then
    read off the curve, where per-size simulation pays the full trace
    once *per* size (and fully-associative LRU simulation pays an O(C)
    victim scan per miss on top).
    """
    if block_bytes <= 0:
        raise TraceError("block_bytes must be positive")
    distances = stack_distance_profile(trace, block_bytes=block_bytes)
    n = len(trace)
    writes = trace.is_write
    empty = np.zeros(1, dtype=np.int64)

    def hist(values: np.ndarray) -> np.ndarray:
        return np.bincount(values) if values.size else empty

    finite = distances >= 0
    curve_kwargs = dict(
        block_bytes=block_bytes,
        total_references=n,
        total_reads=trace.read_count,
        total_writes=trace.write_count,
        read_hit_histogram=hist(distances[finite & ~writes]),
        write_hit_histogram=hist(distances[finite & writes]),
    )
    if not int(trace.write_count):
        return TrafficCurve(
            dirty_generation_histogram=empty,
            always_dirty_generations=0,
            flush_histogram=empty,
            **curve_kwargs,
        )

    # Group references by block, time-ordered within each group, and cut
    # the groups into segments ending at each write: the segment maximum
    # is M_w, the largest stack distance since the block's previous
    # write (cold first touches count as infinite).
    blocks = trace.addresses // block_bytes
    order = np.argsort(blocks, kind="stable")
    grouped = blocks[order]
    capped = np.where(distances[order] < 0, _INFINITE, distances[order])
    sorted_writes = writes[order]

    head_mask = np.empty(n, dtype=bool)
    head_mask[0] = True
    head_mask[1:] = grouped[1:] != grouped[:-1]
    head_idx = np.nonzero(head_mask)[0]
    write_idx = np.nonzero(sorted_writes)[0]
    starts = np.unique(np.concatenate((head_idx, write_idx + 1)))
    starts = starts[starts < n]
    segment_max = np.maximum.reduceat(capped, starts)
    write_segment = np.searchsorted(starts, write_idx, side="right") - 1
    window_max = segment_max[write_segment]
    always = int(np.count_nonzero(window_max >= _INFINITE))
    finite_max = window_max[window_max < _INFINITE]

    # Per written block: the trailing segment after its last write (no
    # trailing accesses -> -1, "always within the last generation") and
    # the number of distinct blocks touched after its last access (the
    # block stays resident at capacity C iff that count is < C).
    group_of = np.cumsum(head_mask) - 1
    group_ends = np.concatenate((head_idx[1:], [n]))
    last_touch = order[group_ends - 1]
    after_rank = np.empty(last_touch.size, dtype=np.int64)
    after_rank[np.argsort(-last_touch)] = np.arange(
        last_touch.size, dtype=np.int64
    )

    write_groups = group_of[write_idx]
    tail = np.empty(write_idx.size, dtype=bool)
    tail[:-1] = write_groups[1:] != write_groups[:-1]
    tail[-1] = True
    written = write_groups[tail]          # ascending, one per written block
    last_write = write_idx[tail]
    trailing = np.full(written.size, -1, dtype=np.int64)
    has_trailing = last_write < group_ends[written] - 1
    if has_trailing.any():
        trail_segment = (
            np.searchsorted(starts, last_write[has_trailing] + 1, side="right")
            - 1
        )
        # Trailing accesses are re-references, so the maximum is finite.
        trailing[has_trailing] = segment_max[trail_segment]
    flush_key = np.maximum(trailing, after_rank[written])

    return TrafficCurve(
        dirty_generation_histogram=hist(finite_max),
        always_dirty_generations=always,
        flush_histogram=hist(flush_key),
        **curve_kwargs,
    )


def working_set_sizes(
    trace: MemTrace,
    *,
    block_bytes: int = 32,
    knee_fraction: float = 0.9,
) -> list[int]:
    """Capacities at which the miss ratio stops improving quickly.

    Returns the capacities (in blocks) where the achievable hit gain
    reaches *knee_fraction* of its maximum — the working-set "knees" that
    decide which Table 7 column a benchmark's ratio collapses in.
    """
    if not 0 < knee_fraction < 1:
        raise TraceError("knee_fraction must be in (0, 1)")
    curve = miss_ratio_curve(trace, block_bytes)
    histogram = curve.distance_histogram
    if not histogram.sum():
        return []
    cumulative = np.cumsum(histogram)
    target = knee_fraction * cumulative[-1]
    knee = int(np.searchsorted(cumulative, target)) + 1
    return [knee]
