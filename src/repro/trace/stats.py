"""Trace statistics: footprints, reuse distances, spatial-locality measures.

These are the quantities the paper reasons with informally ("Compress ...
contains little spatial locality", "Swm iterates over large arrays ... no
small working sets") made measurable, so that tests can assert each
synthetic workload actually has the locality structure its SPEC counterpart
is described as having.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.model import MemTrace, WORD_BYTES


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics for one memory trace."""

    references: int
    reads: int
    writes: int
    footprint_bytes: int
    #: Fraction of references whose word address is exactly one word above
    #: the previous reference (a crude but effective streaming detector).
    sequential_fraction: float
    #: Median reuse distance (in distinct intervening words) over sampled
    #: re-references; ``inf`` when nothing is ever re-referenced.
    median_reuse_distance: float
    #: Fraction of references that touch a word referenced at least once
    #: before (temporal locality measure).
    reuse_fraction: float

    @property
    def write_fraction(self) -> float:
        return self.writes / self.references if self.references else 0.0


def reuse_distances(trace: MemTrace, block_bytes: int = WORD_BYTES) -> np.ndarray:
    """LRU stack (reuse) distances at *block_bytes* granularity.

    The reuse distance of a reference is the number of *distinct* blocks
    touched since the previous reference to the same block; first-touch
    references are excluded. Computed exactly with an order-statistic over a
    Fenwick tree in O(N log N).
    """
    profile = stack_distance_profile(trace, block_bytes)
    return profile[profile >= 0]


def stack_distance_profile(
    trace: MemTrace, block_bytes: int = WORD_BYTES
) -> np.ndarray:
    """Per-reference LRU stack distances, aligned with the trace.

    Like :func:`reuse_distances` but one entry per reference, with
    first-touch (cold) references marked ``-1``. This alignment is what
    the one-pass sweep engines need: the extended Mattson analysis in
    :mod:`repro.trace.mrc` pairs each distance with its reference's
    read/write kind and position to recover traffic — not just misses —
    for every cache size from a single pass.
    """
    if block_bytes <= 0:
        raise TraceError("block_bytes must be positive")
    blocks = (trace.addresses // block_bytes).tolist()
    n = len(blocks)
    # Fenwick tree over time positions marking "most recent position of a
    # currently-live block".
    tree = [0] * (n + 1)

    def add(pos: int, delta: int) -> None:
        index = pos + 1
        while index <= n:
            tree[index] += delta
            index += index & (-index)

    def prefix_sum(pos: int) -> int:
        index = pos + 1
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total

    last_position: dict[int, int] = {}
    distances = np.full(n, -1, dtype=np.int64)
    for position, block in enumerate(blocks):
        previous = last_position.get(block)
        if previous is not None:
            # Number of distinct blocks touched strictly after `previous`.
            distances[position] = prefix_sum(position - 1) - prefix_sum(previous)
            add(previous, -1)
        add(position, 1)
        last_position[block] = position
    return distances


def sequential_fraction(trace: MemTrace) -> float:
    """Fraction of references one word above their predecessor."""
    if len(trace) < 2:
        return 0.0
    words = trace.words
    return float(np.mean(words[1:] == words[:-1] + 1))


def reuse_fraction(trace: MemTrace) -> float:
    """Fraction of references to a word already touched earlier."""
    if not len(trace):
        return 0.0
    words = trace.words
    _, first_index = np.unique(words, return_index=True)
    return 1.0 - first_index.size / words.size


def compute_stats(trace: MemTrace, reuse_sample_limit: int = 200_000) -> TraceStats:
    """Compute :class:`TraceStats` for *trace*.

    Reuse distances are exact for traces up to *reuse_sample_limit*
    references and computed on an evenly-spaced sample beyond that, keeping
    the cost of statistics linear for long traces.
    """
    if len(trace) > reuse_sample_limit:
        step = len(trace) // reuse_sample_limit + 1
        sampled = MemTrace(
            trace.addresses[::step], trace.is_write[::step], name=trace.name
        )
    else:
        sampled = trace
    distances = reuse_distances(sampled)
    median = float(np.median(distances)) if distances.size else float("inf")
    return TraceStats(
        references=len(trace),
        reads=trace.read_count,
        writes=trace.write_count,
        footprint_bytes=trace.footprint_bytes,
        sequential_fraction=sequential_fraction(trace),
        median_reuse_distance=median,
        reuse_fraction=reuse_fraction(trace),
    )
