"""Memory-trace substrate: containers, QPT-style splitting, statistics.

This subpackage stands in for the Wisconsin QPT tracing tool used in the
paper. Traces are sequences of data-memory references (no instruction
fetches, matching the paper's methodology in Section 4.1).
"""

from repro.trace.model import MemRecord, MemTrace, WORD_BYTES
from repro.trace.qpt import split_doublewords, read_trace, write_trace
from repro.trace.mrc import (
    MissRatioCurve,
    miss_ratio_curve,
    predicted_misses,
    working_set_sizes,
)
from repro.trace.stats import TraceStats, compute_stats, reuse_distances

__all__ = [
    "MemRecord",
    "MemTrace",
    "WORD_BYTES",
    "split_doublewords",
    "read_trace",
    "write_trace",
    "TraceStats",
    "compute_stats",
    "reuse_distances",
    "MissRatioCurve",
    "miss_ratio_curve",
    "predicted_misses",
    "working_set_sizes",
]
