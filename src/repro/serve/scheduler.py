"""The scheduler: drains admitted jobs into the execution layer in batches.

One asyncio task owns the loop: wait until work is queued, drain up to
``max_inflight`` jobs, and hand the batch to
:func:`repro.exec.run_tasks` on a worker thread (so the event loop keeps
serving HTTP while simulations run). ``run_tasks`` brings everything the
execution layer already guarantees — process-pool fan-out across
``jobs`` workers, content-addressed result caching, the PR-4 retry
ladder, worker-crash recovery — so the serve layer adds no second
execution engine, only the queueing in front of one.

Failure containment: ``run_tasks`` raises on a task that exhausted its
retry budget, identifying it by label. The scheduler marks *that* job
failed and requeues the rest of the batch — any of them that already
completed land as instant cache hits on the re-run, so one poisoned
request cannot take healthy neighbours down with it. An interrupted
batch (:class:`~repro.errors.RunInterrupted`, e.g. an injected
``task.interrupt`` fault) requeues the whole batch: completed results
were checkpointed to the exec cache by the runner, exactly the PR-4
resume semantics.

Shutdown: :meth:`Scheduler.stop` lets the *current* batch drain to
completion (its results reach clients and the cache journal), then
cancels jobs still waiting in the admission queue — they never started,
so cancelling loses nothing a resubmission cannot recover.
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time

from repro.errors import RunInterrupted, TaskError
from repro.obs import OBS, TRACER
from repro.serve import jobs as jobs_module
from repro.serve.admission import AdmissionQueue
from repro.serve.jobs import CANCELLED, DONE, FAILED, RUNNING, JobRecord, JobTable

__all__ = ["Scheduler"]

#: Label prefix that ties an exec-layer task back to its job record.
TASK_LABEL_PREFIX = "serve:"

#: How often one job may be requeued after batch-level trouble before it
#: is failed outright (guards against a job that interrupts every batch).
MAX_REQUEUES = 3


class Scheduler:
    """Owns the drain loop between the admission queue and ``run_tasks``."""

    def __init__(
        self,
        queue: AdmissionQueue,
        table: JobTable,
        *,
        max_inflight: int,
        jobs: int,
        cache=None,
        retry=None,
    ) -> None:
        self.queue = queue
        self.table = table
        self.max_inflight = max_inflight
        self.jobs = jobs
        self.cache = cache
        self.retry = retry
        self.inflight = 0
        self.drained_batches = 0
        #: Jobs cancelled unstarted at shutdown (the banner reports this).
        self.cancelled = 0
        #: Serialises terminal-state transitions against /metrics and
        #: /healthz snapshots. Individual obs counters are thread-safe,
        #: but a completion updates several (state counts, done counter,
        #: service histogram) that a scrape reads as one view — holding
        #: this lock across both sides keeps the exposition untorn.
        self.state_lock = threading.Lock()
        self._wakeup = asyncio.Event()
        self._stopping = False
        self._requeues: dict[str, int] = {}

    # -- control (called from the server) ----------------------------------------

    def notify(self) -> None:
        """Wake the loop: a job was admitted."""
        self._wakeup.set()

    def stop(self) -> None:
        """Begin draining: finish the running batch, cancel the queue."""
        self._stopping = True
        self._wakeup.set()

    def _gauges(self) -> None:
        if OBS.enabled:
            OBS.gauge("serve.queue.depth", len(self.queue))
            OBS.gauge("serve.inflight", self.inflight)

    # -- the loop -----------------------------------------------------------------

    async def run(self) -> int:
        """Serve batches until stopped; returns jobs drained in-flight
        after the stop request (the number the shutdown banner reports)."""
        drained_after_stop = 0
        while True:
            while not self._stopping and len(self.queue) == 0:
                self._wakeup.clear()
                await self._wakeup.wait()
            if self._stopping:
                break
            batch = self.queue.drain(self.max_inflight)
            await self._run_batch(batch)
            if self._stopping:
                # stop() arrived mid-batch: those jobs were drained to
                # completion; anything still queued is cancelled below.
                drained_after_stop += len(batch)
        for record in self.queue.drain_all():
            with self.state_lock:
                record.state = CANCELLED
                record.error = {
                    "type": "ServiceUnavailable",
                    "message": "server shut down before the job started",
                }
                record.finished_at = time.time()
                self._close_trace(record)
                self.table.mark_terminal(record)
                self.cancelled += 1
                if OBS.enabled:
                    OBS.count("serve.jobs.cancelled")
        self._gauges()
        return drained_after_stop

    async def _run_batch(self, batch: list[JobRecord]) -> None:
        from repro.exec import Task, run_tasks

        batch_start = time.time()
        for record in batch:
            record.state = RUNNING
            record.started_at = batch_start
            if record.admitted_at is not None:
                record.queue_wait_s = batch_start - record.admitted_at
                if OBS.enabled:
                    OBS.hist("serve.queue.wait", record.queue_wait_s)
                if TRACER.enabled and record.trace_ctx is not None:
                    # Retroactive: the wait was only known once the batch
                    # picked the job up, but the span's interval is real.
                    TRACER.emit_span(
                        "serve.queue",
                        record.admitted_at,
                        batch_start,
                        ctx=record.trace_ctx,
                        depth=len(batch),
                    )
        self.inflight = len(batch)
        self._gauges()

        tasks = [
            Task(
                fn=jobs_module.execute_request,
                args=(record.request,),
                key=record.material if self.cache is not None else None,
                label=f"{TASK_LABEL_PREFIX}{record.id}",
                trace=record.trace_ctx,
            )
            for record in batch
        ]
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        try:
            values = await loop.run_in_executor(
                None,
                functools.partial(
                    run_tasks,
                    tasks,
                    jobs=self.jobs,
                    cache=self.cache,
                    retry=self.retry,
                ),
            )
        except (TaskError, RunInterrupted) as exc:
            self._recover_batch(batch, exc)
        except Exception as exc:  # a scheduler bug must not kill the loop
            for record in batch:
                self._fail(record, exc)
        else:
            seconds = time.perf_counter() - start
            self._complete_batch(batch, values, seconds)
        finally:
            self.inflight = 0
            self._gauges()

    def _complete_batch(
        self, batch: list[JobRecord], values: list, seconds: float
    ) -> None:
        """Finalise a successful batch (sync, under the state lock).

        One critical section covers every record transition *and* the
        matching counter/histogram updates, so a concurrent ``/metrics``
        or ``/healthz`` scrape (which snapshots under the same lock) can
        never observe e.g. ``serve.jobs.done`` ahead of the service
        histogram's count.
        """
        per_job = seconds / max(1, len(batch))
        finished = time.time()
        with self.state_lock:
            for record, value in zip(batch, values):
                record.result = value
                record.state = DONE
                record.service_seconds = per_job
                record.finished_at = finished
                self.queue.observe_service_time(per_job)
                self._requeues.pop(record.id, None)
                self._close_trace(record, end=finished)
                self.table.mark_terminal(record)
                if OBS.enabled:
                    OBS.count("serve.jobs.done")
                    OBS.hist("serve.job.service", per_job)
            self.drained_batches += 1
            if OBS.enabled:
                OBS.observe("serve.batch.time", seconds)

    # -- failure containment -------------------------------------------------------

    @staticmethod
    def _close_trace(record: JobRecord, end: float | None = None) -> None:
        """Write the job's ``serve.request`` root span, exactly once."""
        span = record.trace_span
        if span is not None:
            record.trace_span = None
            span.attrs["state"] = record.state
            TRACER.finish(span, end)

    def _fail(self, record: JobRecord, exc: BaseException) -> None:
        cause = exc.__cause__ if exc.__cause__ is not None else exc
        with self.state_lock:
            record.state = FAILED
            record.error = {"type": type(cause).__name__, "message": str(exc)}
            record.finished_at = time.time()
            self._requeues.pop(record.id, None)
            self._close_trace(record)
            self.table.mark_terminal(record)
            if OBS.enabled:
                OBS.count("serve.jobs.failed")

    def _recover_batch(self, batch: list[JobRecord], exc: Exception) -> None:
        """Fail the culprit (if identifiable), requeue the survivors."""
        failed_id = None
        label = getattr(exc, "label", "")
        if isinstance(exc, TaskError) and label.startswith(TASK_LABEL_PREFIX):
            failed_id = label[len(TASK_LABEL_PREFIX):]
        survivors: list[JobRecord] = []
        for record in batch:
            if record.id == failed_id:
                self._fail(record, exc)
                continue
            attempts = self._requeues.get(record.id, 0) + 1
            if attempts > MAX_REQUEUES:
                self._fail(record, exc)
                continue
            self._requeues[record.id] = attempts
            record.state = jobs_module.QUEUED
            survivors.append(record)
            if OBS.enabled:
                OBS.count("serve.jobs.requeued")
        self.queue.requeue(survivors)
        if survivors:
            self._wakeup.set()
