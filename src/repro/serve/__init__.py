"""repro.serve — simulation-as-a-service: the async batch server.

The paper's experiments become queryable jobs behind a stdlib-only
HTTP/JSON service (``repro serve`` / ``repro submit``). The layer
*composes* the existing subsystems rather than reimplementing any of
them:

* :mod:`repro.serve.protocol` — request schemas, normalisation, and
  content-addressed job ids built on the exec layer's canonical hashing;
* :mod:`repro.serve.jobs` — job records plus the single worker-side
  executor, which replays requests through the CLI dispatcher so served
  output is byte-identical to the equivalent shell invocation;
* :mod:`repro.serve.admission` — the bounded admission queue: full means
  HTTP 429 + ``Retry-After``, never unbounded buffering;
* :mod:`repro.serve.scheduler` — drains batches into
  :func:`repro.exec.run_tasks` (PR-2 process pool, PR-4 retry/timeout
  and crash recovery, result cache as journal);
* :mod:`repro.serve.server` — the asyncio HTTP server, routing, live
  ``/metrics`` (obs-registry text exposition) and ``/healthz``;
* :mod:`repro.serve.client` — the pure-python client used by the CLI,
  the tests, and ``scripts/load_serve.py``.

Identical configs submitted by N clients cost one simulation: job ids
are content addresses, in-flight and completed duplicates coalesce in
the job table (``serve.coalesced``), and the exec cache extends the
dedupe across server restarts. See docs/serving.md for the endpoint
reference, semantics, and the ops runbook.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionQueue
from repro.serve.client import ServeClient
from repro.serve.jobs import JobRecord, JobTable, execute_request
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    job_id,
    job_material,
    normalize_request,
    normalize_simulate,
    normalize_sweep,
    request_argv,
)
from repro.serve.scheduler import Scheduler
from repro.serve.server import ServeConfig, SimulationServer

__all__ = [
    "AdmissionQueue",
    "JobRecord",
    "JobTable",
    "PROTOCOL_VERSION",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "SimulationServer",
    "execute_request",
    "job_id",
    "job_material",
    "normalize_request",
    "normalize_simulate",
    "normalize_sweep",
    "request_argv",
]
