"""repro.serve — simulation-as-a-service: the async batch server.

The paper's experiments become queryable jobs behind a stdlib-only
HTTP/JSON service (``repro serve`` / ``repro submit``). The layer
*composes* the existing subsystems rather than reimplementing any of
them:

* :mod:`repro.serve.protocol` — request schemas, normalisation, and
  content-addressed job ids built on the exec layer's canonical hashing;
* :mod:`repro.serve.jobs` — job records plus the single worker-side
  executor, which replays requests through the CLI dispatcher so served
  output is byte-identical to the equivalent shell invocation;
* :mod:`repro.serve.admission` — the bounded admission queue: full means
  HTTP 429 + ``Retry-After``, never unbounded buffering;
* :mod:`repro.serve.scheduler` — drains batches into
  :func:`repro.exec.run_tasks` (PR-2 process pool, PR-4 retry/timeout
  and crash recovery, result cache as journal);
* :mod:`repro.serve.server` — the asyncio HTTP server (keep-alive),
  routing, live ``/metrics`` (obs-registry text exposition) and
  ``/healthz``;
* :mod:`repro.serve.shard` / :mod:`repro.serve.router` — horizontal
  scale-out: ``--workers N`` forks N servers behind a consistent-hashing
  front router, so coalescing and the in-memory hot tier
  (:class:`repro.exec.TieredCache`) keep per-shard key locality;
* :mod:`repro.serve.client` — the pure-python client used by the CLI,
  the tests, and ``scripts/load_serve.py``.

Identical configs submitted by N clients cost one simulation: job ids
are content addresses, in-flight and completed duplicates coalesce in
the job table (``serve.coalesced``), repeats of finished work are
answered inline from the tiered result cache (``serve.cache.answered``),
and the disk tier extends the dedupe across server restarts. See
docs/serving.md for the endpoint reference, semantics, and the ops
runbook.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionQueue
from repro.serve.client import ServeClient
from repro.serve.jobs import JobRecord, JobTable, execute_request
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    job_id,
    job_material,
    normalize_request,
    normalize_simulate,
    normalize_sweep,
    request_argv,
)
from repro.serve.router import ShardedServer
from repro.serve.scheduler import Scheduler
from repro.serve.server import ServeConfig, SimulationServer
from repro.serve.shard import HashRing

__all__ = [
    "AdmissionQueue",
    "HashRing",
    "JobRecord",
    "JobTable",
    "PROTOCOL_VERSION",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "ShardedServer",
    "SimulationServer",
    "execute_request",
    "job_id",
    "job_material",
    "normalize_request",
    "normalize_simulate",
    "normalize_sweep",
    "request_argv",
]
