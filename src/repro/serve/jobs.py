"""Job records and the worker-side request executor.

A job is one normalised request plus its lifecycle state. The state
machine is deliberately small::

    queued ──► running ──► done
                   │
                   └─────► failed        (after the exec layer's retry
    queued ──► cancelled                  ladder gave up)

``cancelled`` only happens at shutdown: jobs still waiting in the
admission queue when the server drains are not started (their results
would be unobservable), while *running* jobs are always drained to
completion so their results land in the exec cache.

:func:`execute_request` is the single function every job runs — in a
pool worker when the scheduler batches more than one job, inline
otherwise. It replays the request through the CLI dispatcher with the
argv from :func:`repro.serve.protocol.request_argv`, which makes served
output byte-identical to the equivalent shell invocation *by
construction* rather than by parallel reimplementation.
"""

from __future__ import annotations

import io
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "JobRecord",
    "execute_request",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States from which a job will still produce (or has produced) a result;
#: a resubmission of one of these coalesces instead of re-running.
COALESCABLE_STATES = (QUEUED, RUNNING, DONE)


@dataclass(slots=True)
class JobRecord:
    """One job's identity, request, and lifecycle state."""

    id: str
    request: dict
    material: dict
    state: str = QUEUED
    #: The executor's envelope (output text) once ``done``.
    result: dict | None = None
    #: ``{"type": ..., "message": ...}`` once ``failed``.
    error: dict | None = None
    #: How many submissions this record absorbed beyond the first.
    coalesced: int = 0
    #: True when the result was answered from the tiered cache at
    #: admission, without queueing or running anything.
    cached: bool = False
    #: Wall-clock service time of the batch that completed the job
    #: (seconds); feeds the Retry-After estimate, never the result.
    service_seconds: float | None = None
    #: Lifecycle timestamps (epoch seconds): set at admission, at batch
    #: start, and when the job reaches a terminal state.
    admitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    #: Admission-to-batch-start wait (seconds), set by the scheduler.
    queue_wait_s: float | None = None
    #: Serialized span context of the job's ``serve.request`` root span
    #: (``{"trace", "span"}``), threaded into the exec tasks; only set
    #: when span tracing is enabled.
    trace_ctx: dict | None = None
    #: The open root :class:`repro.obs.spans.Span`, closed at terminal.
    trace_span: object | None = None

    def describe(self) -> dict:
        """The job as the wire representation of ``GET /v1/jobs/<id>``."""
        body: dict = {
            "job": self.id,
            "state": self.state,
            "kind": self.request["kind"],
            "request": dict(self.request),
            "coalesced": self.coalesced,
            "cached": self.cached,
        }
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        timings: dict = {}
        if self.queue_wait_s is not None:
            timings["queue_wait_s"] = self.queue_wait_s
        if self.service_seconds is not None:
            timings["service_s"] = self.service_seconds
        if (
            self.admitted_at is not None
            and self.finished_at is not None
        ):
            timings["total_s"] = self.finished_at - self.admitted_at
        if self.trace_ctx is not None:
            timings["trace"] = self.trace_ctx.get("trace")
        if timings:
            body["timings"] = timings
        return body


@dataclass(slots=True)
class JobTable:
    """In-memory index of the jobs this server process knows about.

    Keyed by content-addressed job id, so the table *is* the coalescing
    map: an identical request resolves to an identical id, and any
    existing record in a coalescable state absorbs the submission. A
    ``failed`` or ``cancelled`` record does not coalesce — resubmitting
    is the retry path — and is replaced by the fresh record.

    *history* bounds how many **terminal** records (done / failed /
    cancelled) are retained: once exceeded, the least recently touched
    terminal record is evicted. Queued and running jobs are never
    evicted — a client must always be able to poll work in flight. With
    a result cache behind the server, eviction loses nothing: the next
    identical submission is answered from the cache; for lost *failed*
    ids, resubmitting retries, which is what the 404 advises anyway.
    ``history=None`` (the default) keeps the unbounded pre-tier
    behaviour.
    """

    records: dict[str, JobRecord] = field(default_factory=dict)
    #: Max terminal records retained; ``None`` means unbounded.
    history: int | None = None
    #: Terminal ids in least-recently-touched-first order.
    _terminal: OrderedDict[str, None] = field(default_factory=OrderedDict)
    #: Terminal records dropped to honour the history bound.
    evicted: int = 0

    def get(self, job_id: str) -> JobRecord | None:
        record = self.records.get(job_id)
        if record is not None and job_id in self._terminal:
            self._terminal.move_to_end(job_id)
        return record

    def resolve(self, record: JobRecord) -> tuple[JobRecord, bool]:
        """Admit *record* or coalesce onto an existing equivalent.

        Returns ``(record, coalesced)`` where *record* is the one the
        caller should report (the existing record when coalescing).
        """
        existing = self.records.get(record.id)
        if existing is not None and existing.state in COALESCABLE_STATES:
            existing.coalesced += 1
            if existing.id in self._terminal:
                self._terminal.move_to_end(existing.id)
            return existing, True
        self._terminal.pop(record.id, None)  # replacing failed/cancelled
        self.records[record.id] = record
        return record, False

    def discard(self, record: JobRecord) -> None:
        """Forget *record* if it is still the one indexed under its id.

        The admission path uses this to undo a :meth:`resolve` whose
        record was then shed by the bounded queue — leaving it behind
        would let later identical submissions coalesce onto a job that
        will never run.
        """
        if self.records.get(record.id) is record:
            del self.records[record.id]
            self._terminal.pop(record.id, None)

    def mark_terminal(self, record: JobRecord) -> None:
        """Note that *record* reached a terminal state; enforce *history*.

        Idempotent; called by the scheduler (done/failed/cancelled) and
        by the admission fast path (cache-answered records are born
        terminal).
        """
        if self.records.get(record.id) is not record:
            return
        self._terminal[record.id] = None
        self._terminal.move_to_end(record.id)
        if self.history is None:
            return
        while len(self._terminal) > max(0, self.history):
            victim, _ = self._terminal.popitem(last=False)
            self.records.pop(victim, None)
            self.evicted += 1

    def counts(self) -> dict[str, int]:
        """Jobs per state (for /healthz)."""
        counts: dict[str, int] = {}
        for record in self.records.values():
            counts[record.state] = counts.get(record.state, 0) + 1
        return dict(sorted(counts.items()))


def execute_request(request: dict) -> dict:
    """Run one normalised request exactly as the CLI would (worker side).

    Returns the result envelope stored in the exec cache and returned to
    clients: the CLI's stdout plus the argv that produced it. Library
    errors propagate as exceptions so the exec layer's retry taxonomy
    (fail fast on deterministic :class:`~repro.errors.ReproError`, retry
    the rest) applies unchanged.
    """
    from repro import cli
    from repro.serve.protocol import request_argv

    argv = request_argv(request)
    out = io.StringIO()
    args = cli.build_parser().parse_args(argv)
    with cli._engine_context(args):
        cli._dispatch(args, out)
    return {
        "schema": "repro.serve-result/v1",
        "argv": argv,
        "output": out.getvalue(),
    }
