"""Wire protocol: request schemas, normalisation, and content-addressed ids.

The service accepts two request kinds, each the JSON mirror of an
existing CLI invocation:

``simulate`` (``POST /v1/simulate``)
    One cache (and optionally MTC) run over a named workload — the JSON
    form of ``repro simulate``. Fields: ``workload`` (required unless
    ``scenario`` is given), ``size``, ``block``, ``assoc``, ``mtc``,
    ``max_refs``, ``seed``. Alternatively ``scenario`` carries an inline
    scenario spec object (see docs/scenarios.md); the spec normalises to
    its canonical form, so equivalent spellings coalesce, and the spec's
    own seed is authoritative (an explicit ``seed`` field is rejected
    alongside ``scenario``).

``sweep`` (``POST /v1/sweep``)
    One experiment grid (table7, table8, ...) — the JSON form of
    ``repro experiment``. Fields: ``experiment`` (required),
    ``max_refs``, ``engine``.

Normalisation is the heart of the coalescer: every optional field is
resolved to its CLI default and sizes are canonicalised to byte counts,
so two requests that would run the *same simulation* produce the same
normalised dict — and therefore the same job id — no matter how they
were spelled (``"16KB"`` vs ``16384``, omitted vs explicit default).

Job ids are content addresses: the SHA-256 of the canonical JSON of
(request, code epoch), truncated for readability. The same material is
the job's exec-cache key, which is what lets the server reuse completed
work across restarts — the in-memory job table is a view; the
content-addressed cache is the durable record.

Validation raises :class:`repro.errors.ProtocolError` (HTTP 400) with
messages that name the offending field, mirroring the CLI's parse-time
errors.
"""

from __future__ import annotations

from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ScenarioError,
    WorkloadError,
)
from repro.exec.keys import canonical_key, code_epoch, stable_hash
from repro.util import parse_size

__all__ = [
    "PROTOCOL_VERSION",
    "SIMULATE_DEFAULTS",
    "SWEEP_DEFAULTS",
    "job_id",
    "job_material",
    "normalize_request",
    "normalize_simulate",
    "normalize_sweep",
    "request_argv",
]

#: Version tag carried by job materials; bump on incompatible changes so
#: old cache entries stop matching (the code epoch usually retires them
#: first, but the tag makes the intent explicit).
PROTOCOL_VERSION = "repro.serve/v1"

#: Optional-field defaults, kept equal to the ``repro simulate`` parser
#: defaults (a test pins the two in sync).
SIMULATE_DEFAULTS = {
    "size": "16KB",
    "block": 32,
    "assoc": 1,
    "mtc": False,
    "max_refs": 200_000,
    "seed": 0,
}

#: Optional-field defaults for sweeps; ``None`` means "let the
#: experiment's own default stand" and is omitted from argv.
SWEEP_DEFAULTS = {
    "max_refs": None,
    "engine": None,
}


def _require_fields(body: object, known: set[str], kind: str) -> dict:
    if not isinstance(body, dict):
        raise ProtocolError(
            f"{kind} request body must be a JSON object, got "
            f"{type(body).__name__}"
        )
    unknown = sorted(set(body) - known)
    if unknown:
        raise ProtocolError(
            f"unknown {kind} request field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return body


def _positive_int(value: object, field: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise ProtocolError(
            f"field {field!r} must be a positive integer, got {value!r}"
        )
    return value


def _int(value: object, field: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"field {field!r} must be an integer, got {value!r}"
        )
    return value


def _bool(value: object, field: str) -> bool:
    if not isinstance(value, bool):
        raise ProtocolError(
            f"field {field!r} must be a boolean, got {value!r}"
        )
    return value


def normalize_simulate(body: object) -> dict:
    """Validate a simulate request body into its canonical form.

    The canonical form has every field present, ``workload`` in registry
    spelling, and ``size`` as an integer byte count.
    """
    from repro.workloads.registry import get_workload

    body = _require_fields(
        body, {"workload", "scenario"} | set(SIMULATE_DEFAULTS), "simulate"
    )
    scenario = body.get("scenario")
    spec = None
    if scenario is not None:
        if body.get("workload") is not None:
            raise ProtocolError(
                "give either 'workload' or 'scenario', not both"
            )
        if "seed" in body:
            raise ProtocolError(
                "field 'seed' is not allowed with 'scenario': the spec "
                "carries its own seed (and the content address covers it)"
            )
        from repro.scenario import ScenarioSpec

        try:
            spec = ScenarioSpec.from_dict(scenario)
        except ScenarioError as exc:
            raise ProtocolError(f"field 'scenario': {exc}") from exc
    else:
        name = body.get("workload")
        if not isinstance(name, str) or not name:
            raise ProtocolError(
                f"field 'workload' must be a non-empty string, got {name!r}"
            )
        try:
            workload = get_workload(name)
        except WorkloadError as exc:
            raise ProtocolError(str(exc)) from exc

    merged = dict(SIMULATE_DEFAULTS, **body)
    try:
        size_bytes = parse_size(merged["size"])
    except ConfigurationError as exc:
        raise ProtocolError(f"field 'size': {exc}") from exc
    if size_bytes <= 0:
        raise ProtocolError(
            f"field 'size' must be a positive byte count, got {merged['size']!r}"
        )
    request = {
        "kind": "simulate",
        "size": size_bytes,
        "block": _positive_int(merged["block"], "block"),
        "assoc": _positive_int(merged["assoc"], "assoc"),
        "mtc": _bool(merged["mtc"], "mtc"),
        "max_refs": _positive_int(merged["max_refs"], "max_refs"),
    }
    if spec is not None:
        # The canonical spec is the durable identity: equivalent
        # spellings produce the same normalised request, hence the same
        # job id, exactly as named workloads do via registry spelling.
        request["scenario"] = spec.canonical()
        request["seed"] = spec.seed
    else:
        request["workload"] = workload.name  # registry spelling
        request["seed"] = _int(merged["seed"], "seed")
    return request


def normalize_sweep(body: object) -> dict:
    """Validate a sweep request body into its canonical form."""
    from repro.cli import ENGINE_CHOICES, EXPERIMENT_MODULES

    body = _require_fields(body, {"experiment"} | set(SWEEP_DEFAULTS), "sweep")
    name = body.get("experiment")
    if name not in EXPERIMENT_MODULES:
        raise ProtocolError(
            f"unknown experiment {name!r}; known: "
            + ", ".join(sorted(EXPERIMENT_MODULES))
        )
    request: dict = {"kind": "sweep", "experiment": name}
    max_refs = body.get("max_refs", SWEEP_DEFAULTS["max_refs"])
    request["max_refs"] = (
        None if max_refs is None else _positive_int(max_refs, "max_refs")
    )
    engine = body.get("engine", SWEEP_DEFAULTS["engine"])
    if engine is not None and engine not in ENGINE_CHOICES:
        raise ProtocolError(
            f"field 'engine' must be one of {', '.join(ENGINE_CHOICES)}, "
            f"got {engine!r}"
        )
    request["engine"] = engine
    return request


_NORMALIZERS = {
    "simulate": normalize_simulate,
    "sweep": normalize_sweep,
}


def normalize_request(kind: str, body: object) -> dict:
    """Dispatch to the normaliser for *kind* (the POST route decides)."""
    try:
        normalize = _NORMALIZERS[kind]
    except KeyError:
        raise ProtocolError(f"unknown request kind {kind!r}") from None
    return normalize(body)


def job_material(request: dict) -> dict:
    """The canonical key material for one normalised request.

    Doubles as the job's exec-cache key: the code epoch makes stale
    results self-invalidating exactly as in the rest of the exec layer.
    """
    return {
        "schema": PROTOCOL_VERSION,
        "epoch": code_epoch(),
        "request": request,
    }


def job_id(material: dict) -> str:
    """Content-addressed job id (truncated SHA-256 of the material)."""
    return stable_hash(material)[:16]


def request_argv(request: dict) -> list[str]:
    """The CLI argv equivalent to a normalised request.

    This is the byte-identity guarantee in one place: a served job runs
    ``repro.cli`` with exactly this argv, so its output cannot differ
    from the same invocation typed at a shell.
    """
    if request["kind"] == "simulate":
        workload_arg = request.get("workload")
        if workload_arg is None:
            # Scenarios replay through the CLI's inline spelling; the
            # canonical JSON round-trips to the identical canonical
            # spec, so the served run and the shell run cannot differ.
            workload_arg = "scenario:" + canonical_key(request["scenario"])
        argv = [
            "simulate",
            workload_arg,
            "--size", str(request["size"]),
            "--block", str(request["block"]),
            "--assoc", str(request["assoc"]),
            "--max-refs", str(request["max_refs"]),
            "--seed", str(request["seed"]),
        ]
        if request["mtc"]:
            argv.append("--mtc")
        return argv
    if request["kind"] == "sweep":
        argv = ["experiment", request["experiment"]]
        if request["max_refs"] is not None:
            argv += ["--max-refs", str(request["max_refs"])]
        if request["engine"] is not None:
            argv += ["--engine", request["engine"]]
        return argv
    raise ProtocolError(f"unknown request kind {request['kind']!r}")
