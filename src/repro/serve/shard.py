"""Consistent-hash ring mapping exec-cache keys to serve shards.

The sharded front router (:mod:`repro.serve.router`) must send every
submission of the *same* request to the *same* worker, or the two things
that make serving fast stop working: request coalescing (duplicates only
collapse inside one job table) and the hot tier (a result promoted in
shard 0's memory is useless if the repeat lands on shard 1). A plain
``hash(key) % N`` would do that too, but consistent hashing keeps the
remap fraction at ~1/N when a worker is added or removed, which matters
once shard counts are reconfigured against a warm disk cache.

Standard construction: each node contributes *replicas* points on a ring
of sha256 values; a key is owned by the first node point clockwise from
the key's own hash. sha256 (not Python's ``hash``) keeps the mapping
stable across processes and runs — the router, tests, and the load
generator's balance report must all agree on ownership.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ConfigurationError

__all__ = ["HashRing"]


def _point(token: str) -> int:
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over a fixed node set."""

    def __init__(self, nodes: list[int], *, replicas: int = 64) -> None:
        if not nodes:
            raise ConfigurationError("a hash ring needs at least one node")
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be positive, got {replicas!r}"
            )
        self.nodes = list(nodes)
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for node in self.nodes:
            for replica in range(replicas):
                points.append((_point(f"shard-{node}-{replica}"), node))
        points.sort()
        self._ring = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def lookup(self, key: str) -> int:
        """The node owning *key* (first ring point clockwise of its hash)."""
        where = bisect.bisect_right(self._ring, _point(key))
        if where == len(self._ring):
            where = 0
        return self._owners[where]

    def distribution(self, keys: list[str]) -> dict[int, int]:
        """How many of *keys* each node owns (balance reporting)."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __repr__(self) -> str:
        return (
            f"<HashRing nodes={self.nodes} replicas={self.replicas} "
            f"points={len(self._ring)}>"
        )
