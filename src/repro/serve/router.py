"""Sharded serving: a consistent-hashing front router over N workers.

``repro serve --workers N`` runs one :class:`ShardedServer`: the parent
process binds the public port, pre-binds N loopback sockets, forks N
:class:`~repro.serve.server.SimulationServer` workers (each inheriting
its own listening socket across the fork), and then runs a thin asyncio
proxy that forwards every request to the worker that *owns* it.

Why a router instead of ``SO_REUSEPORT``? A shared-port accept spreads
connections by flow hash, i.e. *randomly* with respect to request
content — identical submissions land on different workers, so request
coalescing stops collapsing duplicates and every shard's hot tier warms
its own redundant copy. The router instead computes the same
content-addressed job id the workers use and consistent-hashes it
(:class:`~repro.serve.shard.HashRing`), so a given request always
reaches the same shard: coalescing and hot-tier locality survive
scale-out by construction. Submissions the router cannot content-address
(malformed bodies) go to shard 0, whose parser produces the same 400 the
single-worker server would.

The workers share one disk cache root (atomic same-filesystem renames
make concurrent writers safe) but each owns a private in-memory job
table and hot tier — the ring means no two shards serve the same key,
so nothing needs cross-process invalidation.

Aggregation endpoints are answered by the router itself:

* ``/healthz`` — router status plus every worker's own healthz payload
  and the per-shard routed-request counts;
* ``/metrics`` — worker counters summed by name (correct for monotonic
  counters; the CI hot-tier assertion reads these), the router's own
  counters, and each worker's full exposition prefixed ``shard<i>.`` so
  per-shard gauges/percentiles stay inspectable without pretending
  summed percentiles mean anything.

Shutdown mirrors the single-worker contract: SIGINT/SIGTERM stops the
router's listener, forwards SIGTERM to the workers (each drains its
running batch and cancels its queue), and joins them before exiting 0.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import signal
import socket
import sys
import threading
import time

from repro import obs
from repro.errors import ConfigurationError, ProtocolError, ServeError
from repro.obs import OBS
from repro.serve.protocol import job_id, job_material, normalize_request
from repro.serve.server import (
    READ_TIMEOUT,
    Reply,
    ServeConfig,
    SimulationServer,
    _json_reply,
    _response,
    _wants_keep_alive,
)
from repro.serve.shard import HashRing

__all__ = ["ShardedServer"]

#: How long the router waits for a forked worker to start accepting.
WORKER_START_TIMEOUT = 30.0

#: Per-worker cap on pooled (idle keep-alive) upstream connections.
POOL_SIZE = 8


def _worker_main(config: ServeConfig, sock: socket.socket) -> None:
    """Entry point of one forked worker: serve on the inherited socket."""
    code = SimulationServer(config, sock=sock).run(install_signals=True)
    raise SystemExit(code)


class _WorkerPool:
    """Keep-alive connection pool to one worker's loopback socket."""

    def __init__(self, port: int) -> None:
        self.port = port
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def _dial(self):
        return await asyncio.open_connection("127.0.0.1", self.port)

    async def request(self, raw: bytes) -> tuple[int, dict[str, str], bytes]:
        """One round trip: send *raw*, parse the worker's response.

        Reuses an idle pooled connection when possible; a stale one
        (worker restarted or timed the connection out) is detected by
        the failed round trip and retried once on a fresh dial — safe
        because every serve request is idempotent by content addressing.
        """
        while True:
            fresh = not self._idle
            if fresh:
                reader, writer = await self._dial()
            else:
                reader, writer = self._idle.pop()
            try:
                writer.write(raw)
                await writer.drain()
                status, headers, body = await self._read_response(reader)
            except (OSError, asyncio.IncompleteReadError, ConnectionError):
                try:
                    writer.close()
                except Exception:
                    pass
                if fresh:
                    raise  # a brand-new connection failed: worker is down
                continue  # stale pooled connection; retry on a fresh one
            if headers.get("connection", "").lower() == "close":
                writer.close()
            elif len(self._idle) < POOL_SIZE:
                self._idle.append((reader, writer))
            else:
                writer.close()
            return status, headers, body

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, dict[str, str], bytes]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("worker closed the connection")
        parts = line.decode("latin-1", "replace").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed worker status line: {line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    def close(self) -> None:
        for _, writer in self._idle:
            try:
                writer.close()
            except Exception:
                pass
        self._idle.clear()


class ShardedServer:
    """The ``--workers N`` frontend: fork, route, aggregate, drain."""

    def __init__(self, config: ServeConfig) -> None:
        if config.workers < 2:
            raise ConfigurationError(
                f"ShardedServer needs workers >= 2, got {config.workers} "
                f"(run SimulationServer directly for one worker)"
            )
        self.config = config
        self.ring = HashRing(list(range(config.workers)))
        self.address: tuple[str, int] | None = None
        self.ready = threading.Event()
        self.draining = False
        self.worker_ports: list[int] = []
        self._procs: list[multiprocessing.Process] = []
        self._pools: list[_WorkerPool] = []
        self._listener: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested: asyncio.Event | None = None
        #: Requests routed per shard (also exported as counters).
        self.routed = [0] * config.workers
        #: Open client connections, closed at drain (keep-alive peers
        #: parked between requests must not stall shutdown).
        self._connections: set[asyncio.StreamWriter] = set()
        self._handler_tasks: set[asyncio.Task] = set()

    # -- worker lifecycle ----------------------------------------------------------

    def _spawn_workers(self) -> None:
        """Bind one loopback socket per worker, then fork the workers.

        Binding happens in the parent *before* the fork, so the parent
        knows every port without any IPC and a worker can never lose a
        bind race. Each child inherits exactly its own listener; the
        parent closes its copies once the forks are done.
        """
        ctx = multiprocessing.get_context("fork")
        sockets: list[socket.socket] = []
        for _ in range(self.config.workers):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            sock.listen(128)
            sockets.append(sock)
        self.worker_ports = [sock.getsockname()[1] for sock in sockets]
        for index, sock in enumerate(sockets):
            worker_config = ServeConfig(
                host="127.0.0.1",
                port=self.worker_ports[index],
                queue_depth=self.config.queue_depth,
                max_inflight=self.config.max_inflight,
                jobs=self.config.jobs,
                cache_dir=self.config.cache_dir,
                retry=self.config.retry,
                verbose=self.config.verbose,
                trace_spans=self.config.trace_spans,
                hot_bytes=self.config.hot_bytes,
                workers=1,
                job_history=self.config.job_history,
                shard=index,
            )
            proc = ctx.Process(
                target=_worker_main,
                args=(worker_config, sock),
                name=f"repro-serve-shard-{index}",
            )
            proc.start()
            self._procs.append(proc)
        for sock in sockets:
            sock.close()
        self._pools = [_WorkerPool(port) for port in self.worker_ports]

    async def _await_workers(self) -> None:
        """Block until every worker accepts connections (or fail loudly)."""
        deadline = time.monotonic() + WORKER_START_TIMEOUT
        for index, port in enumerate(self.worker_ports):
            while True:
                try:
                    _, writer = await asyncio.open_connection("127.0.0.1", port)
                    writer.close()
                    break
                except OSError:
                    if not self._procs[index].is_alive():
                        raise ConfigurationError(
                            f"serve worker {index} exited during startup"
                        ) from None
                    if time.monotonic() > deadline:
                        raise ConfigurationError(
                            f"serve worker {index} did not start accepting "
                            f"within {WORKER_START_TIMEOUT:.0f}s"
                        ) from None
                    await asyncio.sleep(0.05)

    def _stop_workers(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM -> worker's graceful drain
        for proc in self._procs:
            proc.join(timeout=30)
        for pool in self._pools:
            pool.close()

    # -- routing -------------------------------------------------------------------

    def _shard_for(self, method: str, target: str, body: bytes) -> int:
        """The shard owning this request (0 when it cannot be addressed)."""
        path = target.split("?", 1)[0]
        if method == "POST" and path in ("/v1/simulate", "/v1/sweep"):
            try:
                decoded = json.loads(body.decode("utf-8")) if body else {}
                request = normalize_request(path.rsplit("/", 1)[1], decoded)
            except Exception:
                # The owning worker's parser will produce the same 400
                # a single-worker server would; shard 0 is as good a
                # place as any to say so deterministically.
                return 0
            return self.ring.lookup(job_id(job_material(request)))
        if path.startswith("/v1/jobs/"):
            return self.ring.lookup(path[len("/v1/jobs/"):])
        return 0

    async def _proxy(
        self, shard: int, method: str, target: str, body: bytes
    ) -> Reply:
        raw = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: 127.0.0.1\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("latin-1") + body
        try:
            status, headers, payload = await self._pools[shard].request(raw)
        except (OSError, ConnectionError) as exc:
            return _json_reply(
                503,
                {"error": {"type": "ShardUnavailable",
                           "message": f"shard {shard}: {exc}"}},
            )
        self.routed[shard] += 1
        if OBS.enabled:
            OBS.count(f"serve.router.routed.{shard}")
        return (
            status,
            payload,
            headers.get("content-type", "application/json"),
            {},
        )

    # -- aggregation ---------------------------------------------------------------

    async def _healthz(self) -> Reply:
        shards = []
        for index in range(self.config.workers):
            try:
                _, _, body = await self._pools[index].request(
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 0\r\n\r\n"
                )
                shards.append(json.loads(body.decode("utf-8")))
            except (OSError, ConnectionError, ValueError) as exc:
                shards.append({"status": "unreachable", "error": str(exc)})
        payload = {
            "status": "draining" if self.draining else "ok",
            "role": "router",
            "workers": self.config.workers,
            "routed": list(self.routed),
            "shards": shards,
        }
        return _json_reply(200, payload)

    async def _metrics(self) -> Reply:
        summed: dict[str, int] = {}
        per_shard: list[tuple[int, str]] = []
        for index in range(self.config.workers):
            try:
                _, _, body = await self._pools[index].request(
                    b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 0\r\n\r\n"
                )
            except (OSError, ConnectionError):
                continue
            text = body.decode("utf-8", "replace")
            per_shard.append((index, text))
            section = ""
            for line in text.splitlines():
                if line.startswith("#"):
                    section = line[1:].strip()
                    continue
                if section != "counters" or not line:
                    continue
                name, _, value = line.rpartition(" ")
                try:
                    summed[name] = summed.get(name, 0) + int(value)
                except ValueError:
                    pass
        lines = ["# counters (summed across shards)"]
        for name in sorted(summed):
            lines.append(f"{name} {summed[name]}")
        lines.append("# router")
        lines.append(f"serve.router.workers {self.config.workers}")
        for index, count in enumerate(self.routed):
            lines.append(f"serve.router.routed.{index} {count}")
        for index, text in per_shard:
            for line in text.splitlines():
                if line and not line.startswith("#"):
                    lines.append(f"shard{index}.{line}")
        return (
            200,
            ("\n".join(lines) + "\n").encode("utf-8"),
            "text/plain; charset=utf-8",
            {},
        )

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        SimulationServer._read_request(reader),
                        timeout=READ_TIMEOUT,
                    )
                except ProtocolError as exc:
                    payload = {"error": {"type": type(exc).__name__,
                                         "message": str(exc)}}
                    writer.write(
                        _response(
                            exc.http_status,
                            (json.dumps(payload, sort_keys=True) + "\n")
                            .encode("utf-8"),
                            "application/json",
                            close=True,
                        )
                    )
                    await writer.drain()
                    return
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    OSError,
                ):
                    return
                if parsed is None:
                    return
                method, target, body, version, req_headers = parsed
                keep_alive = _wants_keep_alive(version, req_headers)
                if OBS.enabled:
                    OBS.count("serve.router.requests")
                path = target.split("?", 1)[0]
                try:
                    if path == "/healthz" and method == "GET":
                        reply = await self._healthz()
                    elif path == "/metrics" and method == "GET":
                        reply = await self._metrics()
                    else:
                        shard = self._shard_for(method, target, body)
                        reply = await self._proxy(shard, method, target, body)
                except ServeError as exc:
                    payload = {"error": {"type": type(exc).__name__,
                                         "message": str(exc)}}
                    reply = _json_reply(exc.http_status, payload)
                except Exception as exc:  # router bug: 500, keep serving
                    payload = {"error": {"type": type(exc).__name__,
                                         "message": str(exc)}}
                    reply = _json_reply(500, payload)
                status, payload_bytes, ctype, headers = reply
                writer.write(
                    _response(
                        status,
                        payload_bytes,
                        ctype,
                        headers,
                        close=not keep_alive,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    return
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handler_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle -----------------------------------------------------------------

    def shutdown(self) -> None:
        """Request a graceful drain; safe to call from any thread."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._begin_shutdown)

    def _begin_shutdown(self) -> None:
        self.draining = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def _main(self, install_signals: bool) -> int:
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        await self._await_workers()
        self._listener = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.address = self._listener.sockets[0].getsockname()[:2]
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(signum, self._begin_shutdown)
        host, port = self.address
        print(
            f"routing on http://{host}:{port} "
            f"({self.config.workers} shards on ports "
            f"{self.worker_ports}, jobs={self.config.jobs}/shard)",
            file=sys.stderr,
            flush=True,
        )
        self.ready.set()
        await self._shutdown_requested.wait()
        self._listener.close()
        await self._listener.wait_closed()
        for open_writer in list(self._connections):
            try:
                open_writer.close()
            except Exception:
                pass
        # Closed sockets wake parked handlers with EOF; wait for them so
        # loop teardown never has to cancel one mid-read.
        pending = [task for task in self._handler_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=2.0)
        return 0

    def run(self, *, install_signals: bool = True) -> int:
        """Blocking entry point: fork workers, route until shut down."""
        prev = (OBS.registry, OBS.sink, OBS.enabled, OBS._seq)
        sink = obs.StderrSink() if self.config.verbose else None
        self._spawn_workers()
        obs.configure(sink=sink)
        try:
            code = asyncio.run(self._main(install_signals))
        finally:
            self._stop_workers()
            if OBS.sink is not prev[1]:
                OBS.sink.close()
            OBS.registry, OBS.sink, OBS.enabled, OBS._seq = prev
        alive = sum(1 for proc in self._procs if proc.is_alive())
        print(
            f"router shut down: {self.config.workers - alive}/"
            f"{self.config.workers} shards drained cleanly",
            file=sys.stderr,
            flush=True,
        )
        return code if alive == 0 else 1
