"""Sharded serving: a consistent-hashing front router over N workers.

``repro serve --workers N`` runs one :class:`ShardedServer`: the parent
process binds the public port, pre-binds N loopback sockets, forks N
:class:`~repro.serve.server.SimulationServer` workers (each inheriting
its own listening socket across the fork), and then runs a thin asyncio
proxy that forwards every request to the worker that *owns* it.

Why a router instead of ``SO_REUSEPORT``? A shared-port accept spreads
connections by flow hash, i.e. *randomly* with respect to request
content — identical submissions land on different workers, so request
coalescing stops collapsing duplicates and every shard's hot tier warms
its own redundant copy. The router instead computes the same
content-addressed job id the workers use and consistent-hashes it
(:class:`~repro.serve.shard.HashRing`), so a given request always
reaches the same shard: coalescing and hot-tier locality survive
scale-out by construction. Submissions the router cannot content-address
(malformed bodies) go to shard 0, whose parser produces the same 400 the
single-worker server would.

The workers share one disk cache root (atomic same-filesystem renames
make concurrent writers safe) but each owns a private in-memory job
table and hot tier — the ring means no two shards serve the same key,
so nothing needs cross-process invalidation.

Supervision and failover
------------------------
The router *keeps* every pre-bound listening socket, so a shard's port
never refuses connections — a dead shard's dials simply queue in the
accept backlog until the replacement starts accepting. One supervisor
task per shard watches pid + pipe liveness (the ``multiprocessing``
sentinel becomes readable the instant the child exits) and respawns a
dead shard onto its original socket after a bounded,
deterministically-jittered backoff (the execution layer's
:class:`~repro.exec.resilience.RetryPolicy`, so chaos tests replay the
same schedule every run). A shard that flaps past its restart budget is
marked ``failed`` and ``/healthz`` reports ``degraded`` — the router
itself never crashes, and the surviving shards keep serving their share
of the ring. Respawn is cheap by design: completed results live in the
disk tier of the shared cache, so the replacement's empty hot tier and
job table rebuild on demand.

While the owning shard is down, idempotent requests (``GET``) wait for
the respawn and are retried once against the replacement
(``serve.router.failover``); non-idempotent submits are answered
immediately with 503 + an honest ``Retry-After`` derived from the
restart backoff schedule — and submits are safe to resubmit verbatim,
because job ids are content-addressed (a duplicate coalesces or is
answered from the cache). A per-shard circuit breaker (closed → open on
consecutive proxy failures → half-open probe after a cooldown) turns a
sick-but-accepting shard into fast 503s instead of a pile-up of
30-second proxy timeouts. The serve-layer fault points (``shard.kill``,
``shard.slow``, ``conn.drop`` — see :mod:`repro.exec.faults`) exist to
prove all of this under injected chaos, and the ``serve-chaos`` CI job
does exactly that.

Aggregation endpoints are answered by the router itself:

* ``/healthz`` — router status (``ok`` / ``degraded`` / ``draining``),
  per-shard supervision + breaker state, every *up* worker's own healthz
  payload, and the per-shard routed-request counts;
* ``/metrics`` — worker counters summed by name (correct for monotonic
  counters; the CI hot-tier assertion reads these), the router's own
  counters (``serve.shard.restart``, ``serve.shard.breaker.open``,
  ``serve.router.failover``, ``serve.router.unavailable``), and each
  worker's full exposition prefixed ``shard<i>.`` so per-shard
  gauges/percentiles stay inspectable without pretending summed
  percentiles mean anything.

Shutdown mirrors the single-worker contract: SIGINT/SIGTERM stops the
router's listener, forwards SIGTERM to the workers (each drains its
running batch and cancels its queue), and joins them before exiting 0.
Supervisors stand down at drain — a shard dying mid-drain is reaped, not
respawned.
"""

from __future__ import annotations

import asyncio
import json
import math
import multiprocessing
import os
import signal
import socket
import sys
import threading
import time

from repro import obs
from repro.errors import ConfigurationError, ProtocolError, ServeError
from repro.exec.faults import FAULTS
from repro.exec.resilience import RetryPolicy
from repro.obs import OBS
from repro.serve.protocol import job_id, job_material, normalize_request
from repro.serve.server import (
    READ_TIMEOUT,
    Reply,
    ServeConfig,
    SimulationServer,
    _json_reply,
    _response,
    _wants_keep_alive,
)
from repro.serve.shard import HashRing

__all__ = ["ShardedServer", "CircuitBreaker", "DEFAULT_RESTART_POLICY"]

#: How long the router waits for a forked worker to start accepting.
WORKER_START_TIMEOUT = 30.0

#: Per-worker cap on pooled (idle keep-alive) upstream connections.
POOL_SIZE = 8

#: Upper bound on one proxied round trip. Proxied requests are all fast
#: admission-path replies (the heavy work happens asynchronously in the
#: shard's scheduler), so anything slower than this is a sick shard, not
#: a slow request.
PROXY_TIMEOUT = READ_TIMEOUT

#: Per-shard fetch bound for the /healthz and /metrics aggregators —
#: a wedged shard must not make the router's own health opaque.
AGGREGATE_TIMEOUT = 5.0

#: How long an idempotent request waits for a respawn before giving up.
FAILOVER_WAIT = 15.0

#: Consecutive proxy failures that open a shard's circuit breaker.
BREAKER_THRESHOLD = 3

#: Seconds an open breaker short-circuits before allowing a probe.
BREAKER_COOLDOWN = 0.5

#: A shard that stays up this long earns its restart budget back — the
#: budget bounds *flapping*, not total restarts over a long uptime.
FLAP_RESET_SECONDS = 60.0

#: Restart budget + backoff schedule used when :class:`ServeConfig`
#: does not supply one. Deterministic jitter means a given shard's k-th
#: restart always waits the same time — chaos runs replay exactly.
DEFAULT_RESTART_POLICY = RetryPolicy(
    attempts=5, base_delay=0.2, max_delay=5.0
)

#: Methods safe to transparently retry against a respawned shard.
_IDEMPOTENT = frozenset({"GET", "HEAD"})

_HEALTHZ_RAW = (
    b"GET /healthz HTTP/1.1\r\nHost: router\r\nContent-Length: 0\r\n\r\n"
)
_METRICS_RAW = (
    b"GET /metrics HTTP/1.1\r\nHost: router\r\nContent-Length: 0\r\n\r\n"
)


def _worker_main(
    config: ServeConfig,
    sock: socket.socket,
    close_fds: tuple[int, ...] = (),
) -> None:
    """Entry point of one forked worker: serve on the inherited socket.

    A *respawned* worker is forked from inside the router's running
    event loop, so it starts life with parent-only baggage: the public
    listener, sibling shards' pre-bound sockets, pooled upstream
    connections, open client connections, and a thread-state marker
    claiming an event loop is already running. Close the former
    (best-effort — the fd list is advisory) and clear the latter so this
    child's ``asyncio.run`` starts clean.
    """
    for fd in close_fds:
        if fd == sock.fileno():
            continue
        try:
            os.close(fd)
        except OSError:
            pass
    try:
        asyncio.events._set_running_loop(None)
    except Exception:
        pass
    code = SimulationServer(config, sock=sock).run(install_signals=True)
    raise SystemExit(code)


class _WorkerPool:
    """Keep-alive connection pool to one worker's loopback socket."""

    def __init__(self, port: int) -> None:
        self.port = port
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def _dial(self):
        return await asyncio.open_connection("127.0.0.1", self.port)

    async def request(self, raw: bytes) -> tuple[int, dict[str, str], bytes]:
        """One round trip: send *raw*, parse the worker's response.

        Reuses an idle pooled connection when possible; a stale one
        (worker restarted or timed the connection out) is detected by
        the failed round trip and retried once on a fresh dial — safe
        because every serve request is idempotent by content addressing.
        """
        while True:
            fresh = not self._idle
            if fresh:
                reader, writer = await self._dial()
            else:
                reader, writer = self._idle.pop()
            try:
                writer.write(raw)
                await writer.drain()
                status, headers, body = await self._read_response(reader)
            except (OSError, asyncio.IncompleteReadError, ConnectionError):
                try:
                    writer.close()
                except Exception:
                    pass
                if fresh:
                    raise  # a brand-new connection failed: worker is down
                continue  # stale pooled connection; retry on a fresh one
            except asyncio.CancelledError:
                # A caller's wait_for expired mid-round-trip; the
                # connection is half-used and must not be pooled.
                try:
                    writer.close()
                except Exception:
                    pass
                raise
            if headers.get("connection", "").lower() == "close":
                writer.close()
            elif len(self._idle) < POOL_SIZE:
                self._idle.append((reader, writer))
            else:
                writer.close()
            return status, headers, body

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, dict[str, str], bytes]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("worker closed the connection")
        parts = line.decode("latin-1", "replace").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed worker status line: {line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    def drop_idle(self) -> None:
        """Sever one pooled connection (the ``conn.drop`` fault point)."""
        if self._idle:
            _, writer = self._idle.pop()
            try:
                writer.close()
            except Exception:
                pass

    def idle_fds(self) -> list[int]:
        """File descriptors of the pooled connections (for fork hygiene)."""
        fds = []
        for _, writer in list(self._idle):
            sock = writer.get_extra_info("socket")
            try:
                fd = sock.fileno() if sock is not None else -1
            except (OSError, ValueError):
                continue
            if fd >= 0:
                fds.append(fd)
        return fds

    def close(self) -> None:
        for _, writer in self._idle:
            try:
                writer.close()
            except Exception:
                pass
        self._idle.clear()


class CircuitBreaker:
    """Per-shard breaker over *consecutive* proxy failures.

    ``closed`` → ``open`` after :data:`BREAKER_THRESHOLD` consecutive
    failures; ``open`` short-circuits to 503 for
    :data:`BREAKER_COOLDOWN` seconds; then ``half-open`` admits exactly
    one probe request — success closes the breaker, failure reopens it.
    The kept listening sockets mean a sick shard's port rarely *refuses*
    connections, so without a breaker every request to a wedged shard
    would pin a router handler for the full :data:`PROXY_TIMEOUT`.
    """

    __slots__ = ("state", "failures", "opened_at", "_probing")

    def __init__(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self._probing = False

    def reset(self) -> None:
        self.state = "closed"
        self.failures = 0
        self._probing = False

    def allow(self, now: float) -> bool:
        """May a request be proxied right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now - self.opened_at < BREAKER_COOLDOWN:
                return False
            self.state = "half-open"
            self._probing = True
            return True
        # half-open: one probe in flight at a time; everyone else waits
        # for its verdict behind a fast 503.
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self.reset()

    def record_failure(self, now: float) -> bool:
        """Account one failure; True when this call *opened* the breaker."""
        self.failures += 1
        self._probing = False
        if self.state == "half-open" or (
            self.state == "closed" and self.failures >= BREAKER_THRESHOLD
        ):
            self.state = "open"
            self.opened_at = now
            return True
        if self.state == "open":
            self.opened_at = now  # late failure: restart the cooldown
        return False

    def remaining(self, now: float) -> float:
        """Seconds left on an open breaker's cooldown (0 otherwise)."""
        if self.state != "open":
            return 0.0
        return max(0.0, BREAKER_COOLDOWN - (now - self.opened_at))


class _ShardState:
    """Everything the router's supervision tracks about one shard.

    ``mode`` is one of ``starting`` (forked, not yet ready), ``up``
    (serving), ``restarting`` (dead, respawn pending or in progress) and
    ``failed`` (restart budget exhausted; permanently down this run).
    """

    __slots__ = (
        "index",
        "port",
        "sock",
        "config",
        "pool",
        "proc",
        "mode",
        "restarts",
        "restarting_until",
        "started_at",
        "ever_ready",
        "up_event",
        "breaker",
    )

    def __init__(
        self,
        index: int,
        port: int,
        sock: socket.socket,
        config: ServeConfig,
    ) -> None:
        self.index = index
        self.port = port
        self.sock = sock
        self.config = config
        self.pool = _WorkerPool(port)
        self.proc: multiprocessing.Process | None = None
        self.mode = "starting"
        self.restarts = 0
        self.restarting_until: float | None = None
        self.started_at: float | None = None
        self.ever_ready = False
        self.up_event = asyncio.Event()
        self.breaker = CircuitBreaker()


class ShardedServer:
    """The ``--workers N`` frontend: fork, route, supervise, aggregate."""

    def __init__(self, config: ServeConfig) -> None:
        if config.workers < 2:
            raise ConfigurationError(
                f"ShardedServer needs workers >= 2, got {config.workers} "
                f"(run SimulationServer directly for one worker)"
            )
        self.config = config
        self.restart_policy: RetryPolicy = (
            config.restart_policy
            if config.restart_policy is not None
            else DEFAULT_RESTART_POLICY
        )
        self.ring = HashRing(list(range(config.workers)))
        self.address: tuple[str, int] | None = None
        self.ready = threading.Event()
        self.draining = False
        self.worker_ports: list[int] = []
        self._shards: list[_ShardState] = []
        #: Kept in sync with each shard's live process object so the
        #: drain accounting (and tests) can reach the current children.
        self._procs: list[multiprocessing.Process] = []
        self._supervisors: list[asyncio.Task] = []
        self._listener: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested: asyncio.Event | None = None
        #: Requests routed per shard (also exported as counters).
        self.routed = [0] * config.workers
        #: Supervision counters, mirrored into /metrics and OBS.
        self.restarts_total = 0
        self.failovers = 0
        self.breaker_opens = 0
        self.unavailable = 0
        #: Open client connections, closed at drain (keep-alive peers
        #: parked between requests must not stall shutdown).
        self._connections: set[asyncio.StreamWriter] = set()
        #: The subset currently *inside* a request. Drain spares these:
        #: their handlers finish writing the in-flight response, then
        #: exit (the post-response draining check), so a keep-alive
        #: client never loses an answered request to shutdown timing.
        self._busy: set[asyncio.StreamWriter] = set()
        self._handler_tasks: set[asyncio.Task] = set()

    # -- worker lifecycle ----------------------------------------------------------

    def _spawn_workers(self) -> None:
        """Bind one loopback socket per worker, then fork the workers.

        Binding happens in the parent *before* the fork, so the parent
        knows every port without any IPC and a worker can never lose a
        bind race. Each child serves its own listener; the parent keeps
        every socket open for the process's lifetime — that is what lets
        a supervisor respawn a dead shard onto the *same* port, with
        requests that raced the crash waiting in the accept backlog
        instead of being refused.
        """
        for index in range(self.config.workers):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            sock.listen(128)
            port = sock.getsockname()[1]
            worker_config = ServeConfig(
                host="127.0.0.1",
                port=port,
                queue_depth=self.config.queue_depth,
                max_inflight=self.config.max_inflight,
                jobs=self.config.jobs,
                cache_dir=self.config.cache_dir,
                retry=self.config.retry,
                verbose=self.config.verbose,
                trace_spans=self.config.trace_spans,
                hot_bytes=self.config.hot_bytes,
                workers=1,
                job_history=self.config.job_history,
                shard=index,
            )
            self._shards.append(_ShardState(index, port, sock, worker_config))
            self.worker_ports.append(port)
            self._procs.append(None)  # filled by _start_shard
        for state in self._shards:
            self._start_shard(state)

    def _start_shard(self, state: _ShardState) -> None:
        """Fork (or re-fork) one worker onto its kept pre-bound socket."""
        close_fds = tuple(self._parent_fds(state))
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=_worker_main,
            args=(state.config, state.sock, close_fds),
            name=f"repro-serve-shard-{state.index}",
        )
        proc.start()
        state.proc = proc
        self._procs[state.index] = proc

    def _parent_fds(self, state: _ShardState) -> list[int]:
        """Parent-only fds a freshly-forked shard should close.

        Best-effort: missing one only keeps a parent socket alive a
        little longer inside the child; it never breaks correctness.
        """
        fds: list[int] = []

        def add(sock_like) -> None:
            try:
                fd = sock_like.fileno()
            except (OSError, ValueError, AttributeError):
                return
            if fd is not None and fd >= 0:
                fds.append(fd)

        for other in self._shards:
            if other is not state:
                add(other.sock)
            for fd in other.pool.idle_fds():
                fds.append(fd)
        if self._listener is not None:
            for sock in self._listener.sockets:
                add(sock)
        for writer in list(self._connections):
            peer = writer.get_extra_info("socket")
            if peer is not None:
                add(peer)
        return fds

    async def _probe_healthz(self, port: int) -> int:
        """One fresh-connection healthz round trip; returns the status."""
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: router\r\n"
                b"Connection: close\r\nContent-Length: 0\r\n\r\n"
            )
            await writer.drain()
            status, _, _ = await _WorkerPool._read_response(reader)
            return status
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _await_ready(self, state: _ShardState) -> bool:
        """Probe the shard's healthz until it answers (bounded).

        A dead shard's port still *accepts* (the router keeps the
        pre-bound listening sockets precisely so a respawn can inherit
        them), so readiness must be a completed HTTP round trip, never a
        successful dial.
        """
        deadline = time.monotonic() + WORKER_START_TIMEOUT
        while not self.draining and time.monotonic() < deadline:
            if state.proc is None or not state.proc.is_alive():
                return False
            try:
                status = await asyncio.wait_for(
                    self._probe_healthz(state.port), timeout=2.0
                )
                if status == 200:
                    return True
            except (
                OSError,
                ConnectionError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ):
                pass
            await asyncio.sleep(0.05)
        return False

    async def _wait_for_exit(self, proc: multiprocessing.Process) -> None:
        """Resolve when *proc* has exited; the sentinel pipe fd becomes
        readable the moment the child is gone, so an up shard costs the
        supervisor nothing."""
        if proc.is_alive():
            loop = asyncio.get_running_loop()
            exited = asyncio.Event()
            try:
                loop.add_reader(proc.sentinel, exited.set)
            except (OSError, ValueError):
                while proc.is_alive():  # no reader support: poll
                    await asyncio.sleep(0.1)
            else:
                try:
                    await exited.wait()
                finally:
                    try:
                        loop.remove_reader(proc.sentinel)
                    except (OSError, ValueError):
                        pass
        proc.join(timeout=1)  # reap; the child is already gone

    async def _supervise(self, state: _ShardState) -> None:
        """Own one shard's lifecycle: readiness, death, backoff, respawn.

        Cancelled at drain; a shard dying mid-drain is left for
        :meth:`_stop_workers` to reap rather than respawned.
        """
        while True:
            ok = await self._await_ready(state)
            if self.draining:
                return
            if ok:
                state.mode = "up"
                state.ever_ready = True
                state.started_at = time.monotonic()
                state.restarting_until = None
                state.breaker.reset()
                state.up_event.set()
            elif state.proc is not None and state.proc.is_alive():
                # Forked but never became ready within the budget: a
                # wedged start. Terminate and account it like a death.
                state.proc.terminate()
            await self._wait_for_exit(state.proc)
            if self.draining:
                return
            state.up_event.clear()
            exitcode = state.proc.exitcode
            if not state.ever_ready:
                # Dying before *ever* serving is a configuration problem
                # (bad cache dir, import error), not churn — fail the
                # startup loudly instead of respawning in a loop.
                state.mode = "failed"
                return
            state.mode = "restarting"
            now = time.monotonic()
            if (
                state.started_at is not None
                and now - state.started_at >= FLAP_RESET_SECONDS
            ):
                state.restarts = 0  # it held steady; earn the budget back
            state.started_at = None
            state.restarts += 1
            budget = self.restart_policy.attempts
            if state.restarts > budget:
                state.mode = "failed"
                print(
                    f"shard {state.index} exited (code {exitcode}) and "
                    f"exhausted its restart budget ({budget}); serving "
                    f"degraded without it",
                    file=sys.stderr,
                    flush=True,
                )
                return
            self.restarts_total += 1
            if OBS.enabled:
                OBS.count("serve.shard.restart")
            delay = self.restart_policy.backoff(
                f"shard-{state.index}", state.restarts
            )
            state.restarting_until = now + delay
            print(
                f"shard {state.index} exited (code {exitcode}); "
                f"respawning in {delay:.2f}s "
                f"(restart {state.restarts}/{budget})",
                file=sys.stderr,
                flush=True,
            )
            await asyncio.sleep(delay)
            if self.draining:
                return
            state.pool.close()  # pooled connections died with the child
            # Fork from a helper thread so the child's main thread is not
            # the router's event-loop thread (asyncio state stays clean).
            await asyncio.get_running_loop().run_in_executor(
                None, self._start_shard, state
            )

    async def _initial_readiness(self) -> None:
        """Wait until every shard is up once (or fail startup loudly)."""

        async def outcome(state: _ShardState) -> bool:
            while state.mode not in ("up", "failed"):
                await asyncio.sleep(0.02)
            return state.mode == "up"

        try:
            results = await asyncio.wait_for(
                asyncio.gather(*(outcome(s) for s in self._shards)),
                WORKER_START_TIMEOUT + 5.0,
            )
        except asyncio.TimeoutError:
            raise ConfigurationError(
                f"serve workers did not start accepting within "
                f"{WORKER_START_TIMEOUT:.0f}s"
            ) from None
        for state, ok in zip(self._shards, results):
            if not ok:
                raise ConfigurationError(
                    f"serve worker {state.index} exited during startup"
                )

    def _stop_workers(self) -> None:
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()  # SIGTERM -> worker's graceful drain
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=30)
        for state in self._shards:
            state.pool.close()
            try:
                state.sock.close()
            except OSError:
                pass

    # -- routing -------------------------------------------------------------------

    def _shard_for(self, method: str, target: str, body: bytes) -> int:
        """The shard owning this request (0 when it cannot be addressed)."""
        path = target.split("?", 1)[0]
        if method == "POST" and path in ("/v1/simulate", "/v1/sweep"):
            try:
                decoded = json.loads(body.decode("utf-8")) if body else {}
                request = normalize_request(path.rsplit("/", 1)[1], decoded)
            except Exception:
                # The owning worker's parser will produce the same 400
                # a single-worker server would; shard 0 is as good a
                # place as any to say so deterministically.
                return 0
            return self.ring.lookup(job_id(job_material(request)))
        if path.startswith("/v1/jobs/"):
            return self.ring.lookup(path[len("/v1/jobs/"):])
        return 0

    def _retry_after_for(self, state: _ShardState) -> int:
        """An honest Retry-After for a 503: how long until this shard is
        expected back, derived from the restart backoff schedule (plus a
        readiness margin), the breaker cooldown, or a flat floor."""
        now = time.monotonic()
        if state.mode == "failed":
            estimate = 30.0  # not coming back; discourage tight retries
        elif state.mode != "up" and state.restarting_until is not None:
            estimate = (state.restarting_until - now) + 0.5
        elif state.breaker.state != "closed":
            estimate = state.breaker.remaining(now) + 0.1
        else:
            estimate = 1.0
        return max(1, math.ceil(min(estimate, 60.0)))

    def _unavailable(self, state: _ShardState, why: str) -> Reply:
        self.unavailable += 1
        if OBS.enabled:
            OBS.count("serve.router.unavailable")
        retry_after = self._retry_after_for(state)
        message = (
            f"shard {state.index} cannot take this request: {why}; "
            f"retry after {retry_after}s"
        )
        return _json_reply(
            503,
            {"error": {"type": "ShardUnavailable", "message": message}},
            {"Retry-After": str(retry_after)},
        )

    async def _await_recovery(self, state: _ShardState) -> bool:
        """Bounded wait for the shard to be (back) up."""
        try:
            await asyncio.wait_for(state.up_event.wait(), FAILOVER_WAIT)
        except asyncio.TimeoutError:
            return False
        return state.mode == "up"

    async def _shard_request(
        self, state: _ShardState, raw: bytes, label: str
    ) -> tuple[int, dict[str, str], bytes]:
        """One bounded proxy round trip, with the conn.drop fault point."""
        if FAULTS.active:
            spec = FAULTS.take("conn.drop", label)
            if spec is not None:
                state.pool.drop_idle()
                raise ConnectionError(
                    f"injected fault {spec.describe()} fired at {label!r}"
                )
        return await asyncio.wait_for(
            state.pool.request(raw), timeout=PROXY_TIMEOUT
        )

    def _record_failure(self, state: _ShardState) -> None:
        if state.breaker.record_failure(time.monotonic()):
            self.breaker_opens += 1
            if OBS.enabled:
                OBS.count("serve.shard.breaker.open")
            print(
                f"shard {state.index} circuit breaker opened after "
                f"{state.breaker.failures} consecutive proxy failures",
                file=sys.stderr,
                flush=True,
            )

    async def _proxy(
        self, shard: int, method: str, target: str, body: bytes
    ) -> Reply:
        state = self._shards[shard]
        label = f"shard{shard}:{method} {target.split('?', 1)[0]}"
        idempotent = method in _IDEMPOTENT
        raw = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: 127.0.0.1\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("latin-1") + body
        failover = False
        if state.mode == "failed":
            return self._unavailable(state, "its restart budget is exhausted")
        if state.mode != "up":
            # Mid-restart. Submits get an honest 503 + Retry-After (they
            # are safe to resubmit verbatim — content addressing dedups);
            # idempotent requests wait out the respawn and retry.
            if not idempotent:
                return self._unavailable(state, "it is restarting")
            if not await self._await_recovery(state):
                return self._unavailable(
                    state, "it did not come back in time"
                )
            failover = True
        if not state.breaker.allow(time.monotonic()):
            return self._unavailable(state, "its circuit breaker is open")
        try:
            status, headers, payload = await self._shard_request(
                state, raw, label
            )
        except (OSError, ConnectionError, asyncio.TimeoutError) as exc:
            self._record_failure(state)
            if not idempotent:
                return self._unavailable(
                    state, f"the proxied request failed ({exc})"
                )
            if not await self._await_recovery(state):
                return self._unavailable(
                    state, f"the proxied request failed ({exc})"
                )
            try:
                status, headers, payload = await self._shard_request(
                    state, raw, label
                )
            except (OSError, ConnectionError, asyncio.TimeoutError) as exc2:
                self._record_failure(state)
                return self._unavailable(
                    state, f"the failover retry failed ({exc2})"
                )
            failover = True
        state.breaker.record_success()
        if failover:
            self.failovers += 1
            if OBS.enabled:
                OBS.count("serve.router.failover")
        self.routed[shard] += 1
        if OBS.enabled:
            OBS.count(f"serve.router.routed.{shard}")
        extra = {}
        retry_after = headers.get("retry-after")
        if retry_after is not None:
            # Forward the worker's own back-pressure hint (admission
            # 429s) instead of silently dropping it at the proxy hop.
            extra["Retry-After"] = retry_after
        return (
            status,
            payload,
            headers.get("content-type", "application/json"),
            extra,
        )

    # -- aggregation ---------------------------------------------------------------

    def _supervision_report(self) -> dict:
        return {
            "restart_budget": self.restart_policy.attempts,
            "restarts": self.restarts_total,
            "failovers": self.failovers,
            "breaker_opens": self.breaker_opens,
            "unavailable": self.unavailable,
            "shards": [
                {
                    "shard": state.index,
                    "state": state.mode,
                    "restarts": state.restarts,
                    "breaker": state.breaker.state,
                }
                for state in self._shards
            ],
        }

    async def _healthz(self) -> Reply:
        shards = []
        degraded = False
        for state in self._shards:
            if state.mode != "up":
                degraded = True
                shards.append(
                    {
                        "status": (
                            "down" if state.mode == "failed" else "restarting"
                        ),
                        "shard": state.index,
                        "restarts": state.restarts,
                    }
                )
                continue
            if state.breaker.state == "open":
                degraded = True
            try:
                _, _, body = await asyncio.wait_for(
                    state.pool.request(_HEALTHZ_RAW),
                    timeout=AGGREGATE_TIMEOUT,
                )
                shards.append(json.loads(body.decode("utf-8")))
            except (
                OSError,
                ConnectionError,
                ValueError,
                asyncio.TimeoutError,
            ) as exc:
                degraded = True
                shards.append(
                    {
                        "status": "unreachable",
                        "shard": state.index,
                        "error": str(exc),
                    }
                )
        status = "draining" if self.draining else (
            "degraded" if degraded else "ok"
        )
        payload = {
            "status": status,
            "role": "router",
            "workers": self.config.workers,
            "routed": list(self.routed),
            "supervision": self._supervision_report(),
            "shards": shards,
        }
        return _json_reply(200, payload)

    async def _metrics(self) -> Reply:
        summed: dict[str, int] = {}
        per_shard: list[tuple[int, str]] = []
        for state in self._shards:
            if state.mode != "up":
                continue  # a dead shard's process counters died with it
            try:
                _, _, body = await asyncio.wait_for(
                    state.pool.request(_METRICS_RAW),
                    timeout=AGGREGATE_TIMEOUT,
                )
            except (OSError, ConnectionError, asyncio.TimeoutError):
                continue
            text = body.decode("utf-8", "replace")
            per_shard.append((state.index, text))
            section = ""
            for line in text.splitlines():
                if line.startswith("#"):
                    section = line[1:].strip()
                    continue
                if section != "counters" or not line:
                    continue
                name, _, value = line.rpartition(" ")
                try:
                    summed[name] = summed.get(name, 0) + int(value)
                except ValueError:
                    pass
        lines = ["# counters (summed across shards)"]
        for name in sorted(summed):
            lines.append(f"{name} {summed[name]}")
        lines.append("# router")
        lines.append(f"serve.router.workers {self.config.workers}")
        for index, count in enumerate(self.routed):
            lines.append(f"serve.router.routed.{index} {count}")
        lines.append(f"serve.shard.restart {self.restarts_total}")
        lines.append(f"serve.shard.breaker.open {self.breaker_opens}")
        lines.append(f"serve.router.failover {self.failovers}")
        lines.append(f"serve.router.unavailable {self.unavailable}")
        for index, text in per_shard:
            for line in text.splitlines():
                if line and not line.startswith("#"):
                    lines.append(f"shard{index}.{line}")
        return (
            200,
            ("\n".join(lines) + "\n").encode("utf-8"),
            "text/plain; charset=utf-8",
            {},
        )

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        SimulationServer._read_request(reader),
                        timeout=READ_TIMEOUT,
                    )
                except ProtocolError as exc:
                    payload = {"error": {"type": type(exc).__name__,
                                         "message": str(exc)}}
                    writer.write(
                        _response(
                            exc.http_status,
                            (json.dumps(payload, sort_keys=True) + "\n")
                            .encode("utf-8"),
                            "application/json",
                            close=True,
                        )
                    )
                    await writer.drain()
                    return
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    OSError,
                ):
                    return
                if parsed is None:
                    return
                method, target, body, version, req_headers = parsed
                keep_alive = _wants_keep_alive(version, req_headers)
                if OBS.enabled:
                    OBS.count("serve.router.requests")
                path = target.split("?", 1)[0]
                self._busy.add(writer)
                try:
                    try:
                        if path == "/healthz" and method == "GET":
                            reply = await self._healthz()
                        elif path == "/metrics" and method == "GET":
                            reply = await self._metrics()
                        else:
                            shard = self._shard_for(method, target, body)
                            reply = await self._proxy(
                                shard, method, target, body
                            )
                    except ServeError as exc:
                        payload = {"error": {"type": type(exc).__name__,
                                             "message": str(exc)}}
                        reply = _json_reply(exc.http_status, payload)
                    except Exception as exc:  # router bug: 500, keep serving
                        payload = {"error": {"type": type(exc).__name__,
                                             "message": str(exc)}}
                        reply = _json_reply(500, payload)
                    status, payload_bytes, ctype, headers = reply
                    closing = not keep_alive or self.draining
                    writer.write(
                        _response(
                            status,
                            payload_bytes,
                            ctype,
                            headers,
                            close=closing,
                        )
                    )
                    await writer.drain()
                finally:
                    self._busy.discard(writer)
                if closing:
                    return
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handler_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle -----------------------------------------------------------------

    def shutdown(self) -> None:
        """Request a graceful drain; safe to call from any thread.

        Idempotent, including *after* the router has already exited —
        a supervisor script (or test harness) that shuts down on every
        path must not crash when drain already won the race.
        """
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._begin_shutdown)
            except RuntimeError:
                pass  # loop already closed: the drain is complete

    def _begin_shutdown(self) -> None:
        self.draining = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def _main(self, install_signals: bool) -> int:
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        self._supervisors = [
            asyncio.create_task(
                self._supervise(state),
                name=f"repro-supervise-shard-{state.index}",
            )
            for state in self._shards
        ]
        try:
            await self._initial_readiness()
            self._listener = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        except BaseException:
            self._begin_shutdown()
            for supervisor in self._supervisors:
                supervisor.cancel()
            await asyncio.gather(*self._supervisors, return_exceptions=True)
            raise
        self.address = self._listener.sockets[0].getsockname()[:2]
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(signum, self._begin_shutdown)
        host, port = self.address
        print(
            f"routing on http://{host}:{port} "
            f"({self.config.workers} shards on ports "
            f"{self.worker_ports}, jobs={self.config.jobs}/shard, "
            f"restart budget {self.restart_policy.attempts})",
            file=sys.stderr,
            flush=True,
        )
        self.ready.set()
        await self._shutdown_requested.wait()
        self._listener.close()
        await self._listener.wait_closed()
        for open_writer in list(self._connections):
            if open_writer in self._busy:
                # Mid-request: the handler finishes writing this response
                # (with Connection: close) and exits on its own.
                continue
            try:
                open_writer.close()
            except Exception:
                pass
        # Closed sockets wake parked handlers with EOF; busy handlers
        # finish their in-flight response. Wait for both so loop teardown
        # never has to cancel one mid-read or mid-write.
        pending = [task for task in self._handler_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        for supervisor in self._supervisors:
            supervisor.cancel()
        await asyncio.gather(*self._supervisors, return_exceptions=True)
        return 0

    def run(self, *, install_signals: bool = True) -> int:
        """Blocking entry point: fork workers, route until shut down."""
        prev = (OBS.registry, OBS.sink, OBS.enabled, OBS._seq)
        sink = obs.StderrSink() if self.config.verbose else None
        self._spawn_workers()
        obs.configure(sink=sink)
        try:
            code = asyncio.run(self._main(install_signals))
        finally:
            self._stop_workers()
            if OBS.sink is not prev[1]:
                OBS.sink.close()
            OBS.registry, OBS.sink, OBS.enabled, OBS._seq = prev
        alive = sum(
            1 for proc in self._procs if proc is not None and proc.is_alive()
        )
        print(
            f"router shut down: {self.config.workers - alive}/"
            f"{self.config.workers} shards drained cleanly",
            file=sys.stderr,
            flush=True,
        )
        return code if alive == 0 else 1
