"""Pure-python client for the simulation service (tests, CLI, load gen).

:class:`ServeClient` speaks the wire protocol of
:mod:`repro.serve.server` over stdlib ``http.client``, holding one
**keep-alive** connection per client instance: sequential requests reuse
the TCP connection (matching the server's HTTP/1.1 persistence), and a
connection the server has since closed or timed out is transparently
redialled — safe to retry because every serve request is idempotent by
content addressing. Server-side error envelopes are re-raised as the
*same* typed errors the server mapped onto HTTP in the first place
(:class:`~repro.errors.ProtocolError` for 400,
:class:`~repro.errors.JobNotFound` for 404,
:class:`~repro.errors.AdmissionRejected` — with the parsed
``Retry-After`` — for 429, :class:`~repro.errors.ServiceUnavailable` or
:class:`~repro.errors.ShardUnavailable` — likewise carrying any
``Retry-After`` the router attached — for 503), so client code handles
one taxonomy whether it runs in-process or across the wire.

:meth:`ServeClient.run` is the submit-and-wait convenience the ``repro
submit`` CLI and the load generator use: it polls the job (honouring
``Retry-After`` back-off on a full queue when asked to) and returns the
completed result envelope, raising
:class:`~repro.errors.RemoteJobFailed` when the server reports failure.
Submissions the server answers inline (coalesced onto a completed job,
or served from the tiered result cache) skip the polling loop entirely —
the result rides back on the submit response.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse

from repro.errors import (
    AdmissionRejected,
    JobNotFound,
    ProtocolError,
    RemoteJobFailed,
    ServeError,
    ServiceUnavailable,
    ShardUnavailable,
)

__all__ = ["ServeClient"]

#: HTTP status -> raised error type (the server's taxonomy, mirrored).
#: 429 and 503 are handled inline in :meth:`ServeClient._json` — both
#: carry a parsed ``Retry-After``.
_ERRORS_BY_STATUS = {
    400: ProtocolError,
    404: JobNotFound,
}

#: Default polling cadence while waiting on a job (seconds).
DEFAULT_POLL = 0.05

#: Retry-After parsing: unparseable headers fall back to this (seconds).
DEFAULT_RETRY_AFTER = 1.0

#: Upper clamp on a parsed Retry-After. The client *sleeps* this value
#: in run(); a buggy or hostile server must not be able to park us for
#: an hour (or forever, via inf/NaN) with one header.
MAX_RETRY_AFTER = 300.0


def _parse_retry_after(header: str) -> float:
    """Parse a Retry-After header into a sane, sleepable delay.

    Well-formed servers send small non-negative integers, but this value
    feeds ``time.sleep`` directly, so it is defensively clamped to
    ``[0, MAX_RETRY_AFTER]``; NaN and anything unparseable fall back to
    :data:`DEFAULT_RETRY_AFTER`.
    """
    try:
        value = float(header)
    except ValueError:
        return DEFAULT_RETRY_AFTER
    if value != value:  # NaN
        return DEFAULT_RETRY_AFTER
    return min(max(value, 0.0), MAX_RETRY_AFTER)


class ServeClient:
    """Talks to one server at ``base_url`` (e.g. ``http://127.0.0.1:8765``)."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ProtocolError(
                f"only http:// servers are supported, got {base_url!r}"
            )
        host = parsed.hostname or parsed.path or "127.0.0.1"
        if not host:
            raise ProtocolError(f"no host in server url {base_url!r}")
        self.host = host
        self.port = parsed.port or 8765
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # -- transport -----------------------------------------------------------------

    def close(self) -> None:
        """Drop the cached keep-alive connection (idempotent)."""
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:
                pass
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _send(
        self, method: str, path: str, payload: bytes | None
    ) -> tuple[int, dict[str, str], bytes]:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        headers = {}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        self._connection.request(method, path, body=payload, headers=headers)
        response = self._connection.getresponse()
        data = response.read()
        lowered = {
            name.lower(): value for name, value in response.getheaders()
        }
        if response.will_close:
            # The server chose Connection: close (or an HTTP/1.0 peer);
            # fall back cleanly to dial-per-request behaviour.
            self.close()
        return response.status, lowered, data

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        payload = None
        if body is not None:
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
        reused = self._connection is not None
        try:
            return self._send(method, path, payload)
        except (OSError, http.client.HTTPException) as exc:
            self.close()
            if reused:
                # A cached connection the server closed between requests
                # (restart, idle timeout) surfaces here; one fresh-dial
                # retry is safe — requests are idempotent by content
                # addressing, so a duplicate submit coalesces.
                try:
                    return self._send(method, path, payload)
                except (OSError, http.client.HTTPException) as retry_exc:
                    self.close()
                    exc = retry_exc
            raise ServeError(
                f"cannot reach server at http://{self.host}:{self.port}: "
                f"{exc} (is `repro serve` running?)"
            ) from exc

    @staticmethod
    def _decode(data: bytes) -> dict:
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(
                f"server sent a non-JSON response: {exc}"
            ) from exc
        if not isinstance(decoded, dict):
            raise ServeError(
                f"server sent a non-object response: {decoded!r}"
            )
        return decoded

    def _json(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        status, headers, data = self._request(method, path, body)
        if status < 400:
            return self._decode(data)
        message = "server error"
        kind = ""
        try:
            envelope = self._decode(data)["error"]
            message = envelope["message"]
            kind = envelope.get("type", "")
        except (ServeError, KeyError, TypeError):
            pass
        if status == 429:
            retry_after = _parse_retry_after(headers.get("retry-after", "1"))
            raise AdmissionRejected(message, retry_after=retry_after)
        if status == 503:
            # The router's shard-restart 503s carry an honest Retry-After
            # (clamped exactly like the 429 path); a plain drain 503 does
            # not, and run() fails fast on those.
            header = headers.get("retry-after")
            retry_after = (
                _parse_retry_after(header) if header is not None else None
            )
            cls = (
                ShardUnavailable
                if kind == "ShardUnavailable"
                else ServiceUnavailable
            )
            raise cls(message, retry_after=retry_after)
        raise _ERRORS_BY_STATUS.get(status, ServeError)(message)

    # -- protocol operations -------------------------------------------------------

    def submit_simulate(self, **fields: object) -> dict:
        """``POST /v1/simulate``; returns ``{"job", "state", "coalesced",
        "cached"}`` plus ``"result"`` when answered inline."""
        return self._json("POST", "/v1/simulate", fields)

    def submit_sweep(self, **fields: object) -> dict:
        """``POST /v1/sweep``; same response shape as simulate."""
        return self._json("POST", "/v1/sweep", fields)

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>`` — the full job record."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw text exposition."""
        status, _, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"/metrics answered {status}")
        return data.decode("utf-8")

    def metrics(self) -> dict[str, float]:
        """The exposition parsed into ``{name: value}`` (comments dropped)."""
        values: dict[str, float] = {}
        for line in self.metrics_text().splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            values[name] = float(value)
        return values

    # -- conveniences --------------------------------------------------------------

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = DEFAULT_POLL,
    ) -> dict:
        """Poll until the job leaves the queued/running states.

        Returns the final record for ``done`` jobs; raises
        :class:`RemoteJobFailed` for ``failed``/``cancelled`` ones and
        :class:`ServeError` on timeout. :class:`JobNotFound` propagates:
        the record may have been evicted from a bounded job table —
        :meth:`run` handles that by resubmitting.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            state = record.get("state")
            if state == "done":
                return record
            if state in ("failed", "cancelled"):
                error = record.get("error") or {}
                raise RemoteJobFailed(
                    f"job {job_id} {state}: "
                    f"{error.get('type', '?')}: {error.get('message', '?')}"
                )
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {state} after {timeout:g}s"
                )
            time.sleep(poll)

    def run(
        self,
        kind: str,
        fields: dict,
        *,
        timeout: float = 300.0,
        poll: float = DEFAULT_POLL,
        backoff_on_full: bool = True,
    ) -> dict:
        """Submit one request and wait for its result envelope.

        With *backoff_on_full*, a 429 is retried after the server's
        ``Retry-After`` (until *timeout* is spent) — the closed-loop
        behaviour a well-behaved client owes a load-shedding server. A
        503 that carries a ``Retry-After`` (the sharded router answering
        for a shard mid-restart) is honoured the same way, with the same
        [0, 300] clamp; a 503 *without* one (a draining server) fails
        fast, because waiting would not help.

        Submissions the server answers inline (cache hit or coalesced
        onto a completed job) return immediately — the submit response
        already carries the result. If a polled job vanishes (evicted
        from a bounded job table between poll rounds, or lost with a
        crashed shard's in-memory job table), the request is resubmitted:
        the server recovers the result from its cache, as its 404 message
        advises.
        """
        deadline = time.monotonic() + timeout

        def _backoff(exc: ServeError, retry_after: float) -> None:
            if not backoff_on_full:
                raise exc
            if time.monotonic() + retry_after > deadline:
                raise exc
            time.sleep(retry_after)

        while True:
            submitted = None
            while True:
                try:
                    submitted = (
                        self.submit_simulate(**fields)
                        if kind == "simulate"
                        else self.submit_sweep(**fields)
                    )
                    break
                except AdmissionRejected as exc:
                    _backoff(exc, exc.retry_after)
                except ServiceUnavailable as exc:
                    if exc.retry_after is None:
                        raise  # draining: no amount of patience helps
                    _backoff(exc, exc.retry_after)
            if submitted.get("state") == "done" and "result" in submitted:
                return submitted
            remaining = max(poll, deadline - time.monotonic())
            try:
                return self.wait(
                    submitted["job"], timeout=remaining, poll=poll
                )
            except JobNotFound:
                if time.monotonic() >= deadline:
                    raise
                continue  # evicted terminal record; resubmit recovers it
            except ServiceUnavailable as exc:
                # The owning shard went down mid-poll. When the router
                # says when to come back, do so and resubmit — the job id
                # is content-addressed, so the resubmission coalesces or
                # re-runs identically on the respawned shard.
                if exc.retry_after is None:
                    raise
                if time.monotonic() + exc.retry_after >= deadline:
                    raise
                time.sleep(exc.retry_after)
                continue
