"""The asyncio HTTP/JSON server: routing, backpressure, live metrics.

Stdlib-only by construction: requests are parsed directly off asyncio
streams (no ``http.server``, no third-party framework), one request per
connection (``Connection: close``), bodies capped at 1 MiB. That is all
the HTTP a batch-simulation service needs, and every byte of it is
inspectable in this one module.

Endpoints::

    POST /v1/simulate   submit one cache/MTC run        -> 202 (or 200 coalesced)
    POST /v1/sweep      submit one experiment grid      -> 202 (or 200 coalesced)
    GET  /v1/jobs/<id>  job state; result once done     -> 200 / 404
    GET  /healthz       liveness + queue/jobs/cache     -> 200
    GET  /metrics       obs-registry text exposition    -> 200

The request path is deliberately thin: normalise (400 on bad input),
content-address, coalesce against the job table (200, ``serve.coalesced``),
or admit into the bounded queue (429 + ``Retry-After`` when full,
``serve.rejected``). Everything heavy happens in the scheduler's batches.

Lifecycle: :meth:`SimulationServer.run` blocks until SIGINT/SIGTERM
(or a cross-thread :meth:`shutdown`), then drains — the running batch
completes, queued jobs are cancelled, and the process exits 0. The obs
facade is active for the server's lifetime so ``/metrics`` always has a
live registry; the previous facade state is restored on exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass

from repro import obs
from repro.errors import (
    AdmissionRejected,
    JobNotFound,
    ProtocolError,
    ServeError,
    ServiceUnavailable,
)
from repro.obs import OBS, TRACER
from repro.serve.admission import AdmissionQueue
from repro.serve.jobs import JobRecord, JobTable
from repro.serve.protocol import job_id, job_material, normalize_request
from repro.serve.scheduler import Scheduler

__all__ = ["ServeConfig", "SimulationServer"]

#: Request-body ceiling; a simulate/sweep request is a few hundred bytes,
#: so anything near this is a client bug, not a bigger valid request.
MAX_BODY_BYTES = 1 << 20

#: Per-connection read budget; protects the accept loop from stalled peers.
READ_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(slots=True)
class ServeConfig:
    """Everything ``repro serve`` configures, in one picklable bag."""

    host: str = "127.0.0.1"
    port: int = 8765
    queue_depth: int = 64
    max_inflight: int = 4
    jobs: int = 1
    #: Exec-cache root for job results; ``None`` disables caching (and
    #: with it completed-work coalescing across restarts).
    cache_dir: str | None = None
    #: A :class:`repro.exec.RetryPolicy`, or ``None`` for the default.
    retry: object | None = None
    verbose: bool = False
    #: JSONL span-log path; ``None`` (the default) disables request
    #: tracing entirely (zero per-request overhead, identical output).
    trace_spans: str | None = None


def _json_bytes(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _response(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS[status]}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class SimulationServer:
    """One service instance: listener + job table + queue + scheduler."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.table = JobTable()
        self.queue = AdmissionQueue(config.queue_depth)
        cache = None
        if config.cache_dir is not None:
            from repro.exec import ResultCache

            cache = ResultCache(config.cache_dir)
        self.cache = cache
        self.scheduler = Scheduler(
            self.queue,
            self.table,
            max_inflight=config.max_inflight,
            jobs=config.jobs,
            cache=cache,
            retry=config.retry,
        )
        #: (host, port) actually bound — resolves ``port=0`` requests.
        self.address: tuple[str, int] | None = None
        #: Set once the listener is bound (cross-thread test harnesses).
        self.ready = threading.Event()
        self.draining = False
        self._listener: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested: asyncio.Event | None = None
        self._scheduler_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the scheduler (loop must be running)."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        self._listener = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.address = self._listener.sockets[0].getsockname()[:2]
        self._scheduler_task = asyncio.create_task(self.scheduler.run())
        self.ready.set()

    def shutdown(self) -> None:
        """Request a graceful drain; safe to call from any thread."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._begin_shutdown)

    def _begin_shutdown(self) -> None:
        self.draining = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def _drain(self) -> int:
        """Finish the running batch, cancel the queue, close the listener."""
        self.scheduler.stop()
        drained = 0
        if self._scheduler_task is not None:
            try:
                drained = await self._scheduler_task
            except Exception as exc:  # pragma: no cover - scheduler bug
                print(f"scheduler crashed during drain: {exc}", file=sys.stderr)
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        return drained

    async def _main(self, install_signals: bool) -> int:
        await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, self._begin_shutdown)
        host, port = self.address
        print(
            f"serving on http://{host}:{port} "
            f"(queue-depth={self.config.queue_depth}, "
            f"max-inflight={self.config.max_inflight}, "
            f"jobs={self.config.jobs})",
            file=sys.stderr,
            flush=True,
        )
        await self._shutdown_requested.wait()
        drained = await self._drain()
        print(
            f"shutting down: drained {drained} in-flight job(s), "
            f"{self.scheduler.cancelled} cancelled",
            file=sys.stderr,
            flush=True,
        )
        return 0

    def run(self, *, install_signals: bool = True) -> int:
        """Blocking entry point: serve until shut down, then drain.

        Activates the process-wide obs facade for the server's lifetime
        (so ``/metrics`` and the serve counters are live) and restores
        the previous facade state afterwards — embedding a server in a
        test leaves global state exactly as found.
        """
        prev = (OBS.registry, OBS.sink, OBS.enabled, OBS._seq)
        sink = obs.StderrSink() if self.config.verbose else None
        obs.configure(sink=sink)
        tracing_before = TRACER.enabled
        if self.config.trace_spans is not None:
            TRACER.configure(self.config.trace_spans)
        try:
            return asyncio.run(self._main(install_signals))
        finally:
            if OBS.sink is not prev[1]:
                OBS.sink.close()
            OBS.registry, OBS.sink, OBS.enabled, OBS._seq = prev
            if self.config.trace_spans is not None and not tracing_before:
                TRACER.deactivate()

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                parsed = await asyncio.wait_for(
                    self._read_request(reader), timeout=READ_TIMEOUT
                )
            except ProtocolError as exc:
                writer.write(self._error_response(exc))
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, OSError):
                return  # peer stalled or vanished; nothing to answer
            if parsed is None:
                return
            method, target, body = parsed
            if OBS.enabled:
                OBS.count("serve.requests")
            try:
                response = self._route(method, target, body)
            except ServeError as exc:
                response = self._error_response(exc)
            except Exception as exc:  # route bug: answer 500, keep serving
                payload = {"error": {"type": type(exc).__name__,
                                     "message": str(exc)}}
                response = _response(
                    500, _json_bytes(payload), "application/json"
                )
            writer.write(response)
            await writer.drain()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _error_response(exc: ServeError) -> bytes:
        if OBS.enabled and isinstance(exc, AdmissionRejected):
            OBS.count("serve.rejected")
        headers = {}
        if isinstance(exc, AdmissionRejected):
            headers["Retry-After"] = str(int(exc.retry_after))
        payload = {"error": {"type": type(exc).__name__, "message": str(exc)}}
        return _response(
            exc.http_status, _json_bytes(payload), "application/json", headers
        )

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes] | None:
        """Parse one HTTP/1.x request head + body off the stream.

        Returns ``None`` when the peer closed without sending anything;
        raises :class:`ProtocolError` for requests this server will not
        interpret (the connection still gets a clean 400).
        """
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(f"malformed request line: {line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
            if len(headers) > 100:
                raise ProtocolError("too many request headers")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise ProtocolError("Content-Length is not an integer") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    # -- routing -------------------------------------------------------------------

    def _route(self, method: str, target: str, body: bytes) -> bytes:
        path = target.split("?", 1)[0]
        if path in ("/v1/simulate", "/v1/sweep"):
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._submit(path.rsplit("/", 1)[1], body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._job_status(path[len("/v1/jobs/"):])
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._metrics()
        raise JobNotFound(f"no route for {path!r}")

    @staticmethod
    def _method_not_allowed(allowed: str) -> bytes:
        payload = {"error": {"type": "MethodNotAllowed",
                             "message": f"use {allowed}"}}
        return _response(
            405, _json_bytes(payload), "application/json", {"Allow": allowed}
        )

    def _submit(self, kind: str, body: bytes) -> bytes:
        if self.draining:
            raise ServiceUnavailable(
                "server is draining for shutdown; resubmit elsewhere or later"
            )
        if body:
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ProtocolError(
                    f"request body is not valid JSON: {exc}"
                ) from exc
        else:
            decoded = {}
        request = normalize_request(kind, decoded)
        material = job_material(request)
        record = JobRecord(
            id=job_id(material), request=request, material=material
        )
        record, coalesced = self.table.resolve(record)
        if coalesced:
            if OBS.enabled:
                OBS.count("serve.coalesced")
        else:
            try:
                self.queue.offer(record)  # raises AdmissionRejected when full
            except AdmissionRejected:
                self.table.discard(record)  # never admitted, never runs
                raise
            record.admitted_at = time.time()
            if TRACER.enabled:
                # The trace root: HTTP admission of this job. It stays
                # open until the scheduler marks the job terminal; its
                # ids are fixed now so every child span (queue wait,
                # exec tasks in pool workers, engine stages) can link
                # to it immediately.
                span = TRACER.begin("serve.request", kind=kind, job=record.id)
                record.trace_span = span
                record.trace_ctx = span.context()
            if OBS.enabled:
                OBS.count("serve.submitted")
            self.scheduler.notify()
        self.scheduler._gauges()
        payload = {
            "job": record.id,
            "state": record.state,
            "coalesced": coalesced,
        }
        return _response(
            200 if coalesced else 202, _json_bytes(payload), "application/json"
        )

    def _job_status(self, job_id_text: str) -> bytes:
        record = self.table.get(job_id_text)
        if record is None:
            raise JobNotFound(
                f"no job {job_id_text!r} (job state is in-memory; results "
                f"persist in the result cache — resubmit to recover them)"
            )
        return _response(
            200, _json_bytes(record.describe()), "application/json"
        )

    def _healthz(self) -> bytes:
        payload = {
            "status": "draining" if self.draining else "ok",
            "queue": {
                "depth": len(self.queue),
                "capacity": self.queue.capacity,
            },
            "inflight": self.scheduler.inflight,
            "jobs": self.table.counts(),
            "cache": self.cache.stats().to_json() if self.cache else None,
        }
        if OBS.enabled:
            # Interpolated-percentile latency summaries (empty until the
            # first batch runs; the histograms are created on demand).
            payload["latency"] = {
                "queue_wait": OBS.registry.histogram(
                    "serve.queue.wait"
                ).snapshot(),
                "service": OBS.registry.histogram(
                    "serve.job.service"
                ).snapshot(),
            }
        return _response(200, _json_bytes(payload), "application/json")

    def _metrics(self) -> bytes:
        self.scheduler._gauges()  # queue-depth/inflight read fresh
        text = OBS.registry.exposition() if OBS.enabled else ""
        return _response(
            200, (text + "\n").encode("utf-8"), "text/plain; charset=utf-8"
        )
