"""The asyncio HTTP/JSON server: routing, backpressure, live metrics.

Stdlib-only by construction: requests are parsed directly off asyncio
streams (no ``http.server``, no third-party framework), bodies capped at
1 MiB. Connections are **keep-alive** by default (HTTP/1.1 semantics: a
client that doesn't send ``Connection: close`` may pipeline sequential
requests over one TCP connection); HTTP/1.0 peers get one request per
connection unless they ask for ``keep-alive``. That is all the HTTP a
batch-simulation service needs, and every byte of it is inspectable in
this one module.

Endpoints::

    POST /v1/simulate   submit one cache/MTC run        -> 202 (or 200 answered)
    POST /v1/sweep      submit one experiment grid      -> 202 (or 200 answered)
    GET  /v1/jobs/<id>  job state; result once done     -> 200 / 404
    GET  /healthz       liveness + queue/jobs/cache     -> 200
    GET  /metrics       obs-registry text exposition    -> 200

The request path is deliberately thin: normalise (400 on bad input),
content-address, then answer without executing anything when possible —
coalesce onto an in-flight or completed equivalent in the job table
(200, ``serve.coalesced``) or answer straight from the tiered result
cache (200 with the result inline, ``serve.cache.answered``). Only
genuinely new work is admitted into the bounded queue (429 +
``Retry-After`` when full, ``serve.rejected``). Everything heavy happens
in the scheduler's batches.

Lifecycle: :meth:`SimulationServer.run` blocks until SIGINT/SIGTERM
(or a cross-thread :meth:`shutdown`), then drains — the running batch
completes, queued jobs are cancelled, and the process exits 0. The obs
facade is active for the server's lifetime so ``/metrics`` always has a
live registry; the previous facade state is restored on exit.

For multi-process serving (``repro serve --workers N``) this class is
the per-shard backend: :class:`repro.serve.router.ShardedServer` binds
the public socket, forks N workers each running a ``SimulationServer``
on a pre-bound localhost socket (the ``sock`` parameter), and routes by
consistent-hashed job id so coalescing and the hot tier keep their
within-shard locality.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass

from repro import obs
from repro.errors import (
    AdmissionRejected,
    JobNotFound,
    ProtocolError,
    ServeError,
    ServiceUnavailable,
)
from repro.exec.faults import FAULTS
from repro.obs import OBS, TRACER
from repro.serve.admission import AdmissionQueue
from repro.serve.jobs import DONE, JobRecord, JobTable
from repro.serve.protocol import job_id, job_material, normalize_request
from repro.serve.scheduler import Scheduler

__all__ = ["ServeConfig", "SimulationServer"]

#: Request-body ceiling; a simulate/sweep request is a few hundred bytes,
#: so anything near this is a client bug, not a bigger valid request.
MAX_BODY_BYTES = 1 << 20

#: Per-connection read budget; protects the accept loop from stalled peers.
READ_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(slots=True)
class ServeConfig:
    """Everything ``repro serve`` configures, in one picklable bag."""

    host: str = "127.0.0.1"
    port: int = 8765
    queue_depth: int = 64
    max_inflight: int = 4
    jobs: int = 1
    #: Exec-cache root for job results; ``None`` disables caching (and
    #: with it completed-work coalescing across restarts and the
    #: cache-answered fast path).
    cache_dir: str | None = None
    #: A :class:`repro.exec.RetryPolicy`, or ``None`` for the default.
    retry: object | None = None
    verbose: bool = False
    #: JSONL span-log path; ``None`` (the default) disables request
    #: tracing entirely (zero per-request overhead, identical output).
    trace_spans: str | None = None
    #: In-memory hot-tier byte budget in front of the disk cache.
    #: ``None`` means the tiered default
    #: (:data:`repro.exec.tiered.DEFAULT_HOT_BYTES`); ``0`` serves from
    #: the plain disk cache. Only meaningful with a *cache_dir*.
    hot_bytes: int | None = None
    #: Worker processes. 1 serves in-process; N > 1 makes ``repro
    #: serve`` start a :class:`~repro.serve.router.ShardedServer` that
    #: forks N of these behind one public port.
    workers: int = 1
    #: Max terminal job records retained in the in-memory table
    #: (``None`` = unbounded). With a cache, evicted ids are recoverable
    #: by resubmission — the cache answers instantly.
    job_history: int | None = None
    #: This worker's shard index under a router (``None`` standalone);
    #: cosmetic: banner + ``/healthz`` labelling only.
    shard: int | None = None
    #: A :class:`repro.exec.RetryPolicy` governing the router's shard
    #: respawns (budget + deterministically-jittered backoff), or
    #: ``None`` for the router's default. Ignored by a standalone
    #: single-worker server.
    restart_policy: object | None = None


def _json_bytes(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


#: What a route handler produces: (status, body, content-type, headers).
#: The connection loop owns the Connection header, so handlers never
#: decide keep-alive policy.
Reply = tuple[int, bytes, str, dict]


def _json_reply(
    status: int, payload: object, headers: dict[str, str] | None = None
) -> Reply:
    return status, _json_bytes(payload), "application/json", headers or {}


def _response(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: dict[str, str] | None = None,
    *,
    close: bool = True,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS[status]}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _wants_keep_alive(version: str, headers: dict[str, str]) -> bool:
    """HTTP/1.1 defaults to keep-alive; 1.0 must ask; close always wins."""
    connection = headers.get("connection", "").lower()
    if "close" in connection:
        return False
    if version == "HTTP/1.0":
        return "keep-alive" in connection
    return True


class SimulationServer:
    """One service instance: listener + job table + queue + scheduler."""

    def __init__(
        self, config: ServeConfig, *, sock: socket.socket | None = None
    ) -> None:
        self.config = config
        self.table = JobTable(history=config.job_history)
        self.queue = AdmissionQueue(config.queue_depth)
        cache = None
        if config.cache_dir is not None:
            from repro.exec import ResultCache, TieredCache
            from repro.exec.tiered import DEFAULT_HOT_BYTES

            hot = (
                DEFAULT_HOT_BYTES
                if config.hot_bytes is None
                else config.hot_bytes
            )
            if hot > 0:
                cache = TieredCache(config.cache_dir, hot_bytes=hot)
            else:
                cache = ResultCache(config.cache_dir)
        self.cache = cache
        #: Pre-bound listening socket (sharded workers inherit theirs
        #: from the router across fork); ``None`` binds host:port.
        self._sock = sock
        self.scheduler = Scheduler(
            self.queue,
            self.table,
            max_inflight=config.max_inflight,
            jobs=config.jobs,
            cache=cache,
            retry=config.retry,
        )
        #: (host, port) actually bound — resolves ``port=0`` requests.
        self.address: tuple[str, int] | None = None
        #: Set once the listener is bound (cross-thread test harnesses).
        self.ready = threading.Event()
        self.draining = False
        self._listener: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested: asyncio.Event | None = None
        self._scheduler_task: asyncio.Task | None = None
        #: Open client connections (keep-alive means they outlive single
        #: requests); closed at drain so shutdown never hangs on an idle
        #: peer parked between requests.
        self._connections: set[asyncio.StreamWriter] = set()
        self._handler_tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the scheduler (loop must be running)."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        if self._sock is not None:
            self._listener = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        else:
            self._listener = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        self.address = self._listener.sockets[0].getsockname()[:2]
        self._scheduler_task = asyncio.create_task(self.scheduler.run())
        self.ready.set()

    def shutdown(self) -> None:
        """Request a graceful drain; safe to call from any thread."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._begin_shutdown)

    def _begin_shutdown(self) -> None:
        self.draining = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def _drain(self) -> int:
        """Finish the running batch, cancel the queue, close the listener."""
        self.scheduler.stop()
        drained = 0
        if self._scheduler_task is not None:
            try:
                drained = await self._scheduler_task
            except Exception as exc:  # pragma: no cover - scheduler bug
                print(f"scheduler crashed during drain: {exc}", file=sys.stderr)
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:
                pass
        # Closed sockets wake parked handlers with EOF; wait for them to
        # unwind so the loop shuts down without cancelling anything.
        pending = [task for task in self._handler_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=2.0)
        return drained

    async def _main(self, install_signals: bool) -> int:
        await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, self._begin_shutdown)
        host, port = self.address
        label = (
            f"shard {self.config.shard} serving"
            if self.config.shard is not None
            else "serving"
        )
        print(
            f"{label} on http://{host}:{port} "
            f"(queue-depth={self.config.queue_depth}, "
            f"max-inflight={self.config.max_inflight}, "
            f"jobs={self.config.jobs})",
            file=sys.stderr,
            flush=True,
        )
        await self._shutdown_requested.wait()
        drained = await self._drain()
        print(
            f"shutting down: drained {drained} in-flight job(s), "
            f"{self.scheduler.cancelled} cancelled",
            file=sys.stderr,
            flush=True,
        )
        return 0

    def run(self, *, install_signals: bool = True) -> int:
        """Blocking entry point: serve until shut down, then drain.

        Activates the process-wide obs facade for the server's lifetime
        (so ``/metrics`` and the serve counters are live) and restores
        the previous facade state afterwards — embedding a server in a
        test leaves global state exactly as found.
        """
        prev = (OBS.registry, OBS.sink, OBS.enabled, OBS._seq)
        sink = obs.StderrSink() if self.config.verbose else None
        obs.configure(sink=sink)
        tracing_before = TRACER.enabled
        if self.config.trace_spans is not None:
            TRACER.configure(self.config.trace_spans)
        try:
            return asyncio.run(self._main(install_signals))
        finally:
            if OBS.sink is not prev[1]:
                OBS.sink.close()
            OBS.registry, OBS.sink, OBS.enabled, OBS._seq = prev
            if self.config.trace_spans is not None and not tracing_before:
                TRACER.deactivate()

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests off one connection until it closes.

        Keep-alive is decided per request: the loop continues while both
        sides agree (HTTP/1.1 without ``Connection: close``). Each
        iteration is bounded by :data:`READ_TIMEOUT`, which doubles as
        the idle timeout between keep-alive requests.
        """
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(
                        self._read_request(reader), timeout=READ_TIMEOUT
                    )
                except ProtocolError as exc:
                    status, body, ctype, headers = self._error_reply(exc)
                    writer.write(
                        _response(status, body, ctype, headers, close=True)
                    )
                    await writer.drain()
                    return
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    OSError,
                ):
                    return  # peer stalled or vanished; nothing to answer
                if parsed is None:
                    return  # clean close between requests
                method, target, body, version, req_headers = parsed
                keep_alive = _wants_keep_alive(version, req_headers)
                if OBS.enabled:
                    OBS.count("serve.requests")
                if FAULTS.active:
                    # Serve-layer chaos hooks: the request is parsed (so
                    # the label carries method + path) but not yet acted
                    # on, which makes a fired shard.kill a mid-request
                    # crash the router must absorb with zero client
                    # failures. shard.kill is inert in the process that
                    # armed the plan (see FaultPlan.fire), so only forked
                    # shards ever die here.
                    tag = (
                        f"shard{self.config.shard}"
                        if self.config.shard is not None
                        else "serve"
                    )
                    label = f"{tag}:{method} {target.split('?', 1)[0]}"
                    FAULTS.fire("shard.slow", label)
                    FAULTS.fire("shard.kill", label)
                try:
                    status, payload, ctype, headers = self._route(
                        method, target, body
                    )
                except ServeError as exc:
                    status, payload, ctype, headers = self._error_reply(exc)
                except Exception as exc:  # route bug: 500, keep serving
                    status, payload, ctype, headers = _json_reply(
                        500,
                        {"error": {"type": type(exc).__name__,
                                   "message": str(exc)}},
                    )
                writer.write(
                    _response(
                        status, payload, ctype, headers, close=not keep_alive
                    )
                )
                await writer.drain()
                if not keep_alive:
                    return
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handler_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    def _error_reply(exc: ServeError) -> Reply:
        if OBS.enabled and isinstance(exc, AdmissionRejected):
            OBS.count("serve.rejected")
        headers = {}
        if isinstance(exc, AdmissionRejected):
            headers["Retry-After"] = str(int(exc.retry_after))
        payload = {"error": {"type": type(exc).__name__, "message": str(exc)}}
        return _json_reply(exc.http_status, payload, headers)

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes, str, dict[str, str]] | None:
        """Parse one HTTP/1.x request head + body off the stream.

        Returns ``(method, target, body, version, headers)``, or ``None``
        when the peer closed without sending anything; raises
        :class:`ProtocolError` for requests this server will not
        interpret (the connection still gets a clean 400).
        """
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(f"malformed request line: {line!r}")
        method, target, version = parts[0].upper(), parts[1], parts[2]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
            if len(headers) > 100:
                raise ProtocolError("too many request headers")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise ProtocolError("Content-Length is not an integer") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, body, version, headers

    # -- routing -------------------------------------------------------------------

    def _route(self, method: str, target: str, body: bytes) -> Reply:
        path = target.split("?", 1)[0]
        if path in ("/v1/simulate", "/v1/sweep"):
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._submit(path.rsplit("/", 1)[1], body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._job_status(path[len("/v1/jobs/"):])
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._metrics()
        raise JobNotFound(f"no route for {path!r}")

    @staticmethod
    def _method_not_allowed(allowed: str) -> Reply:
        payload = {"error": {"type": "MethodNotAllowed",
                             "message": f"use {allowed}"}}
        return _json_reply(405, payload, {"Allow": allowed})

    def _submit(self, kind: str, body: bytes) -> Reply:
        if self.draining:
            raise ServiceUnavailable(
                "server is draining for shutdown; resubmit elsewhere or later"
            )
        if body:
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ProtocolError(
                    f"request body is not valid JSON: {exc}"
                ) from exc
        else:
            decoded = {}
        request = normalize_request(kind, decoded)
        material = job_material(request)
        record = JobRecord(
            id=job_id(material), request=request, material=material
        )
        record, coalesced = self.table.resolve(record)
        if coalesced:
            if OBS.enabled:
                OBS.count("serve.coalesced")
        elif self._answer_from_cache(record):
            pass  # terminal record registered; payload built below
        else:
            try:
                self.queue.offer(record)  # raises AdmissionRejected when full
            except AdmissionRejected:
                self.table.discard(record)  # never admitted, never runs
                raise
            record.admitted_at = time.time()
            if TRACER.enabled:
                # The trace root: HTTP admission of this job. It stays
                # open until the scheduler marks the job terminal; its
                # ids are fixed now so every child span (queue wait,
                # exec tasks in pool workers, engine stages) can link
                # to it immediately.
                span = TRACER.begin("serve.request", kind=kind, job=record.id)
                record.trace_span = span
                record.trace_ctx = span.context()
            if OBS.enabled:
                OBS.count("serve.submitted")
            self.scheduler.notify()
        self.scheduler._gauges()
        payload = {
            "job": record.id,
            "state": record.state,
            "coalesced": coalesced,
            "cached": record.cached,
        }
        answered = record.state == DONE and record.result is not None
        if answered:
            # The result rides along on the submit response, so a
            # repeated (coalesced-onto-done or cache-answered) request
            # costs one round trip, not submit + poll.
            payload["result"] = record.result
        return _json_reply(200 if (coalesced or answered) else 202, payload)

    def _answer_from_cache(self, record: JobRecord) -> bool:
        """Answer a fresh submission straight from the result cache.

        The tiered cache is consulted *before* queueing: a hit registers
        the record as already-done (born terminal, ``cached=True``) and
        nothing is scheduled. This is what makes repeats cheap — the hot
        tier turns them into a dict lookup — and what feeds the tier's
        reuse stream for ``repro cache mrc``.
        """
        if self.cache is None:
            return False
        from repro.exec import MISS

        value = self.cache.get(record.material)
        if value is MISS:
            return False
        now = time.time()
        with self.scheduler.state_lock:
            record.result = value
            record.state = DONE
            record.cached = True
            record.admitted_at = now
            record.finished_at = now
            record.service_seconds = 0.0
            self.table.mark_terminal(record)
            if OBS.enabled:
                OBS.count("serve.cache.answered")
        return True

    def _job_status(self, job_id_text: str) -> Reply:
        record = self.table.get(job_id_text)
        if record is None:
            raise JobNotFound(
                f"no job {job_id_text!r} (job state is in-memory; results "
                f"persist in the result cache — resubmit to recover them)"
            )
        return _json_reply(200, record.describe())

    def _healthz(self) -> Reply:
        # One consistent snapshot: terminal transitions (scheduler) and
        # the cache-answer path mutate job counts, counters, and
        # histograms together under this lock, so a scrape racing a
        # completion sees either all of its effects or none.
        with self.scheduler.state_lock:
            payload = {
                "status": "draining" if self.draining else "ok",
                "queue": {
                    "depth": len(self.queue),
                    "capacity": self.queue.capacity,
                },
                "inflight": self.scheduler.inflight,
                "jobs": self.table.counts(),
                "cache": self.cache.stats().to_json() if self.cache else None,
            }
            if self.config.shard is not None:
                payload["shard"] = self.config.shard
            hot = getattr(self.cache, "hot", None)
            if hot is not None:
                payload["hot_tier"] = hot.stats()
            if self.table.history is not None:
                payload["jobs"]["evicted"] = self.table.evicted
            if OBS.enabled:
                # Interpolated-percentile latency summaries (empty until
                # the first batch runs; histograms created on demand).
                payload["latency"] = {
                    "queue_wait": OBS.registry.histogram(
                        "serve.queue.wait"
                    ).snapshot(),
                    "service": OBS.registry.histogram(
                        "serve.job.service"
                    ).snapshot(),
                }
        return _json_reply(200, payload)

    def _metrics(self) -> Reply:
        self.scheduler._gauges()  # queue-depth/inflight read fresh
        with self.scheduler.state_lock:
            text = OBS.registry.exposition() if OBS.enabled else ""
        return (
            200,
            (text + "\n").encode("utf-8"),
            "text/plain; charset=utf-8",
            {},
        )
