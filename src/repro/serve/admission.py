"""Admission control: the bounded queue between HTTP and the scheduler.

The server's memory-safety argument lives here. Every accepted job
occupies one slot in a fixed-capacity FIFO until the scheduler drains
it; when the queue is full, new work is *shed at admission* with
:class:`~repro.errors.AdmissionRejected` (HTTP 429 + ``Retry-After``)
rather than buffered. Together with request coalescing (which admits
duplicates for free) this bounds the server's queued state at
``queue_depth`` jobs no matter how many clients are pushing.

The ``Retry-After`` estimate is queue depth times an exponentially
weighted moving average of recent per-job service time, clamped to
[1, 60] seconds — long enough that a well-behaved client backing off
will usually find a slot, short enough that capacity freed by a burst
draining is not left idle.

Everything here runs on the event-loop thread only, so plain attributes
need no locking; the scheduler hands completed-batch timings back via
:meth:`observe_service_time`.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import AdmissionRejected, ConfigurationError
from repro.serve.jobs import JobRecord

__all__ = ["AdmissionQueue"]

#: Retry-After clamp (seconds).
MIN_RETRY_AFTER = 1.0
MAX_RETRY_AFTER = 60.0

#: EWMA weight for the newest service-time sample.
SERVICE_TIME_ALPHA = 0.3

#: Until a job has completed, assume this per-job cost (seconds).
DEFAULT_SERVICE_TIME = 1.0

#: Floor for one observed service-time sample. Sub-microsecond (or
#: clock-skewed negative) samples are real completions — dropping them
#: would pin the EWMA at stale slow values after a burst of cache hits,
#: inflating Retry-After far beyond the queue's true drain time.
MIN_SERVICE_TIME_SAMPLE = 1e-6


class AdmissionQueue:
    """Fixed-capacity FIFO of queued :class:`JobRecord` items."""

    def __init__(self, depth: int) -> None:
        if isinstance(depth, bool) or not isinstance(depth, int) or depth < 1:
            raise ConfigurationError(
                f"queue depth must be a positive integer, got {depth!r}"
            )
        self.capacity = depth
        self._queue: deque[JobRecord] = deque()
        self._service_time = DEFAULT_SERVICE_TIME

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def retry_after(self) -> float:
        """Suggested client back-off, in whole seconds (ceil-clamped)."""
        estimate = max(1, len(self._queue)) * self._service_time
        clamped = min(MAX_RETRY_AFTER, max(MIN_RETRY_AFTER, estimate))
        return float(int(clamped) + (clamped > int(clamped)))

    def offer(self, record: JobRecord) -> None:
        """Admit *record* or shed it with :class:`AdmissionRejected`."""
        if self.full:
            raise AdmissionRejected(
                f"admission queue full ({self.capacity} jobs queued); "
                f"retry later",
                retry_after=self.retry_after(),
            )
        self._queue.append(record)

    def drain(self, limit: int) -> list[JobRecord]:
        """Remove and return up to *limit* records, FIFO order."""
        batch: list[JobRecord] = []
        while self._queue and len(batch) < limit:
            batch.append(self._queue.popleft())
        return batch

    def drain_all(self) -> list[JobRecord]:
        """Remove and return everything still queued (shutdown path)."""
        return self.drain(len(self._queue))

    def requeue(self, records: list[JobRecord]) -> None:
        """Put already-admitted records back at the head, FIFO preserved.

        Used by the scheduler after batch-level trouble. Deliberately
        ignores capacity: these records were admitted once, and dropping
        them now would turn a recovered fault into silent data loss (the
        queue may transiently exceed ``capacity`` until they drain).
        """
        for record in reversed(records):
            self._queue.appendleft(record)

    def observe_service_time(self, seconds: float) -> None:
        """Fold one completed job's service time into the EWMA.

        Instant completions (result-cache hits, coalesced duplicates)
        legitimately measure ~0s and must still pull the average down;
        they are clamped to :data:`MIN_SERVICE_TIME_SAMPLE` rather than
        dropped. Non-finite samples (a poisoned timer) are ignored.
        """
        if not math.isfinite(seconds):
            return
        seconds = max(seconds, MIN_SERVICE_TIME_SAMPLE)
        self._service_time = (
            SERVICE_TIME_ALPHA * seconds
            + (1.0 - SERVICE_TIME_ALPHA) * self._service_time
        )

    def __repr__(self) -> str:
        return (
            f"<AdmissionQueue {len(self._queue)}/{self.capacity} "
            f"ewma={self._service_time:.3f}s>"
        )
