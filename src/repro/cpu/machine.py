"""Machine = core + memory system; runs the three-decomposition protocol.

For one experiment configuration and one instruction trace, the machine
runs the identical trace three times — perfect memory, infinite-width
paths, full system — and produces the paper's (T_P, T_I, T) triple as an
:class:`~repro.core.decomposition.ExecutionDecomposition`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.decomposition import ExecutionDecomposition, decompose
from repro.cpu.branch import TwoLevelPredictor
from repro.cpu.configs import ExperimentConfig
from repro.cpu.inorder import CoreResult, InOrderCore
from repro.cpu.isa import InstructionTrace
from repro.cpu.itrace import instruction_trace_for_workload
from repro.cpu.ooo import OutOfOrderCore
from repro.mem.timing import MemoryMode, TimingMemory, TimingMemoryStats
from repro.obs import OBS
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload


@dataclass(frozen=True, slots=True)
class MachineResult:
    """One experiment's decomposition plus per-mode details."""

    decomposition: ExecutionDecomposition
    perfect: CoreResult
    infinite: CoreResult
    full: CoreResult
    full_memory_stats: TimingMemoryStats


class Machine:
    """One of the paper's experiments A-F, ready to run traces."""

    def __init__(
        self, config: ExperimentConfig, *, scale: float = DEFAULT_SCALE
    ) -> None:
        self.config = config
        self.scale = scale

    def _run_mode(self, trace: InstructionTrace, mode: MemoryMode) -> tuple[CoreResult, TimingMemoryStats]:
        memory = TimingMemory(self.config.timing_memory_params(self.scale), mode)
        predictor = TwoLevelPredictor(self.config.processor.branch_table_entries)
        processor = self.config.processor
        if processor.out_of_order:
            core = OutOfOrderCore(
                memory,
                predictor,
                ruu_size=processor.ruu_slots,
                lsq_size=processor.lsq_entries,
                issue_width=processor.issue_width,
                mem_ports=processor.mem_ports,
            )
        else:
            core = InOrderCore(
                memory,
                predictor,
                issue_width=processor.issue_width,
                mem_ports=processor.mem_ports,
            )
        if not OBS.enabled:
            return core.run(trace), memory.stats
        with OBS.span("machine.mode", mode=mode.value, config=self.config.name):
            start = time.perf_counter()
            result = core.run(trace)
            OBS.observe(f"machine.mode.{mode.value}", time.perf_counter() - start)
        OBS.emit(
            "machine.result",
            mode=mode.value,
            config=self.config.name,
            trace=trace.name,
            cycles=result.cycles,
            instructions=result.instructions,
        )
        return result, memory.stats

    def run(self, trace: InstructionTrace) -> MachineResult:
        """Run the three-simulation decomposition protocol on *trace*."""
        perfect, _ = self._run_mode(trace, MemoryMode.PERFECT)
        infinite, _ = self._run_mode(trace, MemoryMode.INFINITE)
        full, full_stats = self._run_mode(trace, MemoryMode.FULL)
        label = f"{trace.name}/{self.config.name}"
        return MachineResult(
            decomposition=decompose(
                perfect.cycles,
                infinite.cycles,
                full.cycles,
                instructions=len(trace),
                label=label,
            ),
            perfect=perfect,
            infinite=infinite,
            full=full,
            full_memory_stats=full_stats,
        )


def decompose_experiment(
    workload: SyntheticWorkload,
    config: ExperimentConfig,
    *,
    seed: int = 0,
    max_refs: int | None = None,
    scale: float | None = None,
) -> MachineResult:
    """Build the workload's instruction trace and run one experiment."""
    trace = instruction_trace_for_workload(
        workload, seed=seed, max_refs=max_refs
    )
    machine = Machine(config, scale=scale if scale is not None else workload.scale)
    return machine.run(trace)
