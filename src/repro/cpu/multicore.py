"""Single-chip multiprocessor timing: cores sharing one pin interface.

Section 2.2 of the paper: "The emergence of single-chip multiprocessors
would substantially increase the number of data loaded per cycle ... The
primary barrier to the implementation of single-chip multiprocessors will
not be transistor availability but off-chip memory bandwidth. If one
processor loses performance due to limited pin bandwidth, then multiple
processors on a chip will lose far more performance for the same reason."

:class:`ChipMultiprocessor` runs K copies of a workload (disjoint address
spaces — independent processes) on K out-of-order cores that each own an
L1 but share the L2, the L1/L2 bus, and the memory bus. Cores are stepped
round-robin one instruction at a time so their timestamp streams stay
roughly aligned, and the shared buses' earliest-free cursors provide the
cross-core queueing. The result reports per-core slowdown versus a core
running alone — the paper's "lose far more performance" made measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.branch import TwoLevelPredictor
from repro.cpu.configs import ExperimentConfig, experiment
from repro.cpu.isa import NO_REG, NUM_REGS, OP_LATENCY, InstructionTrace, OpClass
from repro.cpu.itrace import instruction_trace_for_workload
from repro.errors import ConfigurationError
from repro.mem.cache import Cache
from repro.mem.timing import MemoryMode, TimingMemory
from repro.obs import OBS
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload

#: Address-space separation between cores' copies of the workload.
CORE_ADDRESS_STRIDE = 1 << 32


class _SharedL2Memory(TimingMemory):
    """A TimingMemory whose L1 is per-core but L2/buses are shared.

    Implemented by giving each core its own functional L1 while routing
    every L1 miss through the shared instance's L2 state and buses. The
    shared instance's own L1 is unused.
    """

    def l1_for_core(self, core_index: int) -> Cache:
        key = f"_core_l1_{core_index}"
        if not hasattr(self, key):
            setattr(self, key, Cache(self.params.l1_config))
        return getattr(self, key)


@dataclass(frozen=True, slots=True)
class CoreOutcome:
    core: int
    cycles: int
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass(slots=True)
class CMPResult:
    """Scaling outcome for one core count."""

    cores: list[CoreOutcome]
    solo_cycles: int

    @property
    def core_count(self) -> int:
        return len(self.cores)

    @property
    def worst_cycles(self) -> int:
        return max(outcome.cycles for outcome in self.cores)

    @property
    def per_core_slowdown(self) -> float:
        """How much slower each core runs than it would alone."""
        return self.worst_cycles / self.solo_cycles

    @property
    def throughput_speedup(self) -> float:
        """Aggregate work rate relative to a single core: K cores finish
        K workloads in worst_cycles vs K * solo_cycles sequentially."""
        return self.core_count * self.solo_cycles / self.worst_cycles


class ChipMultiprocessor:
    """K out-of-order cores over one shared memory system."""

    def __init__(
        self,
        config: ExperimentConfig,
        core_count: int,
        *,
        scale: float = DEFAULT_SCALE,
    ) -> None:
        if core_count <= 0:
            raise ConfigurationError("need at least one core")
        self.config = config
        self.core_count = core_count
        self.scale = scale

    def run(self, trace: InstructionTrace) -> CMPResult:
        solo = self._run_cores(trace, 1)[0]
        outcomes = self._run_cores(trace, self.core_count)
        return CMPResult(cores=outcomes, solo_cycles=solo.cycles)

    # -- internals -------------------------------------------------------------------

    def _run_cores(
        self, trace: InstructionTrace, core_count: int
    ) -> list[CoreOutcome]:
        """Round-robin timestamp simulation of *core_count* cores."""
        config = self.config
        params = config.timing_memory_params(self.scale)
        shared = _SharedL2Memory(params, MemoryMode.FULL)
        processor = config.processor

        opclasses = trace.opclass.tolist()
        dests = trace.dest.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addresses = trace.address.tolist()
        takens = trace.taken.tolist()
        pcs = trace.pc.tolist()
        n = len(opclasses)

        load_op = int(OpClass.LOAD)
        store_op = int(OpClass.STORE)
        branch_op = int(OpClass.BRANCH)
        width = processor.issue_width
        ruu = processor.ruu_slots

        # Per-core scheduling state (simplified in-order-ish OoO: issue
        # limited by deps, window pacing via the retire recurrence).
        state = []
        for core in range(core_count):
            state.append(
                {
                    "reg": [0] * NUM_REGS,
                    "retire": [0] * n,
                    "fetch_avail": 0,
                    "fetch_cycle": 0,
                    "fetched": 0,
                    "predictor": TwoLevelPredictor(
                        processor.branch_table_entries
                    ),
                    "l1": shared.l1_for_core(core),
                    "offset": core * CORE_ADDRESS_STRIDE,
                    "last": 0,
                }
            )

        def mem_access(core_state, time, address, is_write):
            """Per-core L1 probe, shared L2/buses below."""
            l1: Cache = core_state["l1"]
            shared.stats.accesses += 1
            block = address // params.l1_config.block_bytes
            if l1.contains(address):
                l1.access(address, is_write)
                return time + params.l1_hit_cycles
            shared.stats.l1_misses += 1
            shared._now = time
            start = shared._allocate_mshr(time)
            fill_time, release = shared._fetch_into_l1(start, address)
            shared._register_mshr(block + core_state["offset"], fill_time, release)
            l1.access(address, is_write)
            if is_write:
                return time + params.l1_hit_cycles
            return max(time + params.l1_hit_cycles, fill_time)

        for index in range(n):
            for core_state in state:
                if core_state["fetch_cycle"] < core_state["fetch_avail"]:
                    core_state["fetch_cycle"] = core_state["fetch_avail"]
                    core_state["fetched"] = 0
                if core_state["fetched"] >= width:
                    core_state["fetch_cycle"] += 1
                    core_state["fetched"] = 0
                fetch_time = core_state["fetch_cycle"]
                core_state["fetched"] += 1

                dispatch = fetch_time
                if index >= ruu:
                    window_free = core_state["retire"][index - ruu]
                    if window_free > dispatch:
                        dispatch = window_free

                ready = dispatch
                reg = core_state["reg"]
                source = src1s[index]
                if source != NO_REG and reg[source] > ready:
                    ready = reg[source]
                source = src2s[index]
                if source != NO_REG and reg[source] > ready:
                    ready = reg[source]

                op = opclasses[index]
                if op == load_op or op == store_op:
                    completion = mem_access(
                        core_state,
                        ready,
                        addresses[index] + core_state["offset"],
                        op == store_op,
                    )
                elif op == branch_op:
                    completion = ready + 1
                else:
                    completion = ready + OP_LATENCY[OpClass(op)]

                dest = dests[index]
                if dest != NO_REG:
                    reg[dest] = completion

                retire = completion
                retires = core_state["retire"]
                if index and retires[index - 1] > retire:
                    retire = retires[index - 1]
                if index >= width:
                    paced = retires[index - width] + 1
                    if paced > retire:
                        retire = paced
                retires[index] = retire
                if retire > core_state["last"]:
                    core_state["last"] = retire

                if op == branch_op:
                    if not core_state["predictor"].update(
                        pcs[index], takens[index]
                    ):
                        redirect = completion + 3
                        if redirect > core_state["fetch_avail"]:
                            core_state["fetch_avail"] = redirect

        outcomes = [
            CoreOutcome(
                core=core,
                cycles=max(1, core_state["last"]),
                instructions=n,
            )
            for core, core_state in enumerate(state)
        ]
        if OBS.enabled:
            OBS.count("cmp.runs")
            OBS.count("cmp.core_instructions", n * core_count)
            for outcome in outcomes:
                OBS.emit(
                    "cmp.core",
                    cores=core_count,
                    core=outcome.core,
                    cycles=outcome.cycles,
                    instructions=outcome.instructions,
                )
        return outcomes


def cmp_scaling(
    workload: SyntheticWorkload,
    *,
    core_counts: tuple[int, ...] = (1, 2, 4),
    experiment_name: str = "F",
    max_refs: int | None = 6_000,
    seed: int = 0,
) -> list[CMPResult]:
    """Per-core slowdown and throughput for growing core counts."""
    trace = instruction_trace_for_workload(
        workload, seed=seed, max_refs=max_refs
    )
    config = experiment(experiment_name, workload.suite)
    results = []
    for count in core_counts:
        cmp_machine = ChipMultiprocessor(
            config, count, scale=workload.scale
        )
        results.append(cmp_machine.run(trace))
    return results
