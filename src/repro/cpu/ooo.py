"""RUU-based out-of-order timing core with speculative loads (D-F).

Models the Register Update Unit organisation [41]: a unified window of
``ruu_size`` instructions, four-wide fetch and retirement, out-of-order
issue as operands become ready, a load/store queue bounding in-flight
memory operations, and speculative execution past predicted branches
(loads issue before earlier branches resolve). A misprediction redirects
fetch at branch resolution plus a fixed penalty.

The model is timestamp-based: each instruction's dispatch, issue, and
completion cycles are computed in program order (greedy schedule), with
per-cycle issue-slot and memory-port occupancy enforced through compact
occupancy maps. Retirement uses the recurrence
``retire[i] = max(complete[i], retire[i-1], retire[i-width] + 1)``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cpu.branch import TwoLevelPredictor
from repro.cpu.inorder import MISPREDICT_PENALTY, CoreResult
from repro.cpu.isa import NO_REG, NUM_REGS, OP_LATENCY, InstructionTrace, OpClass
from repro.errors import ConfigurationError
from repro.mem.timing import TimingMemory
from repro.obs import OBS


class OutOfOrderCore:
    """Timestamp-based RUU out-of-order model."""

    def __init__(
        self,
        memory: TimingMemory,
        predictor: TwoLevelPredictor,
        *,
        ruu_size: int = 16,
        lsq_size: int = 8,
        issue_width: int = 4,
        mem_ports: int = 2,
        fetch_width: int = 4,
        wrong_path_loads: int = 2,
    ) -> None:
        if min(ruu_size, lsq_size, issue_width, mem_ports, fetch_width) <= 0:
            raise ConfigurationError("all core dimensions must be positive")
        if wrong_path_loads < 0:
            raise ConfigurationError("wrong_path_loads cannot be negative")
        self.memory = memory
        self.predictor = predictor
        self.ruu_size = ruu_size
        self.lsq_size = lsq_size
        self.issue_width = issue_width
        self.mem_ports = mem_ports
        self.fetch_width = fetch_width
        #: Speculative loads issued down the wrong path per misprediction
        #: before the redirect: they return no useful data but move blocks
        #: and occupy buses/MSHRs — Table 1's "speculative loads increase
        #: memory traffic whenever the speculation is incorrect".
        self.wrong_path_loads = wrong_path_loads

    def run(self, trace: InstructionTrace) -> CoreResult:
        memory = self.memory
        predictor = self.predictor
        ruu_size = self.ruu_size
        lsq_size = self.lsq_size
        issue_width = self.issue_width
        mem_ports = self.mem_ports
        fetch_width = self.fetch_width

        opclasses = trace.opclass.tolist()
        dests = trace.dest.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addresses = trace.address.tolist()
        takens = trace.taken.tolist()
        pcs = trace.pc.tolist()
        n = len(opclasses)

        reg_ready = [0] * NUM_REGS
        retire_times: list[int] = [0] * n
        mem_retire_times: list[int] = []  # retire time of each memory op

        issue_slots: dict[int, int] = defaultdict(int)
        mem_slots: dict[int, int] = defaultdict(int)

        fetch_available = 0
        fetch_cycle = 0
        fetched_this_cycle = 0
        last_completion = 0
        mispredictions = 0
        branches = 0
        mem_op_count = 0
        last_address = 0
        slot_wait_cycles = 0

        load_op = int(OpClass.LOAD)
        store_op = int(OpClass.STORE)
        branch_op = int(OpClass.BRANCH)

        for index in range(n):
            # ---- fetch: width-limited, redirected on mispredicts ----
            if fetch_cycle < fetch_available:
                fetch_cycle = fetch_available
                fetched_this_cycle = 0
            if fetched_this_cycle >= fetch_width:
                fetch_cycle += 1
                fetched_this_cycle = 0
            fetch_time = fetch_cycle
            fetched_this_cycle += 1

            # ---- dispatch: wait for an RUU slot (i-ruu_size retired) ----
            dispatch = fetch_time
            if index >= ruu_size:
                window_free = retire_times[index - ruu_size]
                if window_free > dispatch:
                    dispatch = window_free

            op = opclasses[index]
            is_mem = op == load_op or op == store_op
            if is_mem and mem_op_count >= lsq_size:
                lsq_free = mem_retire_times[mem_op_count - lsq_size]
                if lsq_free > dispatch:
                    dispatch = lsq_free

            # ---- issue: operands + slot availability ----
            ready = dispatch
            source = src1s[index]
            if source != NO_REG and reg_ready[source] > ready:
                ready = reg_ready[source]
            source = src2s[index]
            if source != NO_REG and reg_ready[source] > ready:
                ready = reg_ready[source]

            issue = ready
            while issue_slots[issue] >= issue_width or (
                is_mem and mem_slots[issue] >= mem_ports
            ):
                issue += 1
            slot_wait_cycles += issue - ready
            issue_slots[issue] += 1
            if is_mem:
                mem_slots[issue] += 1

            # ---- execute ----
            if is_mem:
                completion = memory.access(issue, addresses[index], op == store_op)
                last_address = addresses[index]
            elif op == branch_op:
                completion = issue + 1
            else:
                completion = issue + OP_LATENCY[OpClass(op)]

            dest = dests[index]
            if dest != NO_REG:
                reg_ready[dest] = completion

            # ---- retire: in order, width-limited ----
            retire = completion
            if index and retire_times[index - 1] > retire:
                retire = retire_times[index - 1]
            if index >= fetch_width:
                paced = retire_times[index - fetch_width] + 1
                if paced > retire:
                    retire = paced
            retire_times[index] = retire
            if is_mem:
                mem_retire_times.append(retire)
                mem_op_count += 1
            if retire > last_completion:
                last_completion = retire

            # ---- branches: speculate past predictions, redirect on miss ----
            if op == branch_op:
                branches += 1
                if not predictor.update(pcs[index], takens[index]):
                    mispredictions += 1
                    redirect = completion + MISPREDICT_PENALTY
                    if redirect > fetch_available:
                        fetch_available = redirect
                    # Wrong-path loads issued before the branch resolved:
                    # fabricate plausible nearby addresses (the wrong path
                    # usually touches the same structures).
                    if self.wrong_path_loads and last_address:
                        for k in range(1, self.wrong_path_loads + 1):
                            memory.access(
                                issue, last_address + 64 * k, False
                            )

            # Keep the occupancy maps bounded: drop cycles already passed
            # by the in-order retire frontier (nothing issues before it
            # minus the window span again).
            if len(issue_slots) > 65536:
                horizon = retire_times[max(0, index - ruu_size)] - 1
                for table in (issue_slots, mem_slots):
                    stale = [c for c in table if c < horizon]
                    for c in stale:
                        del table[c]

        result = CoreResult(
            cycles=max(1, last_completion),
            instructions=n,
            branch_mispredictions=mispredictions,
            branches=branches,
        )
        if OBS.enabled:
            OBS.count("core.runs")
            OBS.count("core.instructions", n)
            OBS.count("core.cycles", result.cycles)
            OBS.count("core.branches", branches)
            OBS.count("core.mispredictions", mispredictions)
            OBS.count("core.issue_slot_wait_cycles", slot_wait_cycles)
            OBS.emit(
                "core.run",
                core="ooo",
                cycles=result.cycles,
                instructions=n,
                mispredictions=mispredictions,
                issue_slot_wait_cycles=slot_wait_cycles,
            )
        return result
