"""Processor substrate: trace-driven timing models.

Stands in for the SimpleScalar-based simulators of the paper's Section 3:
a four-wide in-order superscalar core and an RUU-based out-of-order core
with speculative loads, both driving a multi-level memory system with
finite buses, MSHRs, and optional tagged prefetching. The three simulation
modes (perfect memory / infinite-width buses / full system) produce the
``T_P``/``T_I``/``T`` cycle counts of the execution-time decomposition.
"""

from repro.cpu.configs import (
    EXPERIMENTS,
    ExperimentConfig,
    MemoryParams,
    ProcessorParams,
    experiment,
)
from repro.cpu.isa import InstructionTrace, OpClass
from repro.cpu.itrace import WorkloadProfile, build_instruction_trace
from repro.cpu.machine import Machine, MachineResult, decompose_experiment
from repro.cpu.multicore import ChipMultiprocessor, CMPResult, cmp_scaling

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "MemoryParams",
    "ProcessorParams",
    "experiment",
    "InstructionTrace",
    "OpClass",
    "WorkloadProfile",
    "build_instruction_trace",
    "Machine",
    "MachineResult",
    "decompose_experiment",
    "ChipMultiprocessor",
    "CMPResult",
    "cmp_scaling",
]
