"""Mini MIPS-like instruction representation for the timing models.

Instructions are stored as parallel numpy arrays (structure-of-arrays):
the timing cores walk hundreds of thousands of them per run, so per-
instruction objects would dominate runtime. :class:`InstructionTrace`
wraps the arrays with validation and convenient views.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


class OpClass(enum.IntEnum):
    """Functional classes with distinct latencies/ports."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    FP_DIV = 4
    LOAD = 5
    STORE = 6
    BRANCH = 7


#: Execution latency in cycles for non-memory classes (memory latency is
#: supplied by the memory model). Typical early-90s pipeline values.
OP_LATENCY: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.FP_ALU: 2,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 12,
    OpClass.LOAD: 1,    # address generation; cache time added by the core
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}

#: Register file size used by the synthetic dependency weaver.
NUM_REGS = 64

#: Source-operand sentinel for "no dependency".
NO_REG = -1


@dataclass(slots=True)
class InstructionTrace:
    """A structure-of-arrays instruction stream.

    Attributes
    ----------
    opclass:
        int8 array of :class:`OpClass` values.
    dest, src1, src2:
        int16 register numbers; ``NO_REG`` marks an absent operand.
        ``dest`` of stores and branches is ``NO_REG``.
    address:
        int64 byte address for loads/stores, 0 elsewhere.
    taken:
        bool array; meaningful for branches only.
    pc:
        int64 synthetic program counter per instruction (used by the
        branch predictor's history tables).
    """

    opclass: np.ndarray
    dest: np.ndarray
    src1: np.ndarray
    src2: np.ndarray
    address: np.ndarray
    taken: np.ndarray
    pc: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        n = self.opclass.size
        for field_name in ("dest", "src1", "src2", "address", "taken", "pc"):
            array = getattr(self, field_name)
            if array.size != n:
                raise TraceError(
                    f"instruction trace field {field_name} has length "
                    f"{array.size}, expected {n}"
                )

    def __len__(self) -> int:
        return int(self.opclass.size)

    @property
    def is_mem(self) -> np.ndarray:
        return (self.opclass == OpClass.LOAD) | (self.opclass == OpClass.STORE)

    @property
    def is_load(self) -> np.ndarray:
        return self.opclass == OpClass.LOAD

    @property
    def is_store(self) -> np.ndarray:
        return self.opclass == OpClass.STORE

    @property
    def is_branch(self) -> np.ndarray:
        return self.opclass == OpClass.BRANCH

    @property
    def memory_reference_count(self) -> int:
        return int(self.is_mem.sum())

    def head(self, count: int) -> "InstructionTrace":
        """First *count* instructions (bounds timing-test runtime)."""
        if count <= 0:
            raise TraceError(f"count must be positive, got {count}")
        return InstructionTrace(
            opclass=self.opclass[:count],
            dest=self.dest[:count],
            src1=self.src1[:count],
            src2=self.src2[:count],
            address=self.address[:count],
            taken=self.taken[:count],
            pc=self.pc[:count],
            name=self.name,
        )

    def __repr__(self) -> str:
        mem = self.memory_reference_count
        return (
            f"<InstructionTrace {self.name!r} len={len(self)} "
            f"mem={mem} ({mem / max(1, len(self)):.0%})>"
        )
