"""Instruction-trace synthesis: weave memory traces into full programs.

The paper's Section 3 experiments run SPEC binaries on SimpleScalar; this
module is the analogous front end for the synthetic workloads. It takes a
workload's memory trace and weaves it into a full instruction stream
according to a per-benchmark :class:`WorkloadProfile`: compute operations
per memory reference, floating-point mix, dependency distance (the ILP
knob), and branch structure (loop-like predictable branches vs data-
dependent hard ones).

The resulting :class:`~repro.cpu.isa.InstructionTrace` drives both timing
cores; its memory references are exactly the workload's, so the timing and
traffic experiments see consistent behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.isa import NO_REG, NUM_REGS, InstructionTrace, OpClass
from repro.errors import WorkloadError
from repro.trace.model import MemTrace
from repro.workloads.base import SyntheticWorkload


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Per-benchmark instruction-mix parameters.

    ops_per_ref:
        Average compute instructions per memory reference (SPEC-era codes
        run 30-40% loads/stores, i.e. ~1.5-2.5 compute ops per reference).
    fp_fraction:
        Fraction of compute ops that are floating point.
    dependency_window:
        Compute sources are drawn from the last N destinations: small N
        gives serial chains (low ILP), large N independent work (high ILP).
    branch_every:
        One branch per this many instructions.
    loop_branch_fraction:
        Fraction of branches that are loop back-edges (highly predictable);
        the rest are data-dependent with ``data_taken_prob``.
    data_taken_prob:
        Taken probability of data-dependent branches (0.5 = unpredictable).
    """

    ops_per_ref: float = 1.8
    fp_fraction: float = 0.1
    dependency_window: int = 8
    branch_every: int = 7
    loop_branch_fraction: float = 0.75
    data_taken_prob: float = 0.5

    def __post_init__(self) -> None:
        if self.ops_per_ref < 0:
            raise WorkloadError("ops_per_ref must be non-negative")
        if not 0 <= self.fp_fraction <= 1:
            raise WorkloadError("fp_fraction must be in [0, 1]")
        if self.dependency_window < 1:
            raise WorkloadError("dependency_window must be at least 1")
        if self.branch_every < 2:
            raise WorkloadError("branch_every must be at least 2")
        if not 0 <= self.loop_branch_fraction <= 1:
            raise WorkloadError("loop_branch_fraction must be in [0, 1]")
        if not 0 <= self.data_taken_prob <= 1:
            raise WorkloadError("data_taken_prob must be in [0, 1]")


#: Instruction-mix profiles for every benchmark the paper simulates.
#: FP codes: high fp mix, wide dependency windows (vectorizable loops).
#: Integer codes: serial chains, more data-dependent branches.
PROFILES: dict[str, WorkloadProfile] = {
    "Compress": WorkloadProfile(1.6, 0.0, 4, 6, 0.45, 0.5),
    "Dnasa2": WorkloadProfile(1.9, 0.75, 24, 9, 0.95, 0.5),
    "Eqntott": WorkloadProfile(1.5, 0.0, 6, 5, 0.6, 0.45),
    "Espresso": WorkloadProfile(1.7, 0.0, 5, 5, 0.6, 0.4),
    "Su2cor": WorkloadProfile(2.0, 0.7, 20, 9, 0.9, 0.5),
    "Swm": WorkloadProfile(2.1, 0.8, 28, 10, 0.95, 0.5),
    "Tomcatv": WorkloadProfile(2.0, 0.8, 24, 10, 0.95, 0.5),
    "Applu": WorkloadProfile(2.2, 0.8, 28, 10, 0.95, 0.5),
    "Hydro2D": WorkloadProfile(2.0, 0.75, 24, 9, 0.9, 0.5),
    "Li": WorkloadProfile(1.4, 0.0, 3, 5, 0.5, 0.45),
    "Perl": WorkloadProfile(1.5, 0.0, 4, 5, 0.5, 0.45),
    "Su2cor95": WorkloadProfile(2.0, 0.7, 20, 9, 0.9, 0.5),
    "Swim95": WorkloadProfile(2.1, 0.8, 28, 10, 0.95, 0.5),
    "Vortex": WorkloadProfile(1.6, 0.0, 4, 6, 0.55, 0.45),
}


def profile_for(name: str) -> WorkloadProfile:
    """Profile for a benchmark; unknown names get the default profile."""
    return PROFILES.get(name, WorkloadProfile())


def build_instruction_trace(
    memtrace: MemTrace,
    profile: WorkloadProfile | None = None,
    *,
    seed: int = 0,
    name: str = "",
) -> InstructionTrace:
    """Weave *memtrace* into a full instruction stream.

    The memory references appear in order; around each one the builder
    inserts compute instructions per the profile, and every
    ``branch_every`` instructions a branch. Dependencies are wired so a
    load's value feeds nearby compute ops and compute results feed stores.
    """
    if profile is None:
        profile = profile_for(memtrace.name)
    if not len(memtrace):
        raise WorkloadError("cannot build instructions from an empty trace")
    rng = np.random.default_rng(seed)

    n_refs = len(memtrace)
    # Integer compute count per reference, dithered to hit the average.
    ops_float = np.full(n_refs, profile.ops_per_ref)
    ops_count = np.floor(
        ops_float + rng.random(n_refs)
    ).astype(np.int64)

    group_sizes = 1 + ops_count
    total_core = int(group_sizes.sum())
    # One branch per branch_every core instructions, appended after groups.
    branch_count = total_core // profile.branch_every
    total = total_core + branch_count

    opclass = np.empty(total, dtype=np.int8)
    dest = np.full(total, NO_REG, dtype=np.int16)
    src1 = np.full(total, NO_REG, dtype=np.int16)
    src2 = np.full(total, NO_REG, dtype=np.int16)
    address = np.zeros(total, dtype=np.int64)
    taken = np.zeros(total, dtype=bool)
    pc = np.zeros(total, dtype=np.int64)

    # ---- lay out groups and branches ------------------------------------------
    group_starts = np.concatenate(([0], np.cumsum(group_sizes)[:-1]))
    # Each group is shifted right by the number of branches inserted before
    # it: branch b sits after core position (b+1)*branch_every.
    branch_core_positions = (
        np.arange(1, branch_count + 1) * profile.branch_every
    )
    shifts = np.searchsorted(branch_core_positions, group_starts, side="right")
    mem_positions = group_starts + shifts
    branch_positions = branch_core_positions + np.arange(branch_count)

    # memory ops
    is_store = memtrace.is_write
    opclass[mem_positions] = np.where(is_store, OpClass.STORE, OpClass.LOAD)
    address[mem_positions] = memtrace.addresses

    # branches
    opclass[branch_positions] = OpClass.BRANCH
    loop_mask = rng.random(branch_count) < profile.loop_branch_fraction
    # Loop back-edges: a handful of sites, taken except at loop exit.
    loop_pcs = 0x1000 + (rng.integers(0, 8, size=branch_count) << 4)
    data_pcs = 0x8000 + (rng.integers(0, 16, size=branch_count) << 4)
    pc[branch_positions] = np.where(loop_mask, loop_pcs, data_pcs)
    loop_taken = rng.random(branch_count) < 0.92
    data_taken = rng.random(branch_count) < profile.data_taken_prob
    taken[branch_positions] = np.where(loop_mask, loop_taken, data_taken)

    # compute ops fill the remaining slots
    filled = np.zeros(total, dtype=bool)
    filled[mem_positions] = True
    filled[branch_positions] = True
    compute_positions = np.flatnonzero(~filled)
    n_compute = compute_positions.size
    fp_mask = rng.random(n_compute) < profile.fp_fraction
    fp_kind = rng.random(n_compute)
    fp_ops = np.where(
        fp_kind < 0.62,
        OpClass.FP_ALU,
        np.where(fp_kind < 0.94, OpClass.FP_MUL, OpClass.FP_DIV),
    )
    int_ops = np.where(rng.random(n_compute) < 0.92, OpClass.INT_ALU, OpClass.INT_MUL)
    opclass[compute_positions] = np.where(fp_mask, fp_ops, int_ops)

    # ---- register wiring -------------------------------------------------------
    # Destinations rotate through the register file; loads and computes
    # produce values, stores and branches do not.
    produces = (opclass != OpClass.STORE) & (opclass != OpClass.BRANCH)
    producer_positions = np.flatnonzero(produces)
    dest[producer_positions] = (
        np.arange(producer_positions.size) % NUM_REGS
    ).astype(np.int16)

    # Sources: each consumer reads the destination of a producer between 1
    # and dependency_window producers back — the ILP knob. Vectorized via
    # producer ordinals.
    producer_ordinal = np.cumsum(produces) - 1  # ordinal of producer at/before i
    consumer_positions = np.flatnonzero(opclass != OpClass.BRANCH)
    gaps1 = rng.integers(1, profile.dependency_window + 1, size=consumer_positions.size)
    gaps2 = rng.integers(1, profile.dependency_window + 1, size=consumer_positions.size)
    back1 = producer_ordinal[consumer_positions] - gaps1
    back2 = producer_ordinal[consumer_positions] - gaps2
    src1[consumer_positions] = np.where(back1 >= 0, back1 % NUM_REGS, NO_REG)
    # Loads take a single (address) source; give computes and stores two.
    two_source = (opclass[consumer_positions] != OpClass.LOAD)
    src2[consumer_positions] = np.where(
        two_source & (back2 >= 0), back2 % NUM_REGS, NO_REG
    )

    return InstructionTrace(
        opclass=opclass,
        dest=dest,
        src1=src1,
        src2=src2,
        address=address,
        taken=taken,
        pc=pc,
        name=name or memtrace.name,
    )


def instruction_trace_for_workload(
    workload: SyntheticWorkload,
    *,
    seed: int = 0,
    max_refs: int | None = None,
) -> InstructionTrace:
    """Generate the workload's memory trace and weave instructions."""
    memtrace = workload.generate(seed=seed, max_refs=max_refs)
    return build_instruction_trace(
        memtrace, profile_for(workload.name), seed=seed, name=workload.name
    )
