"""Four-wide in-order superscalar timing core (experiments A-C).

A scoreboarded in-order pipeline: up to four instructions issue per cycle,
two of them memory operations (the paper's two load/store units);
instructions stall at issue on unavailable sources (stall-at-use for load
values) and never pass one another. Branches resolve one cycle after
issue; a misprediction squashes fetch until resolution plus a fixed
redirect penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.branch import TwoLevelPredictor
from repro.cpu.isa import NO_REG, NUM_REGS, OP_LATENCY, InstructionTrace, OpClass
from repro.errors import ConfigurationError
from repro.mem.timing import TimingMemory
from repro.obs import OBS

#: Cycles from branch resolution to useful fetch after a misprediction.
MISPREDICT_PENALTY = 3


@dataclass(frozen=True, slots=True)
class CoreResult:
    """Outcome of one timing run."""

    cycles: int
    instructions: int
    branch_mispredictions: int
    branches: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class InOrderCore:
    """Timestamp-based in-order superscalar model."""

    def __init__(
        self,
        memory: TimingMemory,
        predictor: TwoLevelPredictor,
        *,
        issue_width: int = 4,
        mem_ports: int = 2,
    ) -> None:
        if issue_width <= 0 or mem_ports <= 0:
            raise ConfigurationError("issue width and memory ports must be positive")
        self.memory = memory
        self.predictor = predictor
        self.issue_width = issue_width
        self.mem_ports = mem_ports

    def run(self, trace: InstructionTrace) -> CoreResult:
        memory = self.memory
        predictor = self.predictor
        issue_width = self.issue_width
        mem_ports = self.mem_ports

        opclasses = trace.opclass.tolist()
        dests = trace.dest.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addresses = trace.address.tolist()
        takens = trace.taken.tolist()
        pcs = trace.pc.tolist()

        reg_ready = [0] * NUM_REGS
        fetch_available = 0     # earliest fetch cycle for the next instr
        cycle = 0               # current issue cycle
        slots_used = 0
        mem_slots_used = 0
        last_completion = 0
        mispredictions = 0
        branches = 0
        operand_stall_cycles = 0

        load_op = int(OpClass.LOAD)
        store_op = int(OpClass.STORE)
        branch_op = int(OpClass.BRANCH)

        for index in range(len(opclasses)):
            op = opclasses[index]
            earliest = fetch_available
            source = src1s[index]
            if source != NO_REG and reg_ready[source] > earliest:
                earliest = reg_ready[source]
            source = src2s[index]
            if source != NO_REG and reg_ready[source] > earliest:
                earliest = reg_ready[source]

            # In-order issue: never before the current issue cycle.
            if earliest > cycle:
                operand_stall_cycles += earliest - cycle
                cycle = earliest
                slots_used = 0
                mem_slots_used = 0
            is_mem = op == load_op or op == store_op
            while (
                slots_used >= issue_width
                or (is_mem and mem_slots_used >= mem_ports)
            ):
                cycle += 1
                slots_used = 0
                mem_slots_used = 0
            issue = cycle
            slots_used += 1
            if is_mem:
                mem_slots_used += 1

            # Completion time.
            if is_mem:
                completion = memory.access(issue, addresses[index], op == store_op)
            elif op == branch_op:
                completion = issue + 1
            else:
                completion = issue + OP_LATENCY[OpClass(op)]

            dest = dests[index]
            if dest != NO_REG:
                reg_ready[dest] = completion
            if completion > last_completion:
                last_completion = completion

            if op == branch_op:
                branches += 1
                if not predictor.update(pcs[index], takens[index]):
                    mispredictions += 1
                    fetch_available = completion + MISPREDICT_PENALTY
                    cycle = max(cycle, fetch_available)
                    slots_used = 0
                    mem_slots_used = 0

        result = CoreResult(
            cycles=max(1, last_completion),
            instructions=len(opclasses),
            branch_mispredictions=mispredictions,
            branches=branches,
        )
        if OBS.enabled:
            OBS.count("core.runs")
            OBS.count("core.instructions", result.instructions)
            OBS.count("core.cycles", result.cycles)
            OBS.count("core.branches", branches)
            OBS.count("core.mispredictions", mispredictions)
            OBS.count("core.operand_stall_cycles", operand_stall_cycles)
            OBS.emit(
                "core.run",
                core="inorder",
                cycles=result.cycles,
                instructions=result.instructions,
                mispredictions=mispredictions,
                operand_stall_cycles=operand_stall_cycles,
            )
        return result
