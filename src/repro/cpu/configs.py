"""Experiment configurations: the paper's Tables 4 and 5.

Six experiments A-F per suite. A-C use the in-order core (A blocking
caches, B larger blocks, C lockup-free); D-F use the RUU out-of-order core
(E adds tagged prefetch, F widens the window/LSQ, doubles the predictor,
and raises the clock). Memory parameters follow Table 4, with cache sizes
scaled by the same footprint scale as the workloads (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.cache import CacheConfig
from repro.mem.timing import BusSpec, TimingMemoryParams
from repro.workloads.base import DEFAULT_SCALE

EXPERIMENT_NAMES = ("A", "B", "C", "D", "E", "F")


@dataclass(frozen=True, slots=True)
class ProcessorParams:
    """Table 5 processor-side parameters for one experiment/suite."""

    out_of_order: bool
    clock_mhz: int
    ruu_slots: int
    lsq_entries: int
    branch_table_entries: int
    issue_width: int = 4
    mem_ports: int = 2


@dataclass(frozen=True, slots=True)
class MemoryParams:
    """Table 4/5 memory-side parameters for one experiment/suite."""

    l1_bytes: int
    l2_bytes: int
    l1_block: int
    l2_block: int
    l2_assoc: int
    bus_ratio: int          #: bus/proc clock denominator (3 or 4)
    lockup_free: bool
    tagged_prefetch: bool
    l2_ns: float = 30.0
    memory_ns: float = 90.0
    mshr_count_lockup_free: int = 8


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """One column of Table 5, for one suite."""

    name: str
    suite: str
    processor: ProcessorParams
    memory: MemoryParams

    def timing_memory_params(self, scale: float = DEFAULT_SCALE) -> TimingMemoryParams:
        """Concrete memory parameters at the given footprint scale."""
        mem = self.memory
        clock = self.processor.clock_mhz
        cycles_per_ns = clock / 1000.0
        l1 = CacheConfig(
            size_bytes=max(4 * mem.l1_block, int(mem.l1_bytes * scale)),
            block_bytes=mem.l1_block,
            associativity=1,
            name="L1",
        )
        l2_size = max(8 * mem.l2_block, int(mem.l2_bytes * scale))
        l2 = CacheConfig(
            size_bytes=l2_size,
            block_bytes=mem.l2_block,
            associativity=mem.l2_assoc,
            name="L2",
        )
        return TimingMemoryParams(
            l1_config=l1,
            l2_config=l2,
            # "Multiplexed data/address lines are used only on the main
            # memory bus" (Section 3.1): the L1/L2 bus pays no address
            # beat, the memory bus pays one.
            l1_l2_bus=BusSpec(
                width_bytes=16,
                proc_cycles_per_beat=mem.bus_ratio,
                overhead_beats=0,
            ),
            l2_mem_bus=BusSpec(
                width_bytes=8,
                proc_cycles_per_beat=mem.bus_ratio,
                overhead_beats=1,
            ),
            l1_hit_cycles=1,
            l2_access_cycles=max(1, round(mem.l2_ns * cycles_per_ns)),
            memory_access_cycles=max(1, round(mem.memory_ns * cycles_per_ns)),
            mshr_count=mem.mshr_count_lockup_free if mem.lockup_free else 1,
            tagged_prefetch=mem.tagged_prefetch,
        )


def _spec92_memory(**overrides) -> MemoryParams:
    base = dict(
        l1_bytes=128 * 1024,
        l2_bytes=1024 * 1024,
        l1_block=32,
        l2_block=64,
        l2_assoc=4,
        bus_ratio=3,
        lockup_free=False,
        tagged_prefetch=False,
    )
    base.update(overrides)
    return MemoryParams(**base)


def _spec95_memory(**overrides) -> MemoryParams:
    base = dict(
        l1_bytes=64 * 1024,   # split 64K I / 64K D; data side modelled
        l2_bytes=2 * 1024 * 1024,
        l1_block=32,
        l2_block=64,
        l2_assoc=4,
        bus_ratio=4,
        lockup_free=False,
        tagged_prefetch=False,
    )
    base.update(overrides)
    return MemoryParams(**base)


def _build_experiments() -> dict[tuple[str, str], ExperimentConfig]:
    table: dict[tuple[str, str], ExperimentConfig] = {}
    for suite, mem_factory, base_clock, base_ruu, base_lsq in (
        ("SPEC92", _spec92_memory, 300, 16, 8),
        ("SPEC95", _spec95_memory, 400, 64, 32),
    ):
        in_order = ProcessorParams(
            out_of_order=False,
            clock_mhz=base_clock,
            ruu_slots=base_ruu,
            lsq_entries=base_lsq,
            branch_table_entries=8192,
        )
        out_of_order = ProcessorParams(
            out_of_order=True,
            clock_mhz=base_clock,
            ruu_slots=base_ruu,
            lsq_entries=base_lsq,
            branch_table_entries=8192,
        )
        aggressive = ProcessorParams(
            out_of_order=True,
            clock_mhz=600 if suite == "SPEC95" else 300,
            ruu_slots=base_ruu * (2 if suite == "SPEC95" else 4),
            lsq_entries=base_lsq * (2 if suite == "SPEC95" else 4),
            branch_table_entries=16384,
        )
        table[("A", suite)] = ExperimentConfig("A", suite, in_order, mem_factory())
        table[("B", suite)] = ExperimentConfig(
            "B", suite, in_order, mem_factory(l1_block=64, l2_block=128)
        )
        table[("C", suite)] = ExperimentConfig(
            "C", suite, in_order, mem_factory(lockup_free=True)
        )
        table[("D", suite)] = ExperimentConfig(
            "D", suite, out_of_order, mem_factory(lockup_free=True)
        )
        table[("E", suite)] = ExperimentConfig(
            "E",
            suite,
            out_of_order,
            mem_factory(lockup_free=True, tagged_prefetch=True),
        )
        table[("F", suite)] = ExperimentConfig(
            "F",
            suite,
            aggressive,
            mem_factory(lockup_free=True, tagged_prefetch=True),
        )
    return table


EXPERIMENTS: dict[tuple[str, str], ExperimentConfig] = _build_experiments()


def experiment(name: str, suite: str = "SPEC92") -> ExperimentConfig:
    """Look up one of the paper's experiments A-F for a suite."""
    key = (name.upper(), suite)
    if key not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}/{suite!r}; experiments are "
            f"{EXPERIMENT_NAMES} over SPEC92/SPEC95"
        )
    return EXPERIMENTS[key]
