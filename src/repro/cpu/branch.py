"""Two-level adaptive branch predictor (gshare variant).

The paper's processors use "a two-level branch predictor" with an 8K-entry
table (16K for experiment F). This is the classic global-history scheme:
the global branch history register is XOR-folded with the branch PC to
index a table of two-bit saturating counters [Yeh & Patt / McFarling].
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.util import log2_int, require_power_of_two


class TwoLevelPredictor:
    """Gshare: global history XOR PC indexing a 2-bit counter table."""

    def __init__(self, table_entries: int, history_bits: int | None = None) -> None:
        require_power_of_two(table_entries, "predictor table size")
        self.table_entries = table_entries
        self.index_bits = log2_int(table_entries)
        if history_bits is None:
            history_bits = self.index_bits
        if not 0 <= history_bits <= self.index_bits:
            raise ConfigurationError(
                f"history bits {history_bits} must be in [0, {self.index_bits}]"
            )
        self.history_bits = history_bits
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._index_mask = table_entries - 1
        # Two-bit counters initialised weakly taken, the common convention.
        self._counters = bytearray([2]) * 1
        self._counters = bytearray([2] * table_entries)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._index_mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc* (no state change)."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, then train on the actual outcome.

        Returns True when the prediction was correct.
        """
        index = self._index(pc)
        prediction = self._counters[index] >= 2
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return correct

    @property
    def misprediction_rate(self) -> float:
        return (
            self.mispredictions / self.predictions if self.predictions else 0.0
        )

    def reset(self) -> None:
        """Forget all history (used between the three decomposition runs)."""
        self._counters = bytearray([2] * self.table_entries)
        self._history = 0
        self.predictions = 0
        self.mispredictions = 0
