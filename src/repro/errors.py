"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulator or experiment was configured with invalid parameters.

    Examples: a cache whose size is not a multiple of its block size, a bus
    with zero width, or an experiment referencing an unknown workload.
    """


class TraceError(ReproError):
    """A memory or instruction trace is malformed or inconsistent."""


class SimulationError(ReproError):
    """A simulation reached an internally inconsistent state.

    This indicates a bug in the simulator (or deliberately injected fault in
    the failure-injection tests), never a user mistake.
    """


class WorkloadError(ReproError):
    """A synthetic workload was requested with unusable parameters."""


class ScenarioError(WorkloadError):
    """A scenario spec (:mod:`repro.scenario`) failed validation.

    Subclasses :class:`WorkloadError` because a scenario *is* a workload
    description: callers that already handle bad workload parameters
    (the CLI, the serve protocol) handle bad scenario specs the same way.
    """


class TaskError(ReproError):
    """A task failed on every attempt the retry policy allowed.

    Raised by the execution layer (:func:`repro.exec.run_tasks`) after the
    per-task retry budget — pool attempts plus the serial escalation — is
    exhausted. ``label`` names the task and ``attempts`` counts how many
    times it was tried; the final underlying exception is chained as
    ``__cause__``.
    """

    def __init__(self, message: str, *, label: str = "", attempts: int = 0):
        super().__init__(message)
        self.label = label
        self.attempts = attempts


class TaskTimeout(TaskError):
    """A task exceeded its per-attempt wall-clock budget on every attempt.

    Unlike other :class:`TaskError` failures, a repeatedly-timing-out task
    is *not* escalated to the serial path: a task presumed hung would hang
    the parent process too.
    """


class WorkerCrash(TaskError):
    """A pool worker died (OOM kill, segfault, injected ``worker.kill``).

    The runner rebuilds the pool and re-runs only the lost tasks; this
    error surfaces only when crashes persist past the retry budget *and*
    the serial escalation also fails.
    """


class CacheCorruption(ReproError):
    """An on-disk result-cache entry failed validation.

    Detected by :meth:`repro.exec.ResultCache.get` (unparsable JSON, a
    schema mismatch, or a mangled key); the entry is quarantined under
    ``<cache root>/quarantine/`` and the lookup degrades to a miss, so
    corruption can cost recomputation but never a wrong answer.
    """


class FaultInjected(ReproError):
    """An error raised on purpose by the fault-injection harness.

    See :mod:`repro.exec.faults`. Always retryable — the harness exists to
    exercise the recovery paths.
    """


class ServeError(ReproError):
    """Base class for the simulation-service layer (:mod:`repro.serve`).

    Every subclass carries an ``http_status`` so the server can map the
    library taxonomy onto the wire without per-handler case analysis:
    client mistakes are 4xx, service conditions are 5xx.
    """

    http_status = 500


class ProtocolError(ServeError):
    """A request the service could not accept as stated (HTTP 400).

    Malformed JSON, an unknown field, a value that fails the same
    validation the CLI applies at parse time (unknown workload, size that
    does not parse, non-positive ``max_refs``). Deterministic: the same
    request is rejected identically every time, so clients must fix the
    request rather than retry it.
    """

    http_status = 400


class JobNotFound(ServeError):
    """A job id that names no known job (HTTP 404).

    Job ids are content-addressed, so an id is only ever minted by a
    ``POST``; asking for an unknown one means the client invented it or
    the server restarted (job state is in-memory; results persist in the
    exec cache and resubmission is cheap).
    """

    http_status = 404


class AdmissionRejected(ServeError):
    """The admission queue is full and the request was shed (HTTP 429).

    Carries ``retry_after`` (seconds, for the ``Retry-After`` header) —
    an estimate from queue depth times recent job service time. Load
    shedding at admission is what keeps the server's memory bounded:
    work waits in the *client*, never in an unbounded server-side list.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after

    http_status = 429


class ServiceUnavailable(ServeError):
    """The service cannot take this request right now (HTTP 503).

    Raised when the server is draining for shutdown, and by the sharded
    router when the owning shard is restarting or its circuit breaker is
    open. ``retry_after`` carries the parsed ``Retry-After`` seconds when
    the server sent one (the router derives it from the shard's restart
    backoff schedule); ``None`` means the condition is not expected to
    clear on its own — a drain, for example — so clients fail fast.
    """

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after

    http_status = 503


class ShardUnavailable(ServiceUnavailable):
    """A sharded router could not reach the shard owning a request.

    The wire envelope type for the router's 503s. Distinct from a plain
    :class:`ServiceUnavailable` drain because it is *transient by
    design*: the router's supervision is already respawning the shard,
    and the reply's ``Retry-After`` says when to come back.
    """


class RemoteJobFailed(ServeError):
    """A submitted job reached the ``failed`` state on the server.

    Raised client-side (:mod:`repro.serve.client`) when waiting on a job
    whose execution failed after the server's retry ladder; the message
    carries the server-reported error type and text.
    """


class RunInterrupted(ReproError):
    """A task run was interrupted (SIGINT or an injected interrupt).

    Completed results were already flushed to the result cache when one is
    configured; ``completed``/``total`` say how far the run got, and the
    message carries the resume hint.
    """

    def __init__(self, message: str, *, completed: int = 0, total: int = 0):
        super().__init__(message)
        self.completed = completed
        self.total = total
