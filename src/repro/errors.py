"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulator or experiment was configured with invalid parameters.

    Examples: a cache whose size is not a multiple of its block size, a bus
    with zero width, or an experiment referencing an unknown workload.
    """


class TraceError(ReproError):
    """A memory or instruction trace is malformed or inconsistent."""


class SimulationError(ReproError):
    """A simulation reached an internally inconsistent state.

    This indicates a bug in the simulator (or deliberately injected fault in
    the failure-injection tests), never a user mistake.
    """


class WorkloadError(ReproError):
    """A synthetic workload was requested with unusable parameters."""
