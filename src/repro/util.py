"""Small shared helpers used across the repro library.

The helpers here are deliberately boring: size parsing/formatting, power-of-
two checks, and geometric/arithmetic means used by the experiment tables.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError

#: Multipliers for the size suffixes accepted by :func:`parse_size`.
_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "KB": 1024,
    "K": 1024,
    "MB": 1024 * 1024,
    "M": 1024 * 1024,
    "GB": 1024 * 1024 * 1024,
    "G": 1024 * 1024 * 1024,
}


def parse_size(size: int | str) -> int:
    """Return a byte count from an ``int`` or a string such as ``"64KB"``.

    >>> parse_size("1KB")
    1024
    >>> parse_size(512)
    512
    """
    if isinstance(size, bool):
        # bool is a subclass of int; parse_size(True) == 1 would be a
        # silently-accepted caller bug, so reject it explicitly.
        raise ConfigurationError(f"size must be an int or str, got {size!r}")
    if isinstance(size, int):
        if size < 0:
            raise ConfigurationError(f"size must be non-negative, got {size}")
        return size
    text = size.strip().upper()
    number_part = text.rstrip("KMGB")
    suffix = text[len(number_part):]
    if suffix not in _SIZE_SUFFIXES:
        raise ConfigurationError(f"unknown size suffix in {size!r}")
    try:
        value = float(number_part)
    except ValueError as exc:
        raise ConfigurationError(f"cannot parse size {size!r}") from exc
    if value < 0:
        # Same rule as the int path: "-1KB" must not parse to -1024.
        raise ConfigurationError(f"size must be non-negative, got {size!r}")
    result = value * _SIZE_SUFFIXES[suffix]
    if result != int(result):
        raise ConfigurationError(f"size {size!r} is not a whole byte count")
    return int(result)


def format_size(nbytes: int) -> str:
    """Render a byte count the way the paper's tables do (``64KB``, ``1MB``).

    >>> format_size(65536)
    '64KB'
    """
    if nbytes < 0:
        raise ConfigurationError(f"size must be non-negative, got {nbytes}")
    for suffix, factor in (("GB", 1024 ** 3), ("MB", 1024 ** 2), ("KB", 1024)):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
    return f"{nbytes}B"


def is_power_of_two(value: int) -> bool:
    """True when *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def require_power_of_two(value: int, name: str) -> int:
    """Validate that *value* is a power of two, returning it unchanged."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")
    return value


def log2_int(value: int) -> int:
    """Exact integer log2 of a power of two."""
    require_power_of_two(value, "value")
    return value.bit_length() - 1


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty input rather than returning NaN."""
    items = list(values)
    if not items:
        raise ConfigurationError("cannot take the mean of no values")
    return sum(items) / len(items)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    items = list(values)
    if not items:
        raise ConfigurationError("cannot take the mean of no values")
    if any(v <= 0 for v in items):
        raise ConfigurationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def powers_of_two(start: int, stop: int) -> list[int]:
    """All powers of two in the closed interval [start, stop].

    >>> powers_of_two(1024, 4096)
    [1024, 2048, 4096]
    """
    require_power_of_two(start, "start")
    require_power_of_two(stop, "stop")
    if start > stop:
        raise ConfigurationError(f"start {start} exceeds stop {stop}")
    out = []
    value = start
    while value <= stop:
        out.append(value)
        value *= 2
    return out


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp *value* into the closed interval [lower, upper]."""
    if lower > upper:
        raise ConfigurationError(f"empty interval [{lower}, {upper}]")
    return max(lower, min(upper, value))


def fraction(part: float, whole: float) -> float:
    """``part / whole`` but 0.0 for an empty whole (traffic of empty runs)."""
    return part / whole if whole else 0.0


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned ASCII table (used by experiment reports)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
