"""Table 7: traffic ratios for 32-byte-block direct-mapped caches.

For each SPEC92 benchmark and each cache size from 1 KB to 2 MB (paper
scale), measures the traffic ratio R of a direct-mapped, 32-byte-block,
write-allocate, write-back cache, flushing at program completion. Cells
where the cache exceeds the data set print "<<<" as in the paper.

The paper's headline summary — "reasonably-sized on-chip caches reduce the
traffic from the processor by about half" — is the arithmetic mean of R
over caches >= 64 KB and smaller than the data set, which
:func:`mean_ratio_64kb_up` reproduces (paper value: 0.51).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.traffic import mean_traffic_ratio
from repro.experiments.runner import ScaledAxis, SweepResult, sweep_grid
from repro.mem.cache import Cache, CacheConfig
from repro.trace.model import MemTrace
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload
from repro.workloads.registry import all_workloads

#: Paper values for Table 7 (traffic ratios); None marks "<<<" cells.
#: Used by EXPERIMENTS.md generation and shape tests.
PAPER_TABLE7: dict[str, list[float | None]] = {
    # 1KB   2KB   4KB   8KB   16KB  32KB  64KB  128KB 256KB 512KB 1MB   2MB
    "Compress": [3.03, 1.96, 1.76, 1.59, 1.46, 1.29, 1.10, 0.82, 0.43, None, None, None],
    "Dnasa2":   [3.40, 2.87, 1.34, 0.94, 0.73, 0.62, 0.29, 0.05, None, None, None, None],
    "Eqntott":  [1.04, 0.67, 0.55, 0.47, 0.43, 0.39, 0.34, 0.27, 0.18, 0.11, 0.06, None],
    "Espresso": [1.43, 0.68, 0.39, 0.20, 0.08, 0.01, None, None, None, None, None, None],
    "Su2cor":   [7.44, 7.32, 6.88, 6.11, 4.75, 2.99, 1.43, 0.82, 0.61, 0.29, 0.13, None],
    "Swm":      [5.83, 5.41, 3.94, 1.79, 0.63, 0.60, 0.59, 0.58, 0.58, 0.56, None, None],
    "Tomcatv":  [2.96, 2.91, 2.54, 1.48, 0.87, 0.75, 0.74, 0.73, 0.72, 0.71, 0.33, 0.24],
}

#: The paper's Section 4.2 across-benchmark mean for >=64KB caches.
PAPER_MEAN_RATIO = 0.51


@dataclass(slots=True)
class Table7Result:
    sweep: SweepResult
    mean_ratio_64kb_up: float


def measure_traffic_ratio(
    trace: MemTrace, size_bytes: int, *, block_bytes: int = 32
) -> float:
    """R for one direct-mapped write-back cache over *trace*."""
    cache = Cache(CacheConfig(size_bytes=size_bytes, block_bytes=block_bytes))
    return cache.simulate(trace).traffic_ratio


class RatioMeasure:
    """Picklable cell measurement: regenerate the trace where needed.

    Instances memoize one trace per workload *per process*, so a worker
    handling a whole row generates its benchmark's trace exactly once —
    the same total work as the old precomputed-traces closure, but
    shippable to a process pool (the memo is dropped from the pickled
    state; traces regenerate deterministically from ``(scale, seed)``).
    """

    def __init__(
        self, *, seed: int, max_refs: int | None, block_bytes: int = 32
    ) -> None:
        self.seed = seed
        self.max_refs = max_refs
        self.block_bytes = block_bytes
        self._traces: dict[str, MemTrace] = {}

    def __getstate__(self) -> dict:
        return {
            "seed": self.seed,
            "max_refs": self.max_refs,
            "block_bytes": self.block_bytes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._traces = {}

    def trace_for(self, workload: SyntheticWorkload) -> MemTrace:
        trace = self._traces.get(workload.name)
        if trace is None:
            trace = workload.generate(seed=self.seed, max_refs=self.max_refs)
            self._traces[workload.name] = trace
        return trace

    def __call__(
        self, workload: SyntheticWorkload, simulated_size: int
    ) -> float:
        return measure_traffic_ratio(
            self.trace_for(workload),
            simulated_size,
            block_bytes=self.block_bytes,
        )

    def measure_row(
        self, workload: SyntheticWorkload, simulated_sizes: list[int]
    ) -> list[float]:
        """All of one benchmark's sizes from a single one-pass sweep.

        Bit-identical to calling the per-cell path once per size (the
        differential suite pins this), so cached grids and rendered
        tables never depend on which path ran.
        """
        from repro.mem import engines

        if engines.resolve_engine() == "scalar":
            return [self(workload, size) for size in simulated_sizes]
        family = engines.direct_mapped_family(
            self.trace_for(workload),
            list(simulated_sizes),
            block_bytes=self.block_bytes,
        )
        return [family[size].traffic_ratio for size in simulated_sizes]


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = None,
    seed: int = 0,
    workloads: list[SyntheticWorkload] | None = None,
) -> Table7Result:
    """Regenerate Table 7 at the given footprint scale."""
    axis = ScaledAxis(scale=scale)
    if workloads is None:
        workloads = all_workloads("SPEC92", scale=scale)
    measure = RatioMeasure(seed=seed, max_refs=max_refs)

    sweep = sweep_grid(
        "Table 7: traffic ratios",
        workloads,
        axis,
        measure,
        cache_key={
            "experiment": "table7",
            "seed": seed,
            "max_refs": max_refs,
            "block_bytes": 32,
        },
    )

    # Mean over >=64KB (paper scale) caches smaller than the data set.
    # Both operands are at paper scale: the column sizes label the paper's
    # axis, and the data-set bound comes from Table 3's published MB — the
    # paper-scale analogue of the simulated-scale pair that decided the
    # "<<<" cells (tests pin that the two agree on the eligible columns).
    means = []
    for workload in workloads:
        cells = [
            (size, value)
            for size, value in zip(sweep.column_sizes, sweep.row(workload.name))
            if value is not None
        ]
        mean = mean_traffic_ratio(
            cells,
            min_size=64 * 1024,
            dataset_bytes=int(workload.paper.dataset_mb * 1024 * 1024),
        )
        if mean == mean:  # not NaN
            means.append(mean)
    overall = sum(means) / len(means) if means else float("nan")
    return Table7Result(sweep=sweep, mean_ratio_64kb_up=overall)


def render(result: Table7Result) -> str:
    from repro.experiments.report import render_sweep

    table = render_sweep(result.sweep)
    return (
        f"{table}\n"
        f"Mean R for >=64KB caches below data-set size: "
        f"{result.mean_ratio_64kb_up:.2f} (paper: {PAPER_MEAN_RATIO})"
    )
