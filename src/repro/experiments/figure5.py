"""Figure 5: the unified processor/DRAM system, evaluated.

The paper closes with a prediction: "off-chip communication [will become]
so expensive that all of the system memory resides on the processor chip
(or module)", sketching a die with SRAM cache banks distributed among
on-chip DRAM banks (Figure 5). This experiment quantifies the claim with
the timing model: the same aggressive processor (experiment F) runs

* **conventional** — the paper's Table 4 memory system: off-chip L2 and
  DRAM behind narrow, slow-clocked buses (pin crossings), and
* **unified**     — on-chip DRAM: the same DRAM access latency, but the
  interconnect is an on-die bus (cache-line wide, full clock rate, no
  pin crossing) and there is no separate L2 — the DRAM banks are the
  second level.

The decomposition shows where the win comes from: the bandwidth-stall
fraction collapses while raw DRAM latency remains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition import ExecutionDecomposition
from repro.cpu.branch import TwoLevelPredictor
from repro.cpu.configs import ExperimentConfig, experiment
from repro.cpu.itrace import instruction_trace_for_workload
from repro.cpu.machine import Machine
from repro.cpu.ooo import OutOfOrderCore
from repro.mem.cache import CacheConfig
from repro.mem.timing import BusSpec, MemoryMode, TimingMemory, TimingMemoryParams
from repro.workloads.base import DEFAULT_SCALE
from repro.workloads.registry import get_workload


@dataclass(frozen=True, slots=True)
class Figure5Row:
    benchmark: str
    conventional: ExecutionDecomposition
    unified: ExecutionDecomposition

    @property
    def speedup(self) -> float:
        return self.conventional.cycles_full / self.unified.cycles_full

    @property
    def bandwidth_stall_reduction(self) -> float:
        """Absolute drop in the bandwidth-stall fraction."""
        return self.conventional.f_b - self.unified.f_b


@dataclass(slots=True)
class Figure5Result:
    rows: list[Figure5Row]


def unified_memory_params(
    config: ExperimentConfig, scale: float = DEFAULT_SCALE
) -> TimingMemoryParams:
    """The on-chip-DRAM variant of an experiment's memory system.

    The DRAM core latency is unchanged (it is intrinsic, not a bandwidth
    artifact); what changes is the path: a cache-line-wide on-die bus at
    the processor clock with no address-multiplexing overhead, and the
    DRAM banks reachable directly behind the L1 (no discrete L2 chip).
    """
    base = config.timing_memory_params(scale)
    on_chip_dram = CacheConfig(
        size_bytes=1 << 26,  # effectively all of memory, on die
        block_bytes=base.l2_config.block_bytes,
        associativity=base.l2_config.associativity,
        name="on-chip DRAM",
    )
    wide_on_die = BusSpec(
        width_bytes=base.l1_config.block_bytes,
        proc_cycles_per_beat=1,
        overhead_beats=0,
    )
    return TimingMemoryParams(
        l1_config=base.l1_config,
        l2_config=on_chip_dram,
        l1_l2_bus=wide_on_die,
        l2_mem_bus=wide_on_die,
        l1_hit_cycles=base.l1_hit_cycles,
        # The DRAM bank answers directly: one access at memory latency.
        l2_access_cycles=base.memory_access_cycles,
        memory_access_cycles=base.memory_access_cycles,
        mshr_count=base.mshr_count,
        tagged_prefetch=base.tagged_prefetch,
    )


def _run_unified(config: ExperimentConfig, itrace, scale: float):
    """Three-mode decomposition with the unified memory system."""
    params = unified_memory_params(config, scale)
    cycles = {}
    for mode in MemoryMode:
        memory = TimingMemory(params, mode)
        predictor = TwoLevelPredictor(config.processor.branch_table_entries)
        core = OutOfOrderCore(
            memory,
            predictor,
            ruu_size=config.processor.ruu_slots,
            lsq_size=config.processor.lsq_entries,
            issue_width=config.processor.issue_width,
            mem_ports=config.processor.mem_ports,
        )
        cycles[mode] = core.run(itrace).cycles
    from repro.core.decomposition import decompose

    return decompose(
        cycles[MemoryMode.PERFECT],
        cycles[MemoryMode.INFINITE],
        cycles[MemoryMode.FULL],
        instructions=len(itrace),
        label="unified",
    )


def run(
    *,
    benchmarks: tuple[str, ...] = ("Swm", "Tomcatv", "Compress"),
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = 10_000,
    seed: int = 0,
) -> Figure5Result:
    """Compare conventional vs unified systems under experiment F."""
    config = experiment("F", "SPEC92")
    rows = []
    for name in benchmarks:
        workload = get_workload(name, scale=scale)
        itrace = instruction_trace_for_workload(
            workload, seed=seed, max_refs=max_refs
        )
        conventional = Machine(config, scale=scale).run(itrace).decomposition
        unified = _run_unified(config, itrace, scale)
        rows.append(
            Figure5Row(
                benchmark=name, conventional=conventional, unified=unified
            )
        )
    return Figure5Result(rows=rows)


def render(result: Figure5Result) -> str:
    from repro.util import format_table

    headers = [
        "Benchmark",
        "conv f_L",
        "conv f_B",
        "unified f_L",
        "unified f_B",
        "speedup",
    ]
    body = [
        [
            row.benchmark,
            f"{row.conventional.f_l:.2f}",
            f"{row.conventional.f_b:.2f}",
            f"{row.unified.f_l:.2f}",
            f"{row.unified.f_b:.2f}",
            f"{row.speedup:.2f}x",
        ]
        for row in result.rows
    ]
    return (
        "Figure 5: conventional vs unified processor/DRAM (experiment F)\n"
        + format_table(headers, body)
    )
