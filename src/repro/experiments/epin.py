"""Effective pin bandwidth for two-level hierarchies (Equations 5 and 7).

The paper defines effective pin bandwidth over *k* levels of on-chip
cache (``E_pin = B_pin / prod R_i``) but measures only one level. This
experiment completes the calculation for the two-level organisation of
its own Table 4: an L1 backed by an L2, both on chip, with per-level
traffic ratios composing into the effective bandwidth the processor sees,
and the per-level traffic inefficiencies composing into the OE_pin upper
bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.traffic import (
    effective_pin_bandwidth,
    optimal_effective_pin_bandwidth,
)
from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import TraceHierarchy
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.workloads.base import DEFAULT_SCALE
from repro.workloads.registry import all_workloads

#: A 1996-class package: 128-bit bus at 75 MHz (Alpha 21164-like).
DEFAULT_PIN_BANDWIDTH_MB_S = 1200.0


@dataclass(frozen=True, slots=True)
class EpinRow:
    benchmark: str
    r1: float
    r2: float
    #: G for the combined two-level stack (cache traffic below L2 over
    #: the traffic of an MTC sized as L1+L2).
    g_stack: float
    e_pin_mb_s: float
    oe_pin_mb_s: float

    @property
    def cumulative_ratio(self) -> float:
        return self.r1 * self.r2


@dataclass(slots=True)
class EpinResult:
    rows: list[EpinRow]
    pin_bandwidth_mb_s: float
    l1_bytes: int
    l2_bytes: int


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = 150_000,
    seed: int = 0,
    pin_bandwidth_mb_s: float = DEFAULT_PIN_BANDWIDTH_MB_S,
    l1_paper_bytes: int = 128 * 1024,
    l2_paper_bytes: int = 1024 * 1024,
) -> EpinResult:
    """Measure E_pin and OE_pin for the SPEC92 suite on an L1+L2 stack."""
    l1_bytes = max(128, int(l1_paper_bytes * scale))
    l2_bytes = max(512, int(l2_paper_bytes * scale))
    configs = [
        CacheConfig(size_bytes=l1_bytes, block_bytes=32, name="L1"),
        CacheConfig(
            size_bytes=l2_bytes, block_bytes=64, associativity=4, name="L2"
        ),
    ]
    rows = []
    for workload in all_workloads("SPEC92", scale=scale):
        trace = workload.generate(seed=seed, max_refs=max_refs)
        result = TraceHierarchy(configs).simulate(trace)
        r1, r2 = result.traffic_ratios
        # The stack-level inefficiency: compare the traffic below L2
        # against an optimally-managed memory of the total on-chip size.
        mtc = MinimalTrafficCache(
            MTCConfig(size_bytes=_pow2_at_least(l1_bytes + l2_bytes))
        ).simulate(trace)
        below_l2 = result.traffic_below[-1]
        g_stack = (
            below_l2 / mtc.total_traffic_bytes
            if mtc.total_traffic_bytes
            else 1.0
        )
        g_stack = max(1.0, g_stack)
        e_pin = effective_pin_bandwidth(pin_bandwidth_mb_s, [r1, r2])
        oe_pin = optimal_effective_pin_bandwidth(
            pin_bandwidth_mb_s, [r1, r2], [g_stack]
        )
        rows.append(
            EpinRow(
                benchmark=workload.name,
                r1=r1,
                r2=r2,
                g_stack=g_stack,
                e_pin_mb_s=e_pin,
                oe_pin_mb_s=oe_pin,
            )
        )
    return EpinResult(
        rows=rows,
        pin_bandwidth_mb_s=pin_bandwidth_mb_s,
        l1_bytes=l1_bytes,
        l2_bytes=l2_bytes,
    )


def _pow2_at_least(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


def render(result: EpinResult) -> str:
    from repro.util import format_size, format_table

    headers = ["Benchmark", "R1", "R2", "R1*R2", "G(stack)", "E_pin", "OE_pin"]
    body = [
        [
            row.benchmark,
            f"{row.r1:.2f}",
            f"{row.r2:.2f}",
            f"{row.cumulative_ratio:.3f}",
            f"{row.g_stack:.1f}",
            f"{row.e_pin_mb_s:,.0f}",
            f"{row.oe_pin_mb_s:,.0f}",
        ]
        for row in result.rows
    ]
    title = (
        f"Two-level effective pin bandwidth "
        f"(L1 {format_size(result.l1_bytes)} + L2 {format_size(result.l2_bytes)} "
        f"simulated, {result.pin_bandwidth_mb_s:.0f} MB/s package)"
    )
    return f"{title}\n" + format_table(headers, body)
