"""Table 3: benchmark trace lengths, inputs, and data-set sizes.

Prints the paper's published metadata next to the reproduction-scale
numbers this library actually generates (reference counts and measured
footprints), so the scaling policy is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import DEFAULT_SCALE
from repro.workloads.registry import all_workloads


@dataclass(frozen=True, slots=True)
class Table3Row:
    benchmark: str
    suite: str
    input_description: str
    paper_refs_millions: float
    paper_dataset_mb: float
    generated_refs: int
    generated_footprint_bytes: int


@dataclass(slots=True)
class Table3Result:
    rows: list[Table3Row]
    scale: float


def run(*, scale: float = DEFAULT_SCALE, seed: int = 0) -> Table3Result:
    """Generate every workload once and collect the comparison rows."""
    rows = []
    for workload in all_workloads(scale=scale):
        trace = workload.generate(seed=seed)
        rows.append(
            Table3Row(
                benchmark=workload.name,
                suite=workload.suite,
                input_description=workload.paper.input_description,
                paper_refs_millions=workload.paper.refs_millions,
                paper_dataset_mb=workload.paper.dataset_mb,
                generated_refs=len(trace),
                generated_footprint_bytes=trace.footprint_bytes,
            )
        )
    return Table3Result(rows=rows, scale=scale)


def render(result: Table3Result) -> str:
    from repro.util import format_table

    headers = [
        "Benchmark",
        "Suite",
        "Input",
        "Paper refs (M)",
        "Paper data (MB)",
        "Repro refs",
        "Repro data (KB)",
    ]
    body = [
        [
            row.benchmark,
            row.suite,
            row.input_description,
            f"{row.paper_refs_millions:.1f}",
            f"{row.paper_dataset_mb:.2f}",
            f"{row.generated_refs:,}",
            f"{row.generated_footprint_bytes / 1024:.0f}",
        ]
        for row in result.rows
    ]
    title = (
        f"Table 3: benchmarks (reproduction at 1/{round(1 / result.scale)} "
        "footprint scale)"
    )
    return f"{title}\n" + format_table(headers, body)
