"""Figure 1: physical microprocessor trends, plus the §4.3 extrapolation.

Regenerates the three panels as (year, value) series over the chip data
set and fits the growth trends the paper quotes: pins at ~16%/year, and a
2006 package of two-to-three thousand pins needing ~25x the per-pin
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pins import (
    CHIPS,
    ChipRecord,
    Extrapolation2006,
    TrendFit,
    extrapolate_2006,
    mips_per_bandwidth_trend,
    mips_per_pin_trend,
    pin_trend,
)

#: Paper-quoted values this experiment checks against.
PAPER_PIN_GROWTH_PERCENT = 16.0
PAPER_2006_PINS_RANGE = (2000.0, 3000.0)
PAPER_PER_PIN_FACTOR = 25.0


@dataclass(frozen=True, slots=True)
class Figure1Result:
    chips: tuple[ChipRecord, ...]
    pins_series: list[tuple[int, float]]
    mips_per_pin_series: list[tuple[int, float]]
    mips_per_bandwidth_series: list[tuple[int, float]]
    pin_fit: TrendFit
    mips_per_pin_fit: TrendFit
    mips_per_bandwidth_fit: TrendFit
    extrapolation: Extrapolation2006


def run(*, performance_growth: float = 1.60) -> Figure1Result:
    """Compute all three panels and the decade-out extrapolation."""
    chips = CHIPS
    return Figure1Result(
        chips=chips,
        pins_series=[(c.year, float(c.pins)) for c in chips],
        mips_per_pin_series=[(c.year, c.mips_per_pin) for c in chips],
        mips_per_bandwidth_series=[
            (c.year, c.mips_per_bandwidth) for c in chips
        ],
        pin_fit=pin_trend(chips),
        mips_per_pin_fit=mips_per_pin_trend(chips),
        mips_per_bandwidth_fit=mips_per_bandwidth_trend(chips),
        extrapolation=extrapolate_2006(performance_growth=performance_growth),
    )


def render(result: Figure1Result) -> str:
    from repro.experiments.report import render_series

    panels = render_series(
        "Figure 1: physical microprocessor trends",
        "year",
        {
            "(a) pins": result.pins_series,
            "(b) MIPS/pin": result.mips_per_pin_series,
            "(c) MIPS per MB/s": result.mips_per_bandwidth_series,
        },
    )
    extrapolation = result.extrapolation
    summary = (
        f"Pin growth: {result.pin_fit.percent_per_year:.1f}%/year "
        f"(paper: ~{PAPER_PIN_GROWTH_PERCENT:.0f}%)\n"
        f"2006 package: {extrapolation.pins_2006:.0f} pins "
        f"(paper: 2000-3000); per-pin bandwidth factor "
        f"{extrapolation.bandwidth_per_pin_factor:.1f}x "
        f"(paper: ~{PAPER_PER_PIN_FACTOR:.0f}x)"
    )
    return f"{panels}\n{summary}"
