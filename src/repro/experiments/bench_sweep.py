"""Benchmark: multi-size sweep rows, per-cell simulation vs one-pass family.

Times one Table 7-style row per SPEC92 benchmark — a full ladder of
direct-mapped cache sizes — computed two ways: the per-cell path (one
independent simulation per size, scalar loop) and the one-pass
direct-mapped family (a single stable partition sweep producing every
size at once). Results are asserted identical before timing is reported.
This is the ``repro profile bench_sweep`` target; the aggregate row
speedup lands in ``BENCH_profile.json`` as the ``bench.sweep.speedup``
gauge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.mem import engines
from repro.mem.cache import Cache, CacheConfig
from repro.obs import OBS
from repro.util import format_table, fraction
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload
from repro.workloads.registry import all_workloads

#: References per benchmark when the caller does not pick a budget.
DEFAULT_BENCH_REFS = 100_000

#: The swept row: every power-of-two size of a Table 7-style axis.
BENCH_SIZES = tuple(1 << p for p in range(10, 21))  # 1 KB .. 1 MB
BENCH_BLOCK_BYTES = 32


@dataclass(slots=True)
class BenchRow:
    """One benchmark's row timings: per-cell loop vs one-pass family."""

    workload: str
    references: int
    per_cell_seconds: float
    family_seconds: float

    @property
    def speedup(self) -> float:
        return fraction(self.per_cell_seconds, self.family_seconds)


@dataclass(slots=True)
class BenchResult:
    sizes: tuple[int, ...]
    rows: list[BenchRow]

    @property
    def overall_speedup(self) -> float:
        per_cell = sum(row.per_cell_seconds for row in self.rows)
        family = sum(row.family_seconds for row in self.rows)
        return fraction(per_cell, family)


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = None,
    seed: int = 0,
    workloads: list[SyntheticWorkload] | None = None,
) -> BenchResult:
    """Time whole sweep rows under both execution strategies."""
    refs = max_refs if max_refs is not None else DEFAULT_BENCH_REFS
    if workloads is None:
        workloads = all_workloads("SPEC92", scale=scale)
    sizes = list(BENCH_SIZES)
    rows: list[BenchRow] = []
    for workload in workloads:
        trace = workload.generate(seed=seed, max_refs=refs)
        start = time.perf_counter()
        per_cell = [
            Cache(
                CacheConfig(size_bytes=size, block_bytes=BENCH_BLOCK_BYTES)
            )
            .simulate(trace, engine="scalar")
            .total_traffic_bytes
            for size in sizes
        ]
        per_cell_seconds = time.perf_counter() - start
        start = time.perf_counter()
        family = engines.direct_mapped_family(
            trace, sizes, block_bytes=BENCH_BLOCK_BYTES
        )
        family_traffic = [family[size].total_traffic_bytes for size in sizes]
        family_seconds = time.perf_counter() - start
        if per_cell != family_traffic:
            raise SimulationError(
                f"row mismatch on {workload.name}: "
                f"{per_cell} != {family_traffic}"
            )
        rows.append(
            BenchRow(
                workload=workload.name,
                references=len(trace),
                per_cell_seconds=per_cell_seconds,
                family_seconds=family_seconds,
            )
        )
        if OBS.enabled:
            OBS.observe("bench.sweep.per_cell", per_cell_seconds)
            OBS.observe("bench.sweep.family", family_seconds)
    result = BenchResult(sizes=tuple(sizes), rows=rows)
    if OBS.enabled:
        OBS.gauge("bench.sweep.speedup", result.overall_speedup)
    return result


def render(result: BenchResult) -> str:
    rows = [
        [
            row.workload,
            f"{row.references:,}",
            f"{row.per_cell_seconds:.3f}s",
            f"{row.family_seconds:.3f}s",
            f"{row.speedup:.1f}x",
        ]
        for row in result.rows
    ]
    table = format_table(
        ["workload", "refs", "per-cell row", "one-pass row", "speedup"],
        rows,
    )
    return (
        f"sweep-row benchmark: {len(result.sizes)} direct-mapped sizes "
        f"({result.sizes[0]:,}B..{result.sizes[-1]:,}B)\n"
        f"{table}\n"
        f"overall speedup: {result.overall_speedup:.1f}x"
    )
