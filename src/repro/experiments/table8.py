"""Table 8: traffic inefficiencies for 32-byte-block direct-mapped caches.

For each SPEC92 benchmark and cache size, measures G = (cache traffic) /
(MTC traffic) where the MTC is the paper's minimal-traffic cache: fully
associative, one-word blocks, Belady MIN replacement with bypass, and a
write-validate write policy (Section 5.2).

The paper's headline: G is between ~20 and ~100 for the irregular codes
(Compress, Eqntott, Espresso, Su2cor) and between ~2 and ~10 for the
streaming scientific codes (Dnasa2, Swm, Tomcatv) — "a significant
opportunity to increase effective pin bandwidth, between one and two
orders of magnitude".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ScaledAxis, SweepResult, evaluate_grid
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload
from repro.workloads.registry import all_workloads

#: Paper values for Table 8 (traffic inefficiencies); None marks "<<<".
PAPER_TABLE8: dict[str, list[float | None]] = {
    # 1KB   2KB   4KB   8KB   16KB  32KB  64KB  128KB 256KB 512KB 1MB   2MB
    "Compress": [25.3, 18.4, 18.7, 19.5, 21.9, 25.5, 29.2, 30.7, 32.5, None, None, None],
    "Dnasa2":   [6.2, 6.6, 6.2, 4.7, 4.1, 4.6, 7.0, 10.0, None, None, None, None],
    "Eqntott":  [56.3, 38.7, 34.5, 35.8, 49.7, 94.4, 100.5, 94.1, 72.7, 47.7, 28.6, None],
    "Espresso": [18.2, 18.8, 26.3, 40.4, 82.2, 28.9, None, None, None, None, None, None],
    "Su2cor":   [14.1, 14.5, 15.1, 16.4, 17.2, 21.9, 20.1, 25.7, 40.3, 28.7, 35.8, None],
    "Swm":      [22.7, 23.4, 17.2, 7.9, 2.8, 2.7, 2.8, 3.0, 3.5, 5.4, 124.1, 74.8],
    "Tomcatv":  [6.4, 6.6, 6.2, 3.9, 2.3, 2.0, 2.0, 2.0, 2.1, 2.4, 1.6, 3.7],
}


@dataclass(slots=True)
class Table8Result:
    sweep: SweepResult
    #: Parallel grid of raw MTC traffic in bytes (reused by Figure 4).
    mtc_traffic: SweepResult
    cache_traffic: SweepResult
    #: True when the MTC denominators are sampled-engine *estimates*
    #: (see repro.mem.sampled); render() flags the table accordingly.
    estimated: bool = False


def measure_inefficiency_cell(
    trace: MemTrace, size_bytes: int
) -> tuple[float, int, int]:
    """(G, cache traffic, MTC traffic) for one benchmark/size cell."""
    cache = Cache(CacheConfig(size_bytes=size_bytes, block_bytes=32))
    cache_traffic = cache.simulate(trace).total_traffic_bytes
    mtc = MinimalTrafficCache(MTCConfig(size_bytes=size_bytes))
    mtc_traffic = mtc.simulate(trace).total_traffic_bytes
    return cache_traffic / mtc_traffic, cache_traffic, mtc_traffic


class InefficiencyMeasure:
    """Picklable cell measurement returning ``[G, cache, MTC]`` triples.

    The triple is a JSON-stable list so one simulated grid can flow
    through the result cache and still back all three of
    :class:`Table8Result`'s views. Traces memoize per workload per
    process and regenerate deterministically after pickling (the memo is
    excluded from the pickled state).
    """

    def __init__(self, *, seed: int, max_refs: int | None) -> None:
        self.seed = seed
        self.max_refs = max_refs
        self._traces: dict[str, MemTrace] = {}

    def __getstate__(self) -> dict:
        return {"seed": self.seed, "max_refs": self.max_refs}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._traces = {}

    def trace_for(self, workload: SyntheticWorkload) -> MemTrace:
        trace = self._traces.get(workload.name)
        if trace is None:
            trace = workload.generate(seed=self.seed, max_refs=self.max_refs)
            self._traces[workload.name] = trace
        return trace

    def __call__(
        self, workload: SyntheticWorkload, simulated_size: int
    ) -> list[float]:
        g, cache_traffic, mtc_traffic = measure_inefficiency_cell(
            self.trace_for(workload), simulated_size
        )
        return [g, cache_traffic, mtc_traffic]

    def measure_row(
        self, workload: SyntheticWorkload, simulated_sizes: list[int]
    ) -> list[list[float]]:
        """One benchmark's whole row: a one-pass direct-mapped family for
        the numerators plus one shared MTC pass-1 across all sizes.

        Bit-identical to the per-cell path (the differential suite pins
        both engines), so cached grids never depend on which path ran.
        """
        from repro.mem import engines

        selection = engines.resolve_engine()
        if selection == "scalar":
            return [self(workload, size) for size in simulated_sizes]
        trace = self.trace_for(workload)
        sizes = list(simulated_sizes)
        family = engines.direct_mapped_family(trace, sizes, block_bytes=32)
        # The sampled MTC prepares its own (much smaller) sub-trace
        # pass 1, so the shared full-trace pass would be wasted work.
        sampling = None
        if selection in ("sampled", "auto"):
            from repro.mem import sampled

            sampling = sampled.sampling_for(selection, len(trace))
        prepared = engines.prepare_mtc(trace) if sampling is None else None
        row: list[list[float]] = []
        for size in sizes:
            cache_traffic = family[size].total_traffic_bytes
            mtc = MinimalTrafficCache(MTCConfig(size_bytes=size))
            mtc_traffic = mtc.simulate(
                trace, prepared=prepared
            ).total_traffic_bytes
            row.append([cache_traffic / mtc_traffic, cache_traffic, mtc_traffic])
        return row


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = None,
    seed: int = 0,
    workloads: list[SyntheticWorkload] | None = None,
) -> Table8Result:
    """Regenerate Table 8 at the given footprint scale."""
    axis = ScaledAxis(scale=scale)
    if workloads is None:
        workloads = all_workloads("SPEC92", scale=scale)
    measure = InefficiencyMeasure(seed=seed, max_refs=max_refs)

    # The paper's Table 8 shows Swm at 1 MB and 2 MB even though the
    # cache exceeds the data set ("caches with associativities less than
    # four require 4 MB to contain the data set"): full-row exception.
    # One evaluated grid of (G, cache, MTC) triples backs all three
    # SweepResult views — each cell simulates exactly once.
    sizes, grid = evaluate_grid(
        "Table 8: traffic inefficiencies",
        workloads,
        axis,
        measure,
        full_rows={"Swm"},
        cache_key={"experiment": "table8", "seed": seed, "max_refs": max_refs},
    )

    def view(
        title: str, index: int, *, full_rows: frozenset[str] = frozenset()
    ) -> SweepResult:
        rows: list[list[float | None]] = []
        for workload, raw in zip(workloads, grid):
            row: list[float | None] = []
            for paper_size, triple in zip(sizes, raw):
                keep = triple is not None and (
                    workload.name in full_rows
                    or not axis.is_too_big(paper_size, workload)
                )
                row.append(float(triple[index]) if keep else None)
            rows.append(row)
        return SweepResult(
            title=title,
            row_names=[w.name for w in workloads],
            column_sizes=list(sizes),
            cells=rows,
            scale=axis.scale,
        )

    # The traffic views keep the strict "<<<" masking (no Swm exception),
    # matching the paper's figures that reuse them.
    sweep = view(
        "Table 8: traffic inefficiencies", 0, full_rows=frozenset({"Swm"})
    )
    cache_traffic = view("cache traffic (bytes)", 1)
    mtc_traffic = view("MTC traffic (bytes)", 2)

    from repro.exec import sampling_key

    return Table8Result(
        sweep=sweep,
        mtc_traffic=mtc_traffic,
        cache_traffic=cache_traffic,
        estimated=sampling_key() is not None,
    )


def render(result: Table8Result) -> str:
    from repro.experiments.report import render_sweep

    rendered = render_sweep(result.sweep, decimals=1)
    if result.estimated:
        rendered += (
            "\n\nNote: MTC denominators are sampled-engine estimates "
            "(see docs/performance.md for the error-bound contract)."
        )
    return rendered
