"""Table 8: traffic inefficiencies for 32-byte-block direct-mapped caches.

For each SPEC92 benchmark and cache size, measures G = (cache traffic) /
(MTC traffic) where the MTC is the paper's minimal-traffic cache: fully
associative, one-word blocks, Belady MIN replacement with bypass, and a
write-validate write policy (Section 5.2).

The paper's headline: G is between ~20 and ~100 for the irregular codes
(Compress, Eqntott, Espresso, Su2cor) and between ~2 and ~10 for the
streaming scientific codes (Dnasa2, Swm, Tomcatv) — "a significant
opportunity to increase effective pin bandwidth, between one and two
orders of magnitude".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ScaledAxis, SweepResult, sweep_grid
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload
from repro.workloads.registry import all_workloads

#: Paper values for Table 8 (traffic inefficiencies); None marks "<<<".
PAPER_TABLE8: dict[str, list[float | None]] = {
    # 1KB   2KB   4KB   8KB   16KB  32KB  64KB  128KB 256KB 512KB 1MB   2MB
    "Compress": [25.3, 18.4, 18.7, 19.5, 21.9, 25.5, 29.2, 30.7, 32.5, None, None, None],
    "Dnasa2":   [6.2, 6.6, 6.2, 4.7, 4.1, 4.6, 7.0, 10.0, None, None, None, None],
    "Eqntott":  [56.3, 38.7, 34.5, 35.8, 49.7, 94.4, 100.5, 94.1, 72.7, 47.7, 28.6, None],
    "Espresso": [18.2, 18.8, 26.3, 40.4, 82.2, 28.9, None, None, None, None, None, None],
    "Su2cor":   [14.1, 14.5, 15.1, 16.4, 17.2, 21.9, 20.1, 25.7, 40.3, 28.7, 35.8, None],
    "Swm":      [22.7, 23.4, 17.2, 7.9, 2.8, 2.7, 2.8, 3.0, 3.5, 5.4, 124.1, 74.8],
    "Tomcatv":  [6.4, 6.6, 6.2, 3.9, 2.3, 2.0, 2.0, 2.0, 2.1, 2.4, 1.6, 3.7],
}


@dataclass(slots=True)
class Table8Result:
    sweep: SweepResult
    #: Parallel grid of raw MTC traffic in bytes (reused by Figure 4).
    mtc_traffic: SweepResult
    cache_traffic: SweepResult


def measure_inefficiency_cell(
    trace: MemTrace, size_bytes: int
) -> tuple[float, int, int]:
    """(G, cache traffic, MTC traffic) for one benchmark/size cell."""
    cache = Cache(CacheConfig(size_bytes=size_bytes, block_bytes=32))
    cache_traffic = cache.simulate(trace).total_traffic_bytes
    mtc = MinimalTrafficCache(MTCConfig(size_bytes=size_bytes))
    mtc_traffic = mtc.simulate(trace).total_traffic_bytes
    return cache_traffic / mtc_traffic, cache_traffic, mtc_traffic


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = None,
    seed: int = 0,
    workloads: list[SyntheticWorkload] | None = None,
) -> Table8Result:
    """Regenerate Table 8 at the given footprint scale."""
    axis = ScaledAxis(scale=scale)
    if workloads is None:
        workloads = all_workloads("SPEC92", scale=scale)
    traces = {
        w.name: w.generate(seed=seed, max_refs=max_refs) for w in workloads
    }
    cell_cache: dict[tuple[str, int], tuple[float, int, int]] = {}

    def measure(workload: SyntheticWorkload, simulated_size: int) -> float:
        key = (workload.name, simulated_size)
        if key not in cell_cache:
            cell_cache[key] = measure_inefficiency_cell(
                traces[workload.name], simulated_size
            )
        return cell_cache[key][0]

    # The paper's Table 8 shows Swm at 1 MB and 2 MB even though the
    # cache exceeds the data set ("caches with associativities less than
    # four require 4 MB to contain the data set"): full-row exception.
    sweep = sweep_grid(
        "Table 8: traffic inefficiencies",
        workloads,
        axis,
        measure,
        full_rows={"Swm"},
    )

    def cached(index: int):
        def getter(workload: SyntheticWorkload, simulated_size: int) -> float:
            return float(cell_cache[(workload.name, simulated_size)][index])

        return getter

    cache_traffic = sweep_grid(
        "cache traffic (bytes)", workloads, axis, cached(1)
    )
    mtc_traffic = sweep_grid("MTC traffic (bytes)", workloads, axis, cached(2))
    return Table8Result(
        sweep=sweep, mtc_traffic=mtc_traffic, cache_traffic=cache_traffic
    )


def render(result: Table8Result) -> str:
    from repro.experiments.report import render_sweep

    return render_sweep(result.sweep, decimals=1)
