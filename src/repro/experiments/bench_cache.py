"""Benchmark: set-associative LRU simulation, scalar loop vs vector engine.

Runs every SPEC92 benchmark through one representative set-associative
configuration (32 KB, 32-byte blocks, 4-way LRU, write-back
write-allocate) twice — once with the scalar per-access loop and once
with the padded-column vector kernel — asserting the two produce
identical :class:`~repro.mem.cache.CacheStats` before reporting
per-engine throughput. This is the ``repro profile bench_cache`` target
backing the engine numbers in docs/performance.md; the measured speedup
also lands in ``BENCH_profile.json`` as the ``bench.cache.speedup``
gauge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.mem.cache import Cache, CacheConfig
from repro.obs import OBS
from repro.util import format_table, fraction
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload
from repro.workloads.registry import all_workloads

#: References per benchmark when the caller does not pick a budget.
DEFAULT_BENCH_REFS = 100_000

#: The benchmarked configuration: big enough to exercise real set
#: pressure, associative enough to leave the direct-mapped fast path.
#: 512 sets keeps the vector kernel's columns wide — its favourable
#: regime (the auto cost model exists precisely because narrow-column
#: workloads are not).
BENCH_CONFIG = CacheConfig(
    size_bytes=64 * 1024, block_bytes=32, associativity=4
)


@dataclass(slots=True)
class BenchRow:
    """One benchmark's timings under both engines (identical results)."""

    workload: str
    references: int
    scalar_seconds: float
    vector_seconds: float

    @property
    def speedup(self) -> float:
        return fraction(self.scalar_seconds, self.vector_seconds)

    @property
    def scalar_refs_per_second(self) -> float:
        return fraction(self.references, self.scalar_seconds)

    @property
    def vector_refs_per_second(self) -> float:
        return fraction(self.references, self.vector_seconds)


@dataclass(slots=True)
class BenchResult:
    config: str
    rows: list[BenchRow]

    @property
    def overall_speedup(self) -> float:
        scalar = sum(row.scalar_seconds for row in self.rows)
        vector = sum(row.vector_seconds for row in self.rows)
        return fraction(scalar, vector)


def _stats_key(stats) -> tuple:
    return (
        stats.accesses,
        stats.read_hits,
        stats.write_hits,
        stats.fetch_bytes,
        stats.writeback_bytes,
        stats.writethrough_bytes,
        stats.flush_writeback_bytes,
    )


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = None,
    seed: int = 0,
    workloads: list[SyntheticWorkload] | None = None,
) -> BenchResult:
    """Time both cache engines over the SPEC92 suite."""
    refs = max_refs if max_refs is not None else DEFAULT_BENCH_REFS
    if workloads is None:
        workloads = all_workloads("SPEC92", scale=scale)
    rows: list[BenchRow] = []
    for workload in workloads:
        trace = workload.generate(seed=seed, max_refs=refs)
        start = time.perf_counter()
        scalar = Cache(BENCH_CONFIG).simulate(trace, engine="scalar")
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        vector = Cache(BENCH_CONFIG).simulate(trace, engine="vector")
        vector_seconds = time.perf_counter() - start
        if _stats_key(scalar) != _stats_key(vector):
            raise SimulationError(
                f"engine mismatch on {workload.name}: "
                f"scalar {_stats_key(scalar)} != vector {_stats_key(vector)}"
            )
        row = BenchRow(
            workload=workload.name,
            references=len(trace),
            scalar_seconds=scalar_seconds,
            vector_seconds=vector_seconds,
        )
        rows.append(row)
        if OBS.enabled:
            OBS.observe("bench.cache.scalar", scalar_seconds)
            OBS.observe("bench.cache.vector", vector_seconds)
    result = BenchResult(config=BENCH_CONFIG.describe(), rows=rows)
    if OBS.enabled:
        OBS.gauge("bench.cache.speedup", result.overall_speedup)
    return result


def render(result: BenchResult) -> str:
    rows = [
        [
            row.workload,
            f"{row.references:,}",
            f"{row.scalar_refs_per_second:,.0f}",
            f"{row.vector_refs_per_second:,.0f}",
            f"{row.speedup:.1f}x",
        ]
        for row in result.rows
    ]
    table = format_table(
        ["workload", "refs", "scalar refs/s", "vector refs/s", "speedup"],
        rows,
    )
    return (
        f"cache engine benchmark: {result.config}\n"
        f"{table}\n"
        f"overall speedup: {result.overall_speedup:.1f}x"
    )
