"""Rendering of experiment results in the paper's table style."""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.runner import TOO_BIG, SweepResult
from repro.util import format_size, format_table


def render_sweep(result: SweepResult, *, decimals: int = 2) -> str:
    """Render a sweep grid exactly like the paper's Tables 7/8.

    Columns are labelled with paper-scale sizes; "<<<" marks cells where
    the cache exceeds the benchmark's data set.
    """
    headers = ["Trace"] + [format_size(s) for s in result.column_sizes]
    rows = []
    for name, cells in zip(result.row_names, result.cells):
        rendered = [
            TOO_BIG if value is None else f"{value:.{decimals}f}"
            for value in cells
        ]
        rows.append([name] + rendered)
    body = format_table(headers, rows)
    note = (
        f"{result.title}  (simulated at 1/{round(1 / result.scale)} scale; "
        "columns labelled at paper scale)"
    )
    return f"{note}\n{body}"


def render_series(
    title: str,
    x_label: str,
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    x_format=str,
    y_format=lambda v: f"{v:.3g}",
) -> str:
    """Render named (x, y) series — the textual equivalent of a figure."""
    lines = [title]
    for name, points in series.items():
        rendered = ", ".join(
            f"{x_format(x)}:{y_format(y)}" for x, y in points
        )
        lines.append(f"  {name:<28s} {x_label}: {rendered}")
    return "\n".join(lines)
