"""Experiment harnesses: one module per paper table/figure.

Each module exposes a ``run(...)`` function returning a structured result
plus a ``render(result)`` that prints the same rows/series as the paper.
The per-experiment index lives in DESIGN.md; paper-vs-measured numbers in
EXPERIMENTS.md.
"""

from repro.experiments.runner import ScaledAxis, SweepResult

__all__ = ["ScaledAxis", "SweepResult"]
