"""Table 2: application growth rates, checked empirically.

The analytic models (:mod:`repro.core.growth`) give the asymptotic forms;
this experiment validates the key scaling claims against *measured*
traffic from the actual trace generators and the MTC:

* TMM: quadrupling on-chip memory roughly halves traffic (sqrt(k) gain);
* Sort/FFT: the same quadrupling buys only a ~log factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.growth import MODELS, GrowthModel
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace
from repro.trace.synth import (
    fft_butterflies,
    merge_sort_passes,
    stencil_sweeps,
    tiled_matrix_multiply,
)


@dataclass(frozen=True, slots=True)
class Table2Row:
    algorithm: str
    memory: str
    computation: str
    traffic: str
    gain: str
    #: Analytic C/D improvement for a 4x memory increase.
    analytic_gain_4x: float
    #: Measured MTC-traffic ratio D(S) / D(4S) from the trace generators
    #: (None for models without a generator-backed check).
    measured_gain_4x: float | None


@dataclass(slots=True)
class Table2Result:
    rows: list[Table2Row]


def _measured_traffic(trace: MemTrace, size_bytes: int) -> int:
    mtc = MinimalTrafficCache(MTCConfig(size_bytes=size_bytes))
    return mtc.simulate(trace).total_traffic_bytes


def _generator_trace(name: str, n: int) -> MemTrace | None:
    if name == "TMM":
        pair = tiled_matrix_multiply(0, 4 * n * n * 4, 8 * n * n * 4, n, max(4, n // 8))
    elif name == "Stencil":
        pair = stencil_sweeps(0, n, iterations=8)
    elif name == "FFT":
        pair = fft_butterflies(0, n * n // 2)
    elif name == "Sort":
        pair = merge_sort_passes(0, n * n // 2)
    else:
        return None
    return MemTrace(pair[0], pair[1], name=name)


def run(*, n: int = 64, small_cache: int = 2048, analytic_n: int = 4096) -> Table2Result:
    """Build Table 2 with both analytic and measured gain columns.

    *n* sizes the generator-backed traces (a matrix side for TMM/Stencil,
    ``n^2/2`` points for FFT/Sort); *small_cache* is S, compared against
    4S. The analytic column uses a larger *analytic_n* so asymptotics
    dominate.
    """
    rows = []
    for model in MODELS:
        analytic = model.improvement(analytic_n, small_cache, 4.0)
        trace = _generator_trace(model.name, n)
        measured: float | None = None
        if trace is not None:
            d_small = _measured_traffic(trace, small_cache)
            d_large = _measured_traffic(trace, 4 * small_cache)
            if d_large > 0:
                measured = d_small / d_large
        rows.append(
            Table2Row(
                algorithm=model.name,
                memory=model.memory_exponent,
                computation=model.computation_formula,
                traffic=model.traffic_formula,
                gain=model.gain_formula,
                analytic_gain_4x=analytic,
                measured_gain_4x=measured,
            )
        )
    return Table2Result(rows=rows)


def render(result: Table2Result) -> str:
    from repro.util import format_table

    headers = [
        "Algorithm",
        "Memory",
        "Comp. (C)",
        "Traffic (D)",
        "C/D",
        "analytic 4x gain",
        "measured 4x gain",
    ]
    body = [
        [
            row.algorithm,
            row.memory,
            row.computation,
            row.traffic,
            row.gain,
            f"{row.analytic_gain_4x:.2f}",
            f"{row.measured_gain_4x:.2f}" if row.measured_gain_4x else "-",
        ]
        for row in result.rows
    ]
    return "Table 2: application growth rates\n" + format_table(headers, body)
