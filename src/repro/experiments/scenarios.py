"""Scenario traffic: Table 7 re-measured under parameterized patterns.

The paper's traffic-ratio and bandwidth-stall results are measured over
SPEC92/95 models. This experiment asks whether the headline conclusions
survive traffic that looks nothing like SPEC: Zipfian key popularity,
hotspot concentration, and bursty on/off phases — each alone and as a
four-tenant mix sharing one cache through the scenario interleaver
(:mod:`repro.scenario`).

Two measurements per scenario:

* the Table 7 sweep — traffic ratio R of a direct-mapped 32B-block
  write-back cache from 1 KB to 2 MB, with the paper's ">=64KB mean"
  summarised against the paper's SPEC92 value of 0.51;
* the paper's bandwidth-stall fraction f_B under the most aggressive
  processor (experiment F), from the three-simulation decomposition.

Scenario specs are committed below (seed and all); the sweep fans out
through the exec layer exactly like table7, so serial, parallel, and
cached runs produce identical grids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.traffic import mean_traffic_ratio
from repro.experiments.runner import ScaledAxis, SweepResult, sweep_grid
from repro.experiments.table7 import PAPER_MEAN_RATIO, RatioMeasure
from repro.scenario import ScenarioSpec, ScenarioWorkload

#: Decompositions run the slow timing model three times per scenario, so
#: their reference budget is capped independently of the sweep's.
DECOMPOSE_MAX_REFS = 12_000

#: The four-tenant mixes split one scenario's refs across four windows,
#: each half the single-tenant footprint, so total footprint (and hence
#: the "<<<" columns) stay comparable across the 1T/4T pairs.
_SINGLE = {"footprint": "1MB"}
_MIXED = {"footprint": "512KB"}

_PATTERNS = {
    "Zipf": {"kind": "zipfian", "alpha": 1.1},
    "Hot": {"kind": "hotspot", "hot_fraction": 0.05, "hot_prob": 0.9},
    "Burst": {"kind": "bursty", "burst_refs": 2048, "gap_refs": 256},
}

#: The committed scenario specs, in row order. Seeds live in the specs:
#: a scenario's content address covers everything that shapes its trace.
SCENARIO_SPECS: dict[str, dict] = {}
for _name, _pattern in _PATTERNS.items():
    SCENARIO_SPECS[f"{_name}-1T"] = {
        "name": f"{_name}-1T",
        "pattern": _pattern,
        "refs": 400_000,
        "seed": 0,
        **_SINGLE,
    }
    SCENARIO_SPECS[f"{_name}-4T"] = {
        "name": f"{_name}-4T",
        "tenants": [{"pattern": _pattern} for _ in range(4)],
        "refs": 400_000,
        "quantum": 64,
        "seed": 0,
        **_MIXED,
    }


def scenario_workloads() -> list[ScenarioWorkload]:
    """The committed scenarios as workloads, in row order."""
    return [
        ScenarioWorkload(ScenarioSpec.from_dict(body))
        for body in SCENARIO_SPECS.values()
    ]


@dataclass(frozen=True, slots=True)
class ScenarioDecomposition:
    """One scenario's f_B under experiment F."""

    name: str
    f_p: float
    f_l: float
    f_b: float


@dataclass(slots=True)
class ScenariosResult:
    sweep: SweepResult
    mean_ratio_64kb_up: float
    decompositions: list[ScenarioDecomposition]


def run(*, max_refs: int | None = None, seed: int = 0) -> ScenariosResult:
    """Measure traffic ratios and f_B for every committed scenario.

    *seed* is accepted for interface symmetry with table7 but only
    reaches the sweep's cache key and trace regeneration when it matches
    the specs' committed seeds (all 0); the scenarios themselves carry
    their seeds.
    """
    axis = ScaledAxis(scale=1.0)
    workloads = scenario_workloads()
    measure = RatioMeasure(seed=seed, max_refs=max_refs)

    sweep = sweep_grid(
        "Scenario traffic ratios (Table 7 re-measured)",
        workloads,
        axis,
        measure,
        cache_key={
            "experiment": "scenarios",
            "seed": seed,
            "max_refs": max_refs,
            "block_bytes": 32,
        },
    )

    # The paper's ">=64KB caches below the data set" mean. Scenarios run
    # at scale 1.0, so paper sizes and simulated sizes coincide and the
    # data-set bound is the spec's exact footprint.
    means = []
    for workload in workloads:
        mean = mean_traffic_ratio(
            sweep.defined_cells(workload.name),
            min_size=64 * 1024,
            dataset_bytes=workload.dataset_bytes(),
        )
        if mean == mean:  # not NaN
            means.append(mean)
    overall = sum(means) / len(means) if means else float("nan")

    # f_B under experiment F — run inline (not fanned out) so the slow
    # timing model sees a bounded trace and results never depend on the
    # exec context.
    from repro.cpu.configs import experiment
    from repro.cpu.machine import decompose_experiment

    config = experiment("F", "SPEC92")
    budget = (
        DECOMPOSE_MAX_REFS
        if max_refs is None
        else min(max_refs, DECOMPOSE_MAX_REFS)
    )
    decompositions = []
    for workload in workloads:
        result = decompose_experiment(
            workload, config, seed=seed, max_refs=budget
        )
        d = result.decomposition
        decompositions.append(
            ScenarioDecomposition(
                name=workload.name, f_p=d.f_p, f_l=d.f_l, f_b=d.f_b
            )
        )
    return ScenariosResult(
        sweep=sweep,
        mean_ratio_64kb_up=overall,
        decompositions=decompositions,
    )


def render(result: ScenariosResult) -> str:
    from repro.experiments.report import render_sweep
    from repro.util import format_table

    table = render_sweep(result.sweep)
    headers = ["Scenario", "f_P", "f_L", "f_B"]
    body = [
        [row.name, f"{row.f_p:.2f}", f"{row.f_l:.2f}", f"{row.f_b:.2f}"]
        for row in result.decompositions
    ]
    decomp = format_table(headers, body)
    return (
        f"{table}\n"
        f"Mean R for >=64KB caches below data-set size: "
        f"{result.mean_ratio_64kb_up:.2f} "
        f"(paper SPEC92 value: {PAPER_MEAN_RATIO})\n"
        f"\nExecution-time decomposition under experiment F:\n"
        f"{decomp}\n"
        f"Reading: if f_B stays significant under Zipfian/hotspot/bursty "
        f"traffic, the paper's bandwidth wall is a property of the "
        f"hierarchy, not of SPEC."
    )
