"""Figure 4: total traffic vs cache size, caches against the MTC.

Log-log curves for Compress, Eqntott, and Swm: 4-way set-associative
caches at block sizes 4 B-128 B, against the fully-associative MIN MTC in
both write-allocate and write-validate flavours. Large vertical gaps
between a cache curve and the MTC curve are the traffic inefficiencies of
Table 8 made visible; block size is the dominant visible factor for
Compress, write-validate for Eqntott, associativity for Swm at the
data-set boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ScaledAxis
from repro.mem.cache import AllocatePolicy, Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace
from repro.util import powers_of_two
from repro.workloads.base import DEFAULT_SCALE
from repro.workloads.registry import get_workload

#: The paper's Figure 4 panels.
BENCHMARKS = ("Compress", "Eqntott", "Swm")
BLOCK_SIZES = (4, 8, 16, 32, 64, 128)


@dataclass(slots=True)
class Figure4Panel:
    benchmark: str
    #: paper-scale cache sizes on the x axis.
    sizes: list[int]
    #: block size -> traffic (bytes) per size; 4-way caches.
    cache_series: dict[int, list[int]]
    mtc_write_allocate: list[int]
    mtc_write_validate: list[int]


@dataclass(slots=True)
class Figure4Result:
    panels: dict[str, Figure4Panel]
    scale: float


def _cache_traffic(trace: MemTrace, size: int, block: int) -> int:
    config = CacheConfig(
        size_bytes=size,
        block_bytes=block,
        associativity=min(4, size // block),
    )
    return Cache(config).simulate(trace).total_traffic_bytes


def _mtc_traffic(trace: MemTrace, size: int, allocate: AllocatePolicy) -> int:
    mtc = MinimalTrafficCache(
        MTCConfig(size_bytes=size, allocate=allocate, bypass=True)
    )
    return mtc.simulate(trace).total_traffic_bytes


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = 150_000,
    seed: int = 0,
    benchmarks: tuple[str, ...] = BENCHMARKS,
    min_size: int = 1024,
    max_size: int = 1024 * 1024,
) -> Figure4Result:
    """Measure every Figure 4 curve.

    The paper's x axis starts at 64 B caches; scaled simulation starts at
    1 KB (paper scale) so that even the smallest cache keeps a few sets.
    """
    axis = ScaledAxis(scale=scale)
    sizes = powers_of_two(min_size, max_size)
    panels: dict[str, Figure4Panel] = {}
    for name in benchmarks:
        workload = get_workload(name, scale=scale)
        trace = workload.generate(seed=seed, max_refs=max_refs)
        cache_series: dict[int, list[int]] = {}
        for block in BLOCK_SIZES:
            series = []
            for paper_size in sizes:
                simulated = axis.simulated_size(paper_size)
                if simulated < block * 4:
                    series.append(-1)  # cache too small for this block
                    continue
                series.append(_cache_traffic(trace, simulated, block))
            cache_series[block] = series
        panels[name] = Figure4Panel(
            benchmark=name,
            sizes=sizes,
            cache_series=cache_series,
            mtc_write_allocate=[
                _mtc_traffic(
                    trace, axis.simulated_size(s), AllocatePolicy.WRITE_ALLOCATE
                )
                for s in sizes
            ],
            mtc_write_validate=[
                _mtc_traffic(
                    trace, axis.simulated_size(s), AllocatePolicy.WRITE_VALIDATE
                )
                for s in sizes
            ],
        )
    return Figure4Result(panels=panels, scale=scale)


def render(result: Figure4Result) -> str:
    from repro.util import format_size

    lines = ["Figure 4: total traffic (KB) by cache/MTC size"]
    for panel in result.panels.values():
        lines.append(f"  {panel.benchmark}")
        header = "    {:<18s}".format("series") + "".join(
            f"{format_size(s):>9s}" for s in panel.sizes
        )
        lines.append(header)
        for block, series in panel.cache_series.items():
            cells = "".join(
                f"{value / 1024:>9.0f}" if value >= 0 else f"{'-':>9s}"
                for value in series
            )
            lines.append(f"    {f'{block}B blocks':<18s}{cells}")
        for label, series in (
            ("MTC (WA)", panel.mtc_write_allocate),
            ("MTC (WV)", panel.mtc_write_validate),
        ):
            cells = "".join(f"{value / 1024:>9.0f}" for value in series)
            lines.append(f"    {label:<18s}{cells}")
    return "\n".join(lines)
