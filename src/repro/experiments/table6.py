"""Table 6: latency vs bandwidth stalls, experiment A vs experiment F.

The paper's crux table: for the non-cache-bound benchmarks, f_L exceeds
f_B on the baseline machine (A) for every benchmark but one, and the
relation *reverses* on the aggressively latency-tolerant machine (F) for
every benchmark but two (Vortex and Perl, whose f_B is still significant).
Values are percentages of total execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import figure3
from repro.workloads.base import DEFAULT_SCALE

#: The paper's Table 6 (percent of execution time): benchmark ->
#: (f_L at A, f_B at A, f_L at F, f_B at F). Perl has no A entry ("---").
PAPER_TABLE6: dict[str, tuple[float | None, float | None, float, float]] = {
    "Compress": (46.8, 3.2, 25.6, 31.0),
    "Su2cor": (24.6, 2.6, 3.5, 16.3),
    "Tomcatv": (30.0, 2.1, 5.1, 18.4),
    "Applu": (10.9, 15.0, 4.0, 11.0),
    "Hydro2D": (29.4, 11.8, 20.6, 24.8),
    "Perl": (None, None, 37.0, 16.0),
    "Swim95": (25.2, 6.0, 3.1, 24.1),
    "Vortex": (40.6, 14.9, 56.1, 16.7),
}

#: The cache-bound benchmarks the paper excludes from this comparison.
CACHE_BOUND = ("Espresso", "Eqntott", "Li")


@dataclass(frozen=True, slots=True)
class Table6Row:
    benchmark: str
    f_l_a: float
    f_b_a: float
    f_l_f: float
    f_b_f: float

    @property
    def reverses(self) -> bool:
        """True when latency dominates at A but bandwidth dominates at F."""
        return self.f_l_a > self.f_b_a and self.f_b_f > self.f_l_f


@dataclass(slots=True)
class Table6Result:
    rows: list[Table6Row]


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = 40_000,
    seed: int = 0,
) -> Table6Result:
    """Measure f_L/f_B under experiments A and F for both suites."""
    rows: list[Table6Row] = []
    for suite, names in (
        ("SPEC92", ("Compress", "Su2cor", "Swm", "Tomcatv")),
        ("SPEC95", ("Applu", "Hydro2D", "Perl", "Swim95", "Vortex")),
    ):
        result = figure3.run(
            suite,
            scale=scale,
            max_refs=max_refs,
            seed=seed,
            experiments=("A", "F"),
            benchmarks=list(names),
        )
        for name in names:
            bar_a = result.bar(name, "A").decomposition
            bar_f = result.bar(name, "F").decomposition
            rows.append(
                Table6Row(
                    benchmark=name,
                    f_l_a=100.0 * bar_a.f_l,
                    f_b_a=100.0 * bar_a.f_b,
                    f_l_f=100.0 * bar_f.f_l,
                    f_b_f=100.0 * bar_f.f_b,
                )
            )
    return Table6Result(rows=rows)


def render(result: Table6Result) -> str:
    from repro.util import format_table

    headers = ["Benchmark", "A: f_L%", "A: f_B%", "F: f_L%", "F: f_B%", "reversed"]
    body = [
        [
            row.benchmark,
            f"{row.f_l_a:.1f}",
            f"{row.f_b_a:.1f}",
            f"{row.f_l_f:.1f}",
            f"{row.f_b_f:.1f}",
            "yes" if row.reverses else "no",
        ]
        for row in result.rows
    ]
    return "Table 6: latency vs bandwidth stalls (A vs F)\n" + format_table(
        headers, body
    )
