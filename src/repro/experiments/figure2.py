"""Figure 2: the processing-vs-bandwidth balance argument, quantified.

The paper's Figure 2 is qualitative: processor bandwidth (arrow 1)
outgrows pin bandwidth while growing on-chip memory (arrow 2) cuts
traffic. This experiment runs the balance schedule for each Table 2
algorithm and reports, per year, whether a machine on that technology
curve is bandwidth-bound — and how fast processing must grow for the
balance to hold (the paper: the square root of the memory growth for
TMM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.growth import MODELS, BalancePoint, GrowthModel, balance_schedule


@dataclass(frozen=True, slots=True)
class Figure2Result:
    schedules: dict[str, list[BalancePoint]]
    #: Per-algorithm: the processing growth rate that exactly balances a
    #: 4x memory increase (sqrt for TMM, 4x for stencil, ...).
    balancing_growth: dict[str, float]


def run(
    *,
    n: int = 1 << 20,
    ops_growth: float = 1.6,
    pin_bw_growth: float = 1.25,
    memory_growth: float = 1.6,
) -> Figure2Result:
    """Compute the balance schedules for all Table 2 algorithms."""
    schedules = {
        model.name: balance_schedule(
            model,
            n,
            ops_growth=ops_growth,
            pin_bw_growth=pin_bw_growth,
            memory_growth=memory_growth,
        )
        for model in MODELS
    }
    balancing = {
        model.name: _balancing_growth(model, n)
        for model in MODELS
    }
    return Figure2Result(schedules=schedules, balancing_growth=balancing)


def _balancing_growth(model: GrowthModel, n: int, s: int = 4096) -> float:
    """C/D gain of a 4x memory increase = max processing speedup the same
    pin bandwidth can feed (the paper's Section 2.4 argument)."""
    return model.improvement(n, s, 4.0)


def render(result: Figure2Result) -> str:
    lines = ["Figure 2: processing vs bandwidth balance"]
    for name, schedule in result.schedules.items():
        crossover = next(
            (p.year for p in schedule if p.bandwidth_bound), None
        )
        gain = result.balancing_growth[name]
        where = f"bandwidth-bound from {crossover}" if crossover else "never bound"
        lines.append(
            f"  {name:<8s} C/D gain for 4x memory: {gain:.2f}x; {where}"
        )
    return "\n".join(lines)
