"""Shared experiment machinery: the scaled cache-size axis and sweeps.

The paper sweeps caches from 1 KB to 2 MB against SPEC92 data sets of
0.04-3.67 MB. This library scales benchmark footprints down by a power of
two (see DESIGN.md §5) and shifts the cache axis by the same factor, so
every cache-size/working-set crossover lands in the same table column as
the paper. :class:`ScaledAxis` owns that bookkeeping: experiments and
reports always *label* rows with the paper's sizes while *simulating* the
scaled ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs import OBS, TRACER
from repro.util import format_size, powers_of_two, require_power_of_two
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload

#: The paper's Table 7/8 cache-size columns.
PAPER_CACHE_SIZES = tuple(powers_of_two(1024, 2 * 1024 * 1024))

#: Marker the paper prints when the cache exceeds the benchmark data set.
TOO_BIG = "<<<"


@dataclass(frozen=True, slots=True)
class ScaledAxis:
    """Maps between paper-scale cache sizes and simulated sizes."""

    scale: float = DEFAULT_SCALE
    paper_sizes: tuple[int, ...] = PAPER_CACHE_SIZES

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.scale > 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")
        inverse = round(1.0 / self.scale)
        require_power_of_two(inverse, "1/scale")

    def simulated_size(self, paper_size: int) -> int:
        """The cache size actually simulated for a paper-scale column."""
        scaled = int(paper_size * self.scale)
        if scaled < 64:
            raise ConfigurationError(
                f"paper size {format_size(paper_size)} scales below the "
                f"64B minimum at scale {self.scale:g}"
            )
        return scaled

    def label(self, paper_size: int) -> str:
        """Column label, always in the paper's units."""
        return format_size(paper_size)

    def is_too_big(self, paper_size: int, workload: SyntheticWorkload) -> bool:
        """The paper's "<<<" condition: cache larger than the data set.

        Both quantities are compared at simulated scale; because they are
        scaled by the same factor this matches the paper's paper-scale
        comparison.
        """
        return self.simulated_size(paper_size) > workload.dataset_bytes()


@dataclass(slots=True)
class SweepResult:
    """A (benchmark x cache size) grid of measured values."""

    title: str
    row_names: list[str]
    column_sizes: list[int]  #: paper-scale sizes
    #: cells[row][col] is a float or None for the paper's "<<<" cells.
    cells: list[list[float | None]]
    scale: float = DEFAULT_SCALE

    def row(self, name: str) -> list[float | None]:
        try:
            index = self.row_names.index(name)
        except ValueError as exc:
            raise ConfigurationError(f"no row named {name!r}") from exc
        return self.cells[index]

    def cell(self, name: str, paper_size: int) -> float | None:
        try:
            column = self.column_sizes.index(paper_size)
        except ValueError as exc:
            raise ConfigurationError(
                f"no column for size {format_size(paper_size)}"
            ) from exc
        return self.row(name)[column]

    def defined_cells(self, name: str) -> list[tuple[int, float]]:
        """(paper size, value) pairs for all non-"<<<" cells of a row."""
        return [
            (size, value)
            for size, value in zip(self.column_sizes, self.row(name))
            if value is not None
        ]


def _require_unique_row_names(
    workloads: Sequence[SyntheticWorkload],
) -> list[str]:
    """Reject duplicate workload names before they can corrupt a grid.

    ``SweepResult.row()``/``cell()`` look rows up by name, so a duplicate
    would silently shadow every later row with the first one's data.
    """
    names = [w.name for w in workloads]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ConfigurationError(
            "duplicate workload row names in sweep: "
            + ", ".join(duplicates)
            + " (row()/cell() lookups would return only the first row)"
        )
    return names


#: One planned grid cell: (column index, paper-scale size, simulated size).
_CellPlan = tuple[int, int, int]


def _plan_rows(
    workloads: Sequence[SyntheticWorkload],
    axis: ScaledAxis,
    size_list: Sequence[int],
    full: set[str] | frozenset[str],
) -> list[list[_CellPlan]]:
    """The defined (non-"<<<") cells of every row, decided in the parent
    process so serial, parallel, and cached runs agree exactly."""
    plans: list[list[_CellPlan]] = []
    for workload in workloads:
        plan: list[_CellPlan] = []
        for column, paper_size in enumerate(size_list):
            if workload.name not in full and axis.is_too_big(
                paper_size, workload
            ):
                continue
            plan.append((column, paper_size, axis.simulated_size(paper_size)))
        plans.append(plan)
    return plans


def _row_values(
    measure: Callable[[SyntheticWorkload, int], object],
    workload: SyntheticWorkload,
    simulated_sizes: Sequence[int],
) -> list[object]:
    """One row through a measure's whole-row path, shape-checked."""
    values = list(measure.measure_row(workload, simulated_sizes))
    if len(values) != len(simulated_sizes):
        raise ConfigurationError(
            f"measure_row returned {len(values)} values for "
            f"{len(simulated_sizes)} sizes ({workload.name})"
        )
    return values


def _measure_row(
    measure: Callable[[SyntheticWorkload, int], object],
    workload: SyntheticWorkload,
    simulated_sizes: Sequence[int],
) -> dict[str, list]:
    """Top-level (hence picklable) row task: one workload, all its cells.

    Measures exposing ``measure_row(workload, simulated_sizes)`` (the
    one-pass multi-size engines of table7/table8) evaluate the whole row
    in one call; only row-level timing exists then, reported as
    ``row_seconds`` with per-cell ``seconds`` of ``None``.
    """
    if hasattr(measure, "measure_row"):
        start = time.perf_counter()
        if TRACER.enabled:
            with TRACER.span(
                "sweep.row",
                workload=workload.name,
                sizes=len(simulated_sizes),
            ):
                values = _row_values(measure, workload, simulated_sizes)
        else:
            values = _row_values(measure, workload, simulated_sizes)
        elapsed = time.perf_counter() - start
        return {
            "values": values,
            "seconds": [None] * len(values),
            "row_seconds": elapsed,
        }
    values: list[object] = []
    seconds: list[float] = []
    for simulated in simulated_sizes:
        start = time.perf_counter()
        if TRACER.enabled:
            with TRACER.span(
                "sweep.cell", workload=workload.name, simulated_size=simulated
            ):
                values.append(measure(workload, simulated))
        else:
            values.append(measure(workload, simulated))
        seconds.append(time.perf_counter() - start)
    return {"values": values, "seconds": seconds, "row_seconds": None}


def _evaluate_serial(
    title: str,
    workloads: Sequence[SyntheticWorkload],
    size_list: Sequence[int],
    plans: Sequence[Sequence[_CellPlan]],
    measure: Callable[[SyntheticWorkload, int], object],
) -> list[list[object | None]]:
    """The classic in-process path (jobs=1, no cache): zero new moving
    parts, identical instrumentation to the pre-exec-layer runner."""
    observed = OBS.enabled
    row_capable = hasattr(measure, "measure_row")
    rows: list[list[object | None]] = []
    with OBS.span("sweep", title=title):
        for workload, plan in zip(workloads, plans):
            row: list[object | None] = [None] * len(size_list)
            if row_capable and plan:
                simulated_sizes = [simulated for _, _, simulated in plan]
                start = time.perf_counter()
                if TRACER.enabled:
                    with TRACER.span(
                        "sweep.row",
                        workload=workload.name,
                        sizes=len(simulated_sizes),
                    ):
                        values = _row_values(measure, workload, simulated_sizes)
                else:
                    values = _row_values(measure, workload, simulated_sizes)
                elapsed = time.perf_counter() - start
                for (column, paper_size, simulated), value in zip(plan, values):
                    row[column] = value
                    if observed:
                        OBS.count("sweep.cells")
                        OBS.emit(
                            "sweep.cell",
                            title=title,
                            workload=workload.name,
                            paper_size=paper_size,
                            simulated_size=simulated,
                            value=value,
                        )
                if observed:
                    OBS.observe("sweep.row", elapsed)
                rows.append(row)
                continue
            for column, paper_size, simulated in plan:
                if not (observed or TRACER.enabled):
                    row[column] = measure(workload, simulated)
                    continue
                start = time.perf_counter()
                if TRACER.enabled:
                    with TRACER.span(
                        "sweep.cell",
                        workload=workload.name,
                        simulated_size=simulated,
                    ):
                        value = measure(workload, simulated)
                else:
                    value = measure(workload, simulated)
                if not observed:
                    row[column] = value
                    continue
                OBS.observe("sweep.measure", time.perf_counter() - start)
                OBS.count("sweep.cells")
                OBS.emit(
                    "sweep.cell",
                    title=title,
                    workload=workload.name,
                    paper_size=paper_size,
                    simulated_size=simulated,
                    value=value,
                )
                row[column] = value
            rows.append(row)
    return rows


def evaluate_grid(
    title: str,
    workloads: Sequence[SyntheticWorkload],
    axis: ScaledAxis,
    measure: Callable[[SyntheticWorkload, int], object],
    *,
    sizes: Iterable[int] | None = None,
    full_rows: set[str] | frozenset[str] | None = None,
    cache_key: dict | None = None,
) -> tuple[list[int], list[list[object | None]]]:
    """Evaluate *measure(workload, simulated_size)* over the full grid.

    Returns ``(size_list, rows)`` where undefined ("<<<") cells are
    ``None``. Values may be any JSON-stable object (floats, or lists of
    numbers for multi-component measurements such as Table 8's).

    Execution honours the process-wide :data:`repro.exec.EXEC` context:
    with ``jobs > 1`` rows fan out across worker processes (results are
    merged in row order, so grids are identical to serial runs), and
    when a result cache is configured *and* the caller supplies
    *cache_key* — material pinning everything the measurement depends on
    beyond (workload, size): seed, reference budget, simulator config —
    previously computed rows are reused from disk. With the default
    context (serial, uncached) this is exactly the classic runner.

    A measure may additionally expose ``measure_row(workload,
    simulated_sizes) -> list`` to evaluate a whole row at once — the
    one-pass multi-size engines (:mod:`repro.mem.engines`) compute every
    size of a row from a single pass over the trace. Row measures are
    bit-identical to per-cell measurement, so grids (and cache keys) do
    not depend on which path ran; only the timing telemetry differs
    (``sweep.row`` instead of per-cell ``sweep.measure``).
    """
    size_list = list(sizes) if sizes is not None else list(axis.paper_sizes)
    full = full_rows or set()
    _require_unique_row_names(workloads)
    plans = _plan_rows(workloads, axis, size_list, full)

    from repro.exec import (
        EXEC,
        Task,
        code_epoch,
        run_tasks,
        sampling_key,
        workload_key,
    )

    cache = EXEC.cache if cache_key is not None else None
    if EXEC.jobs == 1 and cache is None:
        return size_list, _evaluate_serial(
            title, workloads, size_list, plans, measure
        )

    tasks = []
    for workload, plan in zip(workloads, plans):
        simulated_sizes = [simulated for _, _, simulated in plan]
        key = None
        if cache is not None:
            key = {
                "kind": "sweep-row",
                "title": title,
                "epoch": code_epoch(),
                "workload": workload_key(workload),
                "sizes": simulated_sizes,
                "measure": cache_key,
            }
            # Sampled runs are estimates keyed by (rate, seed, strata);
            # exact keys stay byte-identical to historical entries.
            sampling = sampling_key()
            if sampling is not None:
                key["sampling"] = sampling
        tasks.append(
            Task(
                fn=_measure_row,
                args=(measure, workload, simulated_sizes),
                key=key,
                label=f"{title}:{workload.name}",
            )
        )
    outcomes = run_tasks(tasks, jobs=EXEC.jobs, cache=cache, retry=EXEC.retry)

    observed = OBS.enabled
    rows: list[list[object | None]] = []
    with OBS.span("sweep", title=title):
        for workload, plan, outcome in zip(workloads, plans, outcomes):
            row: list[object | None] = [None] * len(size_list)
            for (column, paper_size, simulated), value, seconds in zip(
                plan, outcome["values"], outcome["seconds"]
            ):
                if observed:
                    if seconds is not None:
                        OBS.observe("sweep.measure", seconds)
                    OBS.count("sweep.cells")
                    OBS.emit(
                        "sweep.cell",
                        title=title,
                        workload=workload.name,
                        paper_size=paper_size,
                        simulated_size=simulated,
                        value=value,
                    )
                row[column] = value
            if observed and outcome.get("row_seconds") is not None:
                OBS.observe("sweep.row", outcome["row_seconds"])
            rows.append(row)
    return size_list, rows


def sweep_grid(
    title: str,
    workloads: Sequence[SyntheticWorkload],
    axis: ScaledAxis,
    measure: Callable[[SyntheticWorkload, int], float],
    *,
    sizes: Iterable[int] | None = None,
    full_rows: set[str] | frozenset[str] | None = None,
    cache_key: dict | None = None,
) -> SweepResult:
    """Evaluate *measure(workload, simulated_size)* over the full grid.

    Cells where the cache exceeds the (scaled) data set are recorded as
    ``None`` — the paper's "<<<" — and the measurement is skipped.
    Workloads named in *full_rows* are measured at every size regardless
    (the paper itself makes this exception for Swm in Table 8). See
    :func:`evaluate_grid` for parallel/cached execution semantics.
    """
    size_list, rows = evaluate_grid(
        title,
        workloads,
        axis,
        measure,
        sizes=sizes,
        full_rows=full_rows,
        cache_key=cache_key,
    )
    return SweepResult(
        title=title,
        row_names=[w.name for w in workloads],
        column_sizes=size_list,
        cells=rows,
        scale=axis.scale,
    )
