"""Shared experiment machinery: the scaled cache-size axis and sweeps.

The paper sweeps caches from 1 KB to 2 MB against SPEC92 data sets of
0.04-3.67 MB. This library scales benchmark footprints down by a power of
two (see DESIGN.md §5) and shifts the cache axis by the same factor, so
every cache-size/working-set crossover lands in the same table column as
the paper. :class:`ScaledAxis` owns that bookkeeping: experiments and
reports always *label* rows with the paper's sizes while *simulating* the
scaled ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.util import format_size, powers_of_two, require_power_of_two
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload

#: The paper's Table 7/8 cache-size columns.
PAPER_CACHE_SIZES = tuple(powers_of_two(1024, 2 * 1024 * 1024))

#: Marker the paper prints when the cache exceeds the benchmark data set.
TOO_BIG = "<<<"


@dataclass(frozen=True, slots=True)
class ScaledAxis:
    """Maps between paper-scale cache sizes and simulated sizes."""

    scale: float = DEFAULT_SCALE
    paper_sizes: tuple[int, ...] = PAPER_CACHE_SIZES

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.scale > 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")
        inverse = round(1.0 / self.scale)
        require_power_of_two(inverse, "1/scale")

    def simulated_size(self, paper_size: int) -> int:
        """The cache size actually simulated for a paper-scale column."""
        scaled = int(paper_size * self.scale)
        if scaled < 64:
            raise ConfigurationError(
                f"paper size {format_size(paper_size)} scales below the "
                f"64B minimum at scale {self.scale:g}"
            )
        return scaled

    def label(self, paper_size: int) -> str:
        """Column label, always in the paper's units."""
        return format_size(paper_size)

    def is_too_big(self, paper_size: int, workload: SyntheticWorkload) -> bool:
        """The paper's "<<<" condition: cache larger than the data set.

        Both quantities are compared at simulated scale; because they are
        scaled by the same factor this matches the paper's paper-scale
        comparison.
        """
        return self.simulated_size(paper_size) > workload.dataset_bytes()


@dataclass(slots=True)
class SweepResult:
    """A (benchmark x cache size) grid of measured values."""

    title: str
    row_names: list[str]
    column_sizes: list[int]  #: paper-scale sizes
    #: cells[row][col] is a float or None for the paper's "<<<" cells.
    cells: list[list[float | None]]
    scale: float = DEFAULT_SCALE

    def row(self, name: str) -> list[float | None]:
        try:
            index = self.row_names.index(name)
        except ValueError as exc:
            raise ConfigurationError(f"no row named {name!r}") from exc
        return self.cells[index]

    def cell(self, name: str, paper_size: int) -> float | None:
        try:
            column = self.column_sizes.index(paper_size)
        except ValueError as exc:
            raise ConfigurationError(
                f"no column for size {format_size(paper_size)}"
            ) from exc
        return self.row(name)[column]

    def defined_cells(self, name: str) -> list[tuple[int, float]]:
        """(paper size, value) pairs for all non-"<<<" cells of a row."""
        return [
            (size, value)
            for size, value in zip(self.column_sizes, self.row(name))
            if value is not None
        ]


def sweep_grid(
    title: str,
    workloads: Sequence[SyntheticWorkload],
    axis: ScaledAxis,
    measure: Callable[[SyntheticWorkload, int], float],
    *,
    sizes: Iterable[int] | None = None,
    full_rows: set[str] | frozenset[str] | None = None,
) -> SweepResult:
    """Evaluate *measure(workload, simulated_size)* over the full grid.

    Cells where the cache exceeds the (scaled) data set are recorded as
    ``None`` — the paper's "<<<" — and the measurement is skipped.
    Workloads named in *full_rows* are measured at every size regardless
    (the paper itself makes this exception for Swm in Table 8).
    """
    size_list = list(sizes) if sizes is not None else list(axis.paper_sizes)
    full = full_rows or set()
    observed = OBS.enabled
    rows: list[list[float | None]] = []
    with OBS.span("sweep", title=title):
        for workload in workloads:
            row: list[float | None] = []
            for paper_size in size_list:
                if workload.name not in full and axis.is_too_big(
                    paper_size, workload
                ):
                    row.append(None)
                    continue
                simulated = axis.simulated_size(paper_size)
                if not observed:
                    row.append(measure(workload, simulated))
                    continue
                start = time.perf_counter()
                value = measure(workload, simulated)
                OBS.observe("sweep.measure", time.perf_counter() - start)
                OBS.count("sweep.cells")
                OBS.emit(
                    "sweep.cell",
                    title=title,
                    workload=workload.name,
                    paper_size=paper_size,
                    simulated_size=simulated,
                    value=value,
                )
                row.append(value)
            rows.append(row)
    return SweepResult(
        title=title,
        row_names=[w.name for w in workloads],
        column_sizes=size_list,
        cells=rows,
        scale=axis.scale,
    )
