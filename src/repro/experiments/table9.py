"""Tables 9 and 10: decomposing the traffic-inefficiency gap by factor.

Table 10 defines five experiment pairs, each toggling one factor; Table 9
reports, per benchmark, how much of the cache/MTC traffic gap each factor
closes. The paper's findings this reproduces:

* no single factor dominates across all benchmarks;
* block-size reduction is the largest consistent contributor;
* MIN replacement has "surprisingly small effect";
* write-validate is huge for Eqntott, negligible elsewhere;
* associativity is the dominant factor for Espresso.

Factor values follow the paper's semantics: "the change in traffic
inefficiency as each factor is toggled", i.e. ``(D_exp1 - D_exp2) /
D_MTC`` with the standard word-grain MTC of Table 8 as the denominator.
Negative values (the paper's Dnasa2 associativity row is -3.8) mean the
"improvement" actually increased traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.runner import ScaledAxis
from repro.mem.cache import AllocatePolicy, Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace
from repro.workloads.base import DEFAULT_SCALE
from repro.workloads.registry import get_workload

#: Table 9's cache size per benchmark (paper scale): 64 KB except
#: Espresso, "to which we assigned a cache size of 16KB (because of its
#: small data set)".
CACHE_SIZE_FOR: dict[str, int] = {
    "Compress": 64 * 1024,
    "Dnasa2": 64 * 1024,
    "Eqntott": 64 * 1024,
    "Espresso": 16 * 1024,
    "Su2cor": 64 * 1024,
    "Swm": 64 * 1024,
    "Tomcatv": 64 * 1024,
}

#: The paper's Table 9 values (gap closed per factor), for comparison.
PAPER_TABLE9: dict[str, dict[str, float]] = {
    "Compress": {"associativity": 1.8, "replacement": 12.0, "blocksize_cache": 25.0, "blocksize_mtc": 14.0, "write_validate": 1.2},
    "Dnasa2": {"associativity": -3.8, "replacement": 8.4, "blocksize_cache": 2.7, "blocksize_mtc": 0.4, "write_validate": 1.2},
    "Eqntott": {"associativity": 0.5, "replacement": 31.0, "blocksize_cache": 47.0, "blocksize_mtc": 37.0, "write_validate": 31.0},
    "Espresso": {"associativity": 73.0, "replacement": 3.9, "blocksize_cache": 68.0, "blocksize_mtc": 3.5, "write_validate": 1.0},
    "Su2cor": {"associativity": 8.4, "replacement": 4.6, "blocksize_cache": 14.0, "blocksize_mtc": 5.0, "write_validate": 1.2},
    "Swm": {"associativity": 0.1, "replacement": 0.3, "blocksize_cache": 0.3, "blocksize_mtc": 0.3, "write_validate": 1.3},
    "Tomcatv": {"associativity": 1.6, "replacement": 0.0, "blocksize_cache": 1.3, "blocksize_mtc": 0.2, "write_validate": 0.7},
}

#: Table 10: the experiment pairs isolating each factor.
#: Entries are (description of Exp1, description of Exp2).
TABLE10 = {
    "associativity": ("LRU, 1-way, 32B, WA", "LRU, fully-assoc, 32B, WA"),
    "replacement": ("LRU, fully-assoc, 32B, WA", "MIN, fully-assoc, 32B, WA"),
    "blocksize_cache": ("LRU, 1-way, 32B, WA", "LRU, 1-way, 4B, WA"),
    "blocksize_mtc": ("MIN, fully-assoc, 32B, WA", "MIN, fully-assoc, 4B, WA"),
    "write_validate": ("MIN, fully-assoc, 4B, WA", "MIN, fully-assoc, 4B, WV"),
}

FACTORS = tuple(TABLE10)


@dataclass(slots=True)
class Table9Result:
    #: benchmark -> factor -> measured delta-G (see module docstring).
    factors: dict[str, dict[str, float]]
    cache_sizes: dict[str, int]
    scale: float


def _traffic(
    trace: MemTrace,
    size: int,
    *,
    replacement: str,
    fully_associative: bool,
    block: int,
    allocate: AllocatePolicy,
) -> int:
    """Total traffic of one Table 10 configuration."""
    if replacement == "min" and fully_associative:
        # The MIN fully-associative configurations are exactly the MTC
        # engine with bypass disabled (Table 10 isolates replacement, not
        # bypassing, which the paper leaves unisolated).
        mtc = MinimalTrafficCache(
            MTCConfig(
                size_bytes=size,
                block_bytes=block,
                allocate=allocate,
                bypass=False,
            )
        )
        return mtc.simulate(trace).total_traffic_bytes
    if fully_associative:
        config = CacheConfig.fully_associative(
            size,
            block,
            replacement=replacement,
            allocate=allocate,
        )
    else:
        config = CacheConfig(
            size_bytes=size,
            block_bytes=block,
            associativity=1,
            replacement=replacement,
            allocate=allocate,
        )
    return Cache(config).simulate(trace).total_traffic_bytes


def measure_factors(trace: MemTrace, size: int) -> dict[str, float]:
    """All five Table 9 factors for one trace at one (simulated) size."""
    wa = AllocatePolicy.WRITE_ALLOCATE
    wv = AllocatePolicy.WRITE_VALIDATE
    configs = {
        "lru_dm_32_wa": dict(replacement="lru", fully_associative=False, block=32, allocate=wa),
        "lru_fa_32_wa": dict(replacement="lru", fully_associative=True, block=32, allocate=wa),
        "lru_dm_4_wa": dict(replacement="lru", fully_associative=False, block=4, allocate=wa),
        "min_fa_32_wa": dict(replacement="min", fully_associative=True, block=32, allocate=wa),
        "min_fa_4_wa": dict(replacement="min", fully_associative=True, block=4, allocate=wa),
        "min_fa_4_wv": dict(replacement="min", fully_associative=True, block=4, allocate=wv),
    }
    traffic = {
        name: _traffic(trace, size, **kwargs) for name, kwargs in configs.items()
    }
    mtc_traffic = MinimalTrafficCache(
        MTCConfig(size_bytes=size)
    ).simulate(trace).total_traffic_bytes
    if mtc_traffic == 0:
        raise ConfigurationError("MTC generated zero traffic")

    def delta_g(exp1: str, exp2: str) -> float:
        return (traffic[exp1] - traffic[exp2]) / mtc_traffic

    return {
        "associativity": delta_g("lru_dm_32_wa", "lru_fa_32_wa"),
        "replacement": delta_g("lru_fa_32_wa", "min_fa_32_wa"),
        "blocksize_cache": delta_g("lru_dm_32_wa", "lru_dm_4_wa"),
        "blocksize_mtc": delta_g("min_fa_32_wa", "min_fa_4_wa"),
        "write_validate": delta_g("min_fa_4_wa", "min_fa_4_wv"),
    }


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = 150_000,
    seed: int = 0,
    benchmarks: tuple[str, ...] = tuple(CACHE_SIZE_FOR),
) -> Table9Result:
    """Measure the factor decomposition for every Table 9 benchmark."""
    axis = ScaledAxis(scale=scale)
    factors: dict[str, dict[str, float]] = {}
    sizes: dict[str, int] = {}
    for name in benchmarks:
        workload = get_workload(name, scale=scale)
        trace = workload.generate(seed=seed, max_refs=max_refs)
        paper_size = CACHE_SIZE_FOR[name]
        simulated = axis.simulated_size(paper_size)
        sizes[name] = paper_size
        factors[name] = measure_factors(trace, simulated)
    return Table9Result(factors=factors, cache_sizes=sizes, scale=scale)


def render(result: Table9Result) -> str:
    from repro.util import format_size, format_table

    headers = ["Benchmark", "Cache"] + list(FACTORS)
    rows = []
    for name, values in result.factors.items():
        rows.append(
            [name, format_size(result.cache_sizes[name])]
            + [f"{values[f]:.1f}" for f in FACTORS]
        )
    return (
        "Table 9: inefficiency gap closed per factor (delta G)\n"
        + format_table(headers, rows)
    )
