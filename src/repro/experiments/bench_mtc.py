"""Benchmark: minimal-traffic-cache simulation, scalar vs miss-jumping engine.

Runs every SPEC92 benchmark through a ladder of MTC sizes twice — the
scalar two-pass loop versus the miss-jumping fast engine with one shared
pass-1 product across the whole ladder — asserting identical traffic
before reporting per-engine throughput. This is the ``repro profile
bench_mtc`` target; the aggregate speedup lands in ``BENCH_profile.json``
as the ``bench.mtc.speedup`` gauge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.mem import engines
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.util import format_table, fraction
from repro.obs import OBS
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload
from repro.workloads.registry import all_workloads

#: References per benchmark when the caller does not pick a budget.
DEFAULT_BENCH_REFS = 100_000

#: MTC sizes swept per benchmark: miss-heavy small caches through a size
#: big enough to hit the closed-form everything-fits path.
BENCH_SIZES = (256, 1024, 4096, 16384, 65536, 1 << 20)


@dataclass(slots=True)
class BenchRow:
    """One benchmark's ladder timings under both engines."""

    workload: str
    references: int
    scalar_seconds: float
    vector_seconds: float

    @property
    def speedup(self) -> float:
        return fraction(self.scalar_seconds, self.vector_seconds)

    @property
    def scalar_refs_per_second(self) -> float:
        return fraction(
            self.references * len(BENCH_SIZES), self.scalar_seconds
        )

    @property
    def vector_refs_per_second(self) -> float:
        return fraction(
            self.references * len(BENCH_SIZES), self.vector_seconds
        )


@dataclass(slots=True)
class BenchResult:
    sizes: tuple[int, ...]
    rows: list[BenchRow]

    @property
    def overall_speedup(self) -> float:
        scalar = sum(row.scalar_seconds for row in self.rows)
        vector = sum(row.vector_seconds for row in self.rows)
        return fraction(scalar, vector)


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = None,
    seed: int = 0,
    workloads: list[SyntheticWorkload] | None = None,
) -> BenchResult:
    """Time both MTC engines over the SPEC92 suite."""
    refs = max_refs if max_refs is not None else DEFAULT_BENCH_REFS
    if workloads is None:
        workloads = all_workloads("SPEC92", scale=scale)
    rows: list[BenchRow] = []
    for workload in workloads:
        trace = workload.generate(seed=seed, max_refs=refs)
        start = time.perf_counter()
        scalar = [
            MinimalTrafficCache(MTCConfig(size_bytes=size))
            .simulate(trace, engine="scalar")
            .total_traffic_bytes
            for size in BENCH_SIZES
        ]
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        prepared = engines.prepare_mtc(trace)
        vector = [
            MinimalTrafficCache(MTCConfig(size_bytes=size))
            .simulate(trace, engine="vector", prepared=prepared)
            .total_traffic_bytes
            for size in BENCH_SIZES
        ]
        vector_seconds = time.perf_counter() - start
        if scalar != vector:
            raise SimulationError(
                f"engine mismatch on {workload.name}: {scalar} != {vector}"
            )
        rows.append(
            BenchRow(
                workload=workload.name,
                references=len(trace),
                scalar_seconds=scalar_seconds,
                vector_seconds=vector_seconds,
            )
        )
        if OBS.enabled:
            OBS.observe("bench.mtc.scalar", scalar_seconds)
            OBS.observe("bench.mtc.vector", vector_seconds)
    result = BenchResult(sizes=BENCH_SIZES, rows=rows)
    if OBS.enabled:
        OBS.gauge("bench.mtc.speedup", result.overall_speedup)
    return result


def render(result: BenchResult) -> str:
    rows = [
        [
            row.workload,
            f"{row.references:,}",
            f"{row.scalar_refs_per_second:,.0f}",
            f"{row.vector_refs_per_second:,.0f}",
            f"{row.speedup:.1f}x",
        ]
        for row in result.rows
    ]
    table = format_table(
        ["workload", "refs/size", "scalar refs/s", "vector refs/s", "speedup"],
        rows,
    )
    ladder = ", ".join(str(size) for size in result.sizes)
    return (
        f"MTC engine benchmark over sizes [{ladder}] bytes\n"
        f"{table}\n"
        f"overall speedup: {result.overall_speedup:.1f}x"
    )
