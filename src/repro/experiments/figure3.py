"""Figure 3: execution-time decomposition across experiments A-F.

For each benchmark (both SPEC panels) and each of the six machines, runs
the three-simulation protocol and reports normalized bars: processing,
raw-latency-stall, and bandwidth-stall segments, normalized to experiment
A's processing time — exactly the paper's bar chart, as numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition import ExecutionDecomposition
from repro.cpu.configs import EXPERIMENT_NAMES, experiment
from repro.cpu.itrace import build_instruction_trace, profile_for
from repro.cpu.machine import Machine, MachineResult
from repro.errors import ConfigurationError
from repro.workloads.base import DEFAULT_SCALE
from repro.workloads.registry import all_workloads


@dataclass(frozen=True, slots=True)
class Figure3Bar:
    benchmark: str
    experiment: str
    decomposition: ExecutionDecomposition
    #: (processing, latency, bandwidth) normalized to experiment A's T_P.
    normalized: tuple[float, float, float]

    @property
    def f_b(self) -> float:
        return self.decomposition.f_b


@dataclass(slots=True)
class Figure3Result:
    suite: str
    bars: dict[tuple[str, str], Figure3Bar]

    def bar(self, benchmark: str, exp: str) -> Figure3Bar:
        key = (benchmark, exp.upper())
        if key not in self.bars:
            raise ConfigurationError(f"no bar for {key}")
        return self.bars[key]

    def benchmarks(self) -> list[str]:
        return sorted({benchmark for benchmark, _ in self.bars})


def run(
    suite: str = "SPEC92",
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = 40_000,
    seed: int = 0,
    experiments: tuple[str, ...] = EXPERIMENT_NAMES,
    benchmarks: list[str] | None = None,
) -> Figure3Result:
    """Run the Figure 3 grid for one suite.

    ``max_refs`` bounds the memory references per benchmark (the timing
    cores are the slowest simulators in the library); the relative bar
    shapes stabilize well below the default.
    """
    workloads = all_workloads(suite, scale=scale)
    if benchmarks is not None:
        wanted = {b.lower() for b in benchmarks}
        workloads = [w for w in workloads if w.name.lower() in wanted]
    bars: dict[tuple[str, str], Figure3Bar] = {}
    for workload in workloads:
        memtrace = workload.generate(seed=seed, max_refs=max_refs)
        itrace = build_instruction_trace(
            memtrace, profile_for(workload.name), seed=seed, name=workload.name
        )
        baseline_tp: int | None = None
        for exp_name in experiments:
            config = experiment(exp_name, suite)
            result: MachineResult = Machine(config, scale=scale).run(itrace)
            decomposition = result.decomposition
            if baseline_tp is None:
                baseline_tp = decomposition.cycles_perfect
            bars[(workload.name, exp_name)] = Figure3Bar(
                benchmark=workload.name,
                experiment=exp_name,
                decomposition=decomposition,
                normalized=decomposition.normalized_to(baseline_tp),
            )
    return Figure3Result(suite=suite, bars=bars)


def render(result: Figure3Result) -> str:
    lines = [f"Figure 3 ({result.suite}): normalized execution time"]
    for benchmark in result.benchmarks():
        lines.append(f"  {benchmark}")
        for exp_name in EXPERIMENT_NAMES:
            key = (benchmark, exp_name)
            if key not in result.bars:
                continue
            bar = result.bars[key]
            processing, latency, bandwidth = bar.normalized
            total = processing + latency + bandwidth
            lines.append(
                f"    {exp_name}: total={total:.2f} "
                f"[P={processing:.2f} L={latency:.2f} B={bandwidth:.2f}] "
                f"f_B={bar.f_b:.2f}"
            )
    return "\n".join(lines)
