"""Benchmark: sampled MTC estimates vs the exact engine, speed and error.

Runs every SPEC92 benchmark through a ladder of MTC sizes twice — the
exact miss-jumping engine with one shared pass-1 product versus the
sampled tier (:mod:`repro.mem.sampled`) — and reports, per benchmark,
the wall-clock speedup plus the worst observed traffic-ratio error
against the worst half-width the envelopes promised. Every error column
is an *estimate* property: the sampled engine trades exactness for
speed, and this bench is the standing measurement of that trade.

This is the ``repro profile bench_sampled`` target; the aggregate
speedup lands in ``BENCH_profile.json`` as the ``bench.sampled.speedup``
gauge and the worst error/envelope pair as
``bench.sampled.max_error``/``bench.sampled.max_half_width``.

The hard guarantee (measured error inside the reported envelope) is
asserted by the differential suite in ``tests/test_mem_sampled.py``;
the bench only *reports*, so a profiling run never aborts on an unlucky
seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.mem import engines
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.mem.sampled import SamplingConfig, use_sampling
from repro.util import format_table, fraction
from repro.obs import OBS
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload
from repro.workloads.registry import all_workloads

#: References per benchmark when the caller does not pick a budget.
DEFAULT_BENCH_REFS = 100_000

#: Sampling rate for the bench ladder. Coarser than the production
#: default (0.01) so the tiny profiling budgets still sample enough
#: references for stable timings.
BENCH_RATE = 0.05

#: MTC sizes swept per benchmark — large enough that the sampled tier's
#: miniature-capacity floor (64 blocks) never forces the rate up.
BENCH_SIZES = (65536, 1 << 20)


@dataclass(slots=True)
class BenchRow:
    """One benchmark's ladder under the exact and sampled engines."""

    workload: str
    references: int
    exact_seconds: float
    sampled_seconds: float
    #: Worst |sampled - exact| traffic ratio across the ladder.
    max_error: float
    #: Worst half-width the envelopes promised across the ladder.
    max_half_width: float
    #: True when every ladder size's error sat inside its envelope.
    within_envelope: bool

    @property
    def speedup(self) -> float:
        return fraction(self.exact_seconds, self.sampled_seconds)


@dataclass(slots=True)
class BenchResult:
    sizes: tuple[int, ...]
    rate: float
    rows: list[BenchRow]

    @property
    def overall_speedup(self) -> float:
        exact = sum(row.exact_seconds for row in self.rows)
        sampled = sum(row.sampled_seconds for row in self.rows)
        return fraction(exact, sampled)

    @property
    def max_error(self) -> float:
        return max((row.max_error for row in self.rows), default=0.0)

    @property
    def max_half_width(self) -> float:
        return max((row.max_half_width for row in self.rows), default=0.0)

    @property
    def all_within_envelope(self) -> bool:
        return all(row.within_envelope for row in self.rows)


def run(
    *,
    scale: float = DEFAULT_SCALE,
    max_refs: int | None = None,
    seed: int = 0,
    workloads: list[SyntheticWorkload] | None = None,
) -> BenchResult:
    """Time exact vs sampled MTC and measure the estimation error."""
    refs = max_refs if max_refs is not None else DEFAULT_BENCH_REFS
    if workloads is None:
        workloads = all_workloads("SPEC92", scale=scale)
    sampling = SamplingConfig(BENCH_RATE, seed=seed)
    rows: list[BenchRow] = []
    for workload in workloads:
        trace = workload.generate(seed=seed, max_refs=refs)

        start = time.perf_counter()
        prepared = engines.prepare_mtc(trace)
        exact = [
            MinimalTrafficCache(MTCConfig(size_bytes=size))
            .simulate(trace, engine="vector", prepared=prepared)
            for size in BENCH_SIZES
        ]
        exact_seconds = time.perf_counter() - start

        start = time.perf_counter()
        with use_sampling(sampling):
            estimates = [
                MinimalTrafficCache(MTCConfig(size_bytes=size))
                .simulate(trace, engine="sampled")
                for size in BENCH_SIZES
            ]
        sampled_seconds = time.perf_counter() - start

        errors = []
        widths = []
        within = True
        for truth, guess in zip(exact, estimates):
            envelope = guess.estimate
            error = abs(truth.traffic_ratio - envelope.traffic_ratio)
            errors.append(error)
            widths.append(envelope.traffic_ratio_half_width)
            if error > envelope.traffic_ratio_half_width:
                within = False
        rows.append(
            BenchRow(
                workload=workload.name,
                references=len(trace),
                exact_seconds=exact_seconds,
                sampled_seconds=sampled_seconds,
                max_error=max(errors),
                max_half_width=max(widths),
                within_envelope=within,
            )
        )
        if OBS.enabled:
            OBS.observe("bench.sampled.exact", exact_seconds)
            OBS.observe("bench.sampled.sampled", sampled_seconds)
    result = BenchResult(sizes=BENCH_SIZES, rate=sampling.effective_rate, rows=rows)
    if OBS.enabled:
        OBS.gauge("bench.sampled.speedup", result.overall_speedup)
        OBS.gauge("bench.sampled.max_error", result.max_error)
        OBS.gauge("bench.sampled.max_half_width", result.max_half_width)
    return result


def render(result: BenchResult) -> str:
    rows = [
        [
            row.workload,
            f"{row.references:,}",
            f"{row.speedup:.1f}x",
            f"{row.max_error:.4f}",
            f"{row.max_half_width:.4f}",
            "yes" if row.within_envelope else "NO",
        ]
        for row in result.rows
    ]
    table = format_table(
        [
            "workload",
            "refs/size",
            "speedup",
            "max |err| (est)",
            "envelope ± (est)",
            "within",
        ],
        rows,
    )
    ladder = ", ".join(str(size) for size in result.sizes)
    verdict = (
        "all errors within reported envelopes"
        if result.all_within_envelope
        else "ENVELOPE VIOLATION — see 'within' column"
    )
    return (
        f"sampled-engine benchmark over sizes [{ladder}] bytes "
        f"at rate {result.rate:g}\n"
        f"{table}\n"
        f"overall speedup: {result.overall_speedup:.1f}x; {verdict}\n"
        f"(error columns are sampled estimates; "
        f"see docs/performance.md for the contract)"
    )
