"""repro — a reproduction of Burger, Goodman & Kägi, *Memory Bandwidth
Limitations of Future Microprocessors* (ISCA 1996).

The library provides four layers:

* :mod:`repro.trace` / :mod:`repro.workloads` — memory-trace containers and
  synthetic SPEC92/SPEC95 benchmark models;
* :mod:`repro.mem` — trace-driven cache simulators (the DineroIII stand-in),
  the Belady-MIN minimal-traffic cache, and the timing-side memory system
  (buses, MSHRs, prefetch);
* :mod:`repro.cpu` — in-order and RUU out-of-order timing cores and the
  experiment configurations of the paper's Tables 4-5;
* :mod:`repro.core` — the paper's metrics: execution-time decomposition
  (f_P, f_L, f_B), traffic ratio, traffic inefficiency, effective pin
  bandwidth, physical pin trends, and I/O-complexity growth models.

:mod:`repro.experiments` regenerates every table and figure of the paper's
evaluation; see DESIGN.md for the per-experiment index.
:mod:`repro.obs` is the cross-cutting instrumentation layer — metrics
registry, structured event tracing, and the experiment profiler behind
``python -m repro profile`` (see docs/observability.md).

Quickstart::

    from repro import Cache, CacheConfig, MinimalTrafficCache, MTCConfig
    from repro.workloads import get_workload

    trace = get_workload("Compress").generate(seed=1)
    cache = Cache(CacheConfig(size_bytes=16 * 1024, block_bytes=32))
    stats = cache.simulate(trace)
    print(stats.traffic_ratio)   # the paper's R
    mtc = MinimalTrafficCache(MTCConfig(size_bytes=16 * 1024))
    print(stats.total_traffic_bytes / mtc.simulate(trace).total_traffic_bytes)  # G
"""

from repro.core.decomposition import ExecutionDecomposition, decompose
from repro.core.traffic import (
    effective_pin_bandwidth,
    measure_inefficiency,
    optimal_effective_pin_bandwidth,
    traffic_inefficiency,
    traffic_ratio,
)
from repro.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.mem.cache import (
    AllocatePolicy,
    Cache,
    CacheConfig,
    CacheStats,
    WritePolicy,
)
from repro.mem.hierarchy import HierarchyResult, TraceHierarchy
from repro.mem.mtc import MinimalTrafficCache, MTCConfig, minimal_traffic_bytes
from repro.obs import OBS, Instrumentation, MetricsRegistry
from repro.trace.model import MemRecord, MemTrace, WORD_BYTES
from repro.workloads import all_workloads, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "TraceError",
    "WorkloadError",
    # traces and workloads
    "MemRecord",
    "MemTrace",
    "WORD_BYTES",
    "all_workloads",
    "get_workload",
    "workload_names",
    # caches
    "Cache",
    "CacheConfig",
    "CacheStats",
    "WritePolicy",
    "AllocatePolicy",
    "TraceHierarchy",
    "HierarchyResult",
    "MinimalTrafficCache",
    "MTCConfig",
    "minimal_traffic_bytes",
    # observability
    "OBS",
    "Instrumentation",
    "MetricsRegistry",
    # metrics
    "ExecutionDecomposition",
    "decompose",
    "traffic_ratio",
    "traffic_inefficiency",
    "measure_inefficiency",
    "effective_pin_bandwidth",
    "optimal_effective_pin_bandwidth",
]
