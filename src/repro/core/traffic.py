"""Traffic ratio, traffic inefficiency, and effective pin bandwidth.

Implements Equations 4-7 of the paper:

* Equation 4 — traffic ratio ``R_i = D_i / D_{i-1}``;
* Equation 5 — effective pin bandwidth ``E_pin = B_pin / prod(R_i)``;
* Equation 6 — traffic inefficiency ``G_i = D_cache / D_MTC >= 1``;
* Equation 7 — the upper bound ``OE_pin = B_pin * prod(G_i) / prod(R_i)``.

The functions here are pure arithmetic over measured traffic; the
measuring is done by :mod:`repro.mem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.mem.cache import AllocatePolicy, Cache, CacheConfig, CacheStats
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace.model import MemTrace


def traffic_ratio(traffic_below_bytes: int, traffic_above_bytes: int) -> float:
    """Equation 4: traffic below a level divided by traffic above it."""
    if traffic_above_bytes < 0 or traffic_below_bytes < 0:
        raise ConfigurationError("traffic quantities must be non-negative")
    if traffic_above_bytes == 0:
        return 0.0
    return traffic_below_bytes / traffic_above_bytes


def traffic_inefficiency(cache_traffic_bytes: int, mtc_traffic_bytes: int) -> float:
    """Equation 6: cache traffic over minimal-traffic-cache traffic.

    The paper notes G >= 1 *by definition of optimality*; with the paper's
    own simplifications (MIN instead of the write-aware Horwitz policy) a
    measured value infinitesimally below 1 is possible, so no clamping is
    applied — tests assert G >= 1 within tolerance instead.
    """
    if mtc_traffic_bytes <= 0:
        raise ConfigurationError("MTC traffic must be positive")
    return cache_traffic_bytes / mtc_traffic_bytes


def effective_pin_bandwidth(
    pin_bandwidth: float, ratios: Iterable[float]
) -> float:
    """Equation 5: pin bandwidth divided by the product of on-chip ratios.

    *pin_bandwidth* is in any bandwidth unit (the result keeps the unit);
    *ratios* are the traffic ratios of the on-chip levels, processor side
    first.
    """
    if pin_bandwidth <= 0:
        raise ConfigurationError("pin bandwidth must be positive")
    product = 1.0
    for ratio in ratios:
        if ratio < 0:
            raise ConfigurationError(f"negative traffic ratio {ratio}")
        product *= ratio
    if product == 0:
        return float("inf")
    return pin_bandwidth / product


def optimal_effective_pin_bandwidth(
    pin_bandwidth: float,
    ratios: Iterable[float],
    inefficiencies: Iterable[float],
) -> float:
    """Equation 7: the upper bound on effective pin bandwidth.

    ``OE_pin = B_pin * prod(G_i) / prod(R_i)``; valid only while the
    processor model (and hence the reference stream) is unchanged.
    """
    gain = 1.0
    for inefficiency in inefficiencies:
        if inefficiency <= 0:
            raise ConfigurationError(f"non-positive inefficiency {inefficiency}")
        gain *= inefficiency
    return effective_pin_bandwidth(pin_bandwidth, ratios) * gain


@dataclass(frozen=True, slots=True)
class TrafficInefficiency:
    """A measured cache-vs-MTC comparison for one trace and size."""

    cache_stats: CacheStats
    mtc_stats: CacheStats
    cache_config: CacheConfig
    mtc_config: MTCConfig

    @property
    def g(self) -> float:
        """The paper's G for this cache/MTC pair."""
        return traffic_inefficiency(
            self.cache_stats.total_traffic_bytes,
            self.mtc_stats.total_traffic_bytes,
        )

    @property
    def cache_ratio(self) -> float:
        return self.cache_stats.traffic_ratio

    @property
    def mtc_ratio(self) -> float:
        return self.mtc_stats.traffic_ratio


def measure_inefficiency(
    trace: MemTrace,
    size_bytes: int,
    *,
    cache_config: CacheConfig | None = None,
    mtc_config: MTCConfig | None = None,
) -> TrafficInefficiency:
    """Run both the cache and the MTC over *trace* and compare traffic.

    Defaults reproduce the paper's Table 8 setup: a direct-mapped 32-byte
    block write-back cache against a word-grain write-validate bypassing
    MTC of the same size.
    """
    if cache_config is None:
        cache_config = CacheConfig(size_bytes=size_bytes, block_bytes=32)
    if mtc_config is None:
        mtc_config = MTCConfig(size_bytes=size_bytes)
    if cache_config.size_bytes != mtc_config.size_bytes:
        raise ConfigurationError(
            "traffic inefficiency compares equal-size cache and MTC "
            f"({cache_config.size_bytes} != {mtc_config.size_bytes})"
        )
    cache_stats = Cache(cache_config).simulate(trace)
    mtc_stats = MinimalTrafficCache(mtc_config).simulate(trace)
    return TrafficInefficiency(
        cache_stats=cache_stats,
        mtc_stats=mtc_stats,
        cache_config=cache_config,
        mtc_config=mtc_config,
    )


def mean_traffic_ratio(
    ratios_by_size: Sequence[tuple[int, float]],
    *,
    min_size: int,
    dataset_bytes: int,
) -> float:
    """The paper's Section 4.2 summary statistic.

    Arithmetic mean of the traffic ratios over caches at least *min_size*
    (64 KB in the paper) and smaller than the benchmark's data set; returns
    ``nan`` when no size qualifies.

    Unit contract: the sizes in *ratios_by_size*, *min_size*, and
    *dataset_bytes* must all be expressed at the **same** scale — either
    all paper-scale (Table 7 passes paper-scale column sizes with the
    paper-scale data set from Table 3) or all simulated-scale. Mixing
    scales silently shifts which columns are eligible and inflates or
    deflates the mean; ``tests/test_core_traffic.py`` pins the eligible
    column set per benchmark to guard the Table 7 caller.
    """
    if min_size <= 0 or dataset_bytes <= 0:
        raise ConfigurationError(
            "mean_traffic_ratio needs positive min_size and dataset_bytes "
            f"(got {min_size}, {dataset_bytes})"
        )
    eligible = [
        ratio
        for size, ratio in ratios_by_size
        if min_size <= size < dataset_bytes
    ]
    if not eligible:
        return float("nan")
    return sum(eligible) / len(eligible)
