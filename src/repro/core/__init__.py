"""The paper's primary contribution: metrics for bandwidth-limited systems.

* :mod:`repro.core.decomposition` — execution-time split into processing,
  latency-stall, and bandwidth-stall fractions (Section 2).
* :mod:`repro.core.traffic` — traffic ratio, traffic inefficiency,
  effective and optimal effective pin bandwidth (Sections 4-5).
* :mod:`repro.core.pins` — physical trend dataset and extrapolations
  (Figure 1, Section 4.3).
* :mod:`repro.core.growth` — I/O-complexity growth models (Table 2).
* :mod:`repro.core.qualitative` — the Table 1 trend matrix.
"""

from repro.core.decomposition import ExecutionDecomposition, decompose
from repro.core.traffic import (
    TrafficInefficiency,
    effective_pin_bandwidth,
    optimal_effective_pin_bandwidth,
    traffic_inefficiency,
    traffic_ratio,
)

__all__ = [
    "ExecutionDecomposition",
    "decompose",
    "traffic_ratio",
    "traffic_inefficiency",
    "TrafficInefficiency",
    "effective_pin_bandwidth",
    "optimal_effective_pin_bandwidth",
]
