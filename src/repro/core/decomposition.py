"""Execution-time decomposition (Section 2, Equations 1-3).

The paper splits a program's execution time ``T`` into processing time,
latency-stall time, and bandwidth-stall time using three simulations:

* ``T_P`` — perfect memory: every access completes in one cycle;
* ``T_I`` — intrinsic-latency memory: real latencies, infinitely wide
  paths between levels (no contention, no bandwidth limits);
* ``T``   — the full memory system.

Then ``f_P = T_P / T``, ``f_L = (T_I - T_P) / T``, ``f_B = (T - T_I) / T``.
This module is pure arithmetic over those three cycle counts; the counts
themselves come from :mod:`repro.cpu.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class ExecutionDecomposition:
    """The (T_P, T_I, T) triple and its derived fractions."""

    cycles_perfect: int     #: T_P — perfect memory hierarchy
    cycles_infinite: int    #: T_I — infinite bandwidth, real latency
    cycles_full: int        #: T   — the full memory system
    instructions: int = 0   #: retired instructions (for the CPI view)
    label: str = ""

    def __post_init__(self) -> None:
        if min(self.cycles_perfect, self.cycles_infinite, self.cycles_full) <= 0:
            raise SimulationError("cycle counts must be positive")
        if not (
            self.cycles_perfect <= self.cycles_infinite <= self.cycles_full
        ):
            raise SimulationError(
                "expected T_P <= T_I <= T, got "
                f"{self.cycles_perfect} / {self.cycles_infinite} / "
                f"{self.cycles_full} ({self.label or 'unlabelled'})"
            )

    # -- the paper's fractions (Equations 1-3) ------------------------------------

    @property
    def f_p(self) -> float:
        """Fraction of time the processor computes (or lacks ILP)."""
        return self.cycles_perfect / self.cycles_full

    @property
    def f_l(self) -> float:
        """Fraction lost to raw, untolerated memory latency."""
        return (self.cycles_infinite - self.cycles_perfect) / self.cycles_full

    @property
    def f_b(self) -> float:
        """Fraction lost to insufficient bandwidth and contention."""
        return (self.cycles_full - self.cycles_infinite) / self.cycles_full

    # -- absolute views ---------------------------------------------------------------

    @property
    def latency_stall_cycles(self) -> int:
        return self.cycles_infinite - self.cycles_perfect

    @property
    def bandwidth_stall_cycles(self) -> int:
        return self.cycles_full - self.cycles_infinite

    def normalized_to(self, baseline_processing_cycles: int) -> tuple[float, float, float]:
        """Bar heights for Figure 3: (processing, latency, bandwidth)
        segments normalized to a baseline experiment's ``T_P``."""
        if baseline_processing_cycles <= 0:
            raise SimulationError("baseline processing cycles must be positive")
        scale = float(baseline_processing_cycles)
        return (
            self.cycles_perfect / scale,
            self.latency_stall_cycles / scale,
            self.bandwidth_stall_cycles / scale,
        )

    def cpi(self) -> tuple[float, float, float]:
        """The same decomposition expressed as CPI components."""
        if self.instructions <= 0:
            raise SimulationError("instruction count required for CPI view")
        return (
            self.cycles_perfect / self.instructions,
            self.latency_stall_cycles / self.instructions,
            self.bandwidth_stall_cycles / self.instructions,
        )

    def __str__(self) -> str:
        return (
            f"{self.label or 'decomposition'}: "
            f"f_P={self.f_p:.2f} f_L={self.f_l:.2f} f_B={self.f_b:.2f} "
            f"(T={self.cycles_full})"
        )


def decompose(
    cycles_perfect: int,
    cycles_infinite: int,
    cycles_full: int,
    *,
    instructions: int = 0,
    label: str = "",
) -> ExecutionDecomposition:
    """Build an :class:`ExecutionDecomposition`, validating the ordering.

    Timing noise in a simulator can produce ``T_I`` a hair below ``T_P`` or
    ``T`` a hair below ``T_I`` (e.g. a prefetch that only helps when the
    bus is infinitely wide); such small inversions are clamped rather than
    rejected, matching how the paper treats them (stall components are
    never negative).
    """
    cycles_infinite = max(cycles_infinite, cycles_perfect)
    cycles_full = max(cycles_full, cycles_infinite)
    return ExecutionDecomposition(
        cycles_perfect=cycles_perfect,
        cycles_infinite=cycles_infinite,
        cycles_full=cycles_full,
        instructions=instructions,
        label=label,
    )
