"""Table 1: the paper's qualitative trend matrix, machine-readable.

Each row predicts how a technique or trend moves the three execution-time
fractions (f_P, f_L, f_B). The key observation the table encodes: every
latency-reduction technique and every processor trend *increases* the
bandwidth-stall fraction; only the physical trends (packaging, larger
on-chip memories) push it down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Trend(enum.Enum):
    UP = "up"
    DOWN = "down"
    UNKNOWN = "?"

    def __str__(self) -> str:
        return {"up": "increases", "down": "decreases", "?": "?"}[self.value]


class Section(enum.Enum):
    LATENCY_REDUCTION = "A. Latency reduction"
    PROCESSOR_TRENDS = "B. Processor trends"
    PHYSICAL_TRENDS = "C. Physical trends"


@dataclass(frozen=True, slots=True)
class Table1Row:
    section: Section
    technique: str
    f_p: Trend
    f_l: Trend
    f_b: Trend


#: The paper's Table 1, row for row.
TABLE1: tuple[Table1Row, ...] = (
    # A. Latency reduction
    Table1Row(Section.LATENCY_REDUCTION, "Lockup-free caches", Trend.UNKNOWN, Trend.DOWN, Trend.UP),
    Table1Row(Section.LATENCY_REDUCTION, "Intelligent load scheduling", Trend.UP, Trend.DOWN, Trend.UP),
    Table1Row(Section.LATENCY_REDUCTION, "Hardware prefetching", Trend.UNKNOWN, Trend.DOWN, Trend.UP),
    Table1Row(Section.LATENCY_REDUCTION, "Software prefetching", Trend.UP, Trend.DOWN, Trend.UP),
    Table1Row(Section.LATENCY_REDUCTION, "Speculative loads", Trend.UP, Trend.DOWN, Trend.UP),
    Table1Row(Section.LATENCY_REDUCTION, "Multithreading", Trend.UNKNOWN, Trend.DOWN, Trend.UP),
    Table1Row(Section.LATENCY_REDUCTION, "Larger cache blocks", Trend.UNKNOWN, Trend.DOWN, Trend.UP),
    # B. Processor trends
    Table1Row(Section.PROCESSOR_TRENDS, "Faster clock speed", Trend.DOWN, Trend.UP, Trend.UP),
    Table1Row(Section.PROCESSOR_TRENDS, "Wider-issue", Trend.DOWN, Trend.UNKNOWN, Trend.UP),
    Table1Row(Section.PROCESSOR_TRENDS, "Speculative (Multiscalar)", Trend.DOWN, Trend.UNKNOWN, Trend.UP),
    Table1Row(Section.PROCESSOR_TRENDS, "Multiprocessors/chip", Trend.DOWN, Trend.UP, Trend.UP),
    # C. Physical trends
    Table1Row(Section.PHYSICAL_TRENDS, "Better packaging technology", Trend.UP, Trend.DOWN, Trend.DOWN),
    Table1Row(Section.PHYSICAL_TRENDS, "Larger on-chip memories", Trend.UP, Trend.DOWN, Trend.DOWN),
)


def rows(section: Section | None = None) -> tuple[Table1Row, ...]:
    """All rows, or the rows of one section."""
    if section is None:
        return TABLE1
    return tuple(row for row in TABLE1 if row.section is section)


def bandwidth_pressure_rows() -> tuple[Table1Row, ...]:
    """Rows predicting growth in bandwidth stalls (sections A and B)."""
    return tuple(row for row in TABLE1 if row.f_b is Trend.UP)


def render() -> str:
    """Print Table 1 in the paper's layout."""
    lines = []
    current: Section | None = None
    for row in TABLE1:
        if row.section is not current:
            current = row.section
            lines.append(current.value)
        symbols = {
            Trend.UP: "+",
            Trend.DOWN: "-",
            Trend.UNKNOWN: "?",
        }
        lines.append(
            f"  {row.technique:<30s} f_P:{symbols[row.f_p]}  "
            f"f_L:{symbols[row.f_l]}  f_B:{symbols[row.f_b]}"
        )
    return "\n".join(lines)
