"""Physical microprocessor trends: the paper's Figure 1 and Section 4.3.

The paper compiled pin counts, performance, and package bandwidth for 18
microprocessors from 1978-1997 "by hand, from both the processors'
original manuals and back issues of Microprocessor Report". The same chips
are reconstructed here from their public specifications. Performance
follows the paper's convention: VAX MIPS for the 680x0 and early 80x86
parts, issue width times clock rate for the rest ("these two measures
cannot be compared directly, but are sufficient to view 20-year trends").

Three series reproduce Figure 1's panels:

* (a) pins per processor vs year (log scale) with the ~16%/year fit;
* (b) MIPS per pin vs year;
* (c) MIPS per MB/s of package bandwidth vs year.

Section 4.3's extrapolation is implemented by :func:`extrapolate_2006`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ChipRecord:
    """One microprocessor data point of Figure 1."""

    name: str
    year: int
    pins: int
    #: VAX MIPS (early chips) or issue width x clock in MHz (later chips).
    mips: float
    #: Peak package (bus) bandwidth in MB/s: external bus width x bus clock.
    package_mb_per_s: float

    @property
    def mips_per_pin(self) -> float:
        return self.mips / self.pins

    @property
    def mips_per_bandwidth(self) -> float:
        return self.mips / self.package_mb_per_s


#: The Figure 1 chip set, reconstructed from public datasheet values.
#: Bandwidth = external data-bus width times bus clock.
CHIPS: tuple[ChipRecord, ...] = (
    ChipRecord("8086", 1978, 40, 0.33, 9.5),          # 16-bit @ ~4.77 MHz
    ChipRecord("68000", 1979, 64, 1.0, 16.0),         # 16-bit @ 8 MHz
    ChipRecord("80286", 1982, 68, 1.2, 16.0),         # 16-bit @ 8 MHz
    ChipRecord("68020", 1984, 114, 2.0, 64.0),        # 32-bit @ 16 MHz
    ChipRecord("80386", 1985, 132, 5.0, 64.0),        # 32-bit @ 16 MHz
    ChipRecord("68030", 1987, 128, 7.0, 80.0),        # 32-bit @ 20 MHz
    ChipRecord("R3000", 1988, 144, 20.0, 100.0),      # 32-bit @ 25 MHz
    ChipRecord("80486", 1989, 168, 20.0, 100.0),      # 32-bit @ 25 MHz
    ChipRecord("68040", 1990, 179, 25.0, 100.0),      # 32-bit @ 25 MHz
    ChipRecord("Harp1", 1993, 240, 80.0, 320.0),      # 4-issue research part
    ChipRecord("Pentium", 1993, 273, 132.0, 528.0),   # 2 x 66; 64-bit @ 66
    ChipRecord("SSparc2", 1994, 293, 270.0, 400.0),   # 3 x 90; 64-bit @ 50
    ChipRecord("68060", 1994, 223, 132.0, 264.0),     # 2 x 66; 32-bit @ 66
    ChipRecord("UltraSparc", 1995, 521, 668.0, 1328.0),  # 4 x 167; 128-bit @ 83
    ChipRecord("P6", 1995, 387, 600.0, 528.0),        # 3 x 200; 64-bit @ 66
    ChipRecord("21164", 1995, 499, 1200.0, 1200.0),   # 4 x 300; 128-bit @ 75
    ChipRecord("R10000", 1996, 599, 800.0, 800.0),    # 4 x 200; 64-bit @ 100
    ChipRecord("PA8000", 1996, 1085, 720.0, 960.0),   # 4 x 180; no on-chip $
)


@dataclass(frozen=True, slots=True)
class TrendFit:
    """Log-linear fit y = a * growth^(year - base_year)."""

    base_year: int
    base_value: float
    annual_growth: float  #: e.g. 1.16 for 16%/year

    def value_at(self, year: int) -> float:
        return self.base_value * self.annual_growth ** (year - self.base_year)

    @property
    def percent_per_year(self) -> float:
        return (self.annual_growth - 1.0) * 100.0


def fit_exponential(points: Iterable[tuple[int, float]]) -> TrendFit:
    """Least-squares fit of log(y) against year."""
    data = [(year, value) for year, value in points if value > 0]
    if len(data) < 2:
        raise ConfigurationError("need at least two points to fit a trend")
    n = len(data)
    mean_x = sum(year for year, _ in data) / n
    mean_y = sum(math.log(value) for _, value in data) / n
    sxx = sum((year - mean_x) ** 2 for year, _ in data)
    sxy = sum(
        (year - mean_x) * (math.log(value) - mean_y) for year, value in data
    )
    slope = sxy / sxx
    base_year = data[0][0]
    intercept = mean_y + slope * (base_year - mean_x)
    return TrendFit(
        base_year=base_year,
        base_value=math.exp(intercept),
        annual_growth=math.exp(slope),
    )


def pin_trend(chips: Sequence[ChipRecord] = CHIPS) -> TrendFit:
    """Figure 1a's dotted line: pin counts grow ~16% per year."""
    return fit_exponential((chip.year, float(chip.pins)) for chip in chips)


def mips_per_pin_trend(chips: Sequence[ChipRecord] = CHIPS) -> TrendFit:
    """Figure 1b: raw performance per pin, also growing explosively."""
    return fit_exponential((chip.year, chip.mips_per_pin) for chip in chips)


def mips_per_bandwidth_trend(chips: Sequence[ChipRecord] = CHIPS) -> TrendFit:
    """Figure 1c: performance over peak package bandwidth."""
    return fit_exponential(
        (chip.year, chip.mips_per_bandwidth) for chip in chips
    )


@dataclass(frozen=True, slots=True)
class Extrapolation2006:
    """Section 4.3's decade-out projection."""

    pins_2006: float
    performance_growth: float       #: assumed annual sustained growth (1.6)
    pin_growth: float               #: fitted annual pin growth
    bandwidth_per_pin_factor: float  #: required per-pin bandwidth increase
    traffic_ratio_assumed: float


def extrapolate_2006(
    *,
    base_year: int = 1996,
    base_pins: int = 599,            #: R10000-class package
    years: int = 10,
    performance_growth: float = 1.60,
    traffic_ratio: float = 0.51,
    chips: Sequence[ChipRecord] = CHIPS,
) -> Extrapolation2006:
    """Reproduce the paper's projection for the processor of 2006.

    With pins growing at the fitted ~16%/year and sustained performance at
    a conservative 60%/year, the 2006 package has two-to-three thousand
    pins and each pin must deliver ~25x the bandwidth of 1996 (assuming
    on-chip traffic ratios stay the same).
    """
    if years <= 0:
        raise ConfigurationError("extrapolation horizon must be positive")
    pin_fit = pin_trend(chips)
    pins_2006 = base_pins * pin_fit.annual_growth ** years
    per_pin_factor = (
        performance_growth ** years / pin_fit.annual_growth ** years
    )
    return Extrapolation2006(
        pins_2006=pins_2006,
        performance_growth=performance_growth,
        pin_growth=pin_fit.annual_growth,
        bandwidth_per_pin_factor=per_pin_factor,
        traffic_ratio_assumed=traffic_ratio,
    )
