"""I/O-complexity growth models: the paper's Table 2 and Figure 2.

Section 2.4 analyses how computation and minimal off-chip traffic scale
with problem size N and on-chip memory size S, in the style of Hong &
Kung's red-blue pebble game [21]:

=========  ==========  ==============  =====================  ============
Algorithm  Memory      Computation C   Memory traffic D       C/D gain (S->kS)
=========  ==========  ==============  =====================  ============
TMM        O(N^2)      O(N^3)          O(N^3 / sqrt(S))       sqrt(k)
Stencil    O(N^2)      O(N^2)          O(N^2 / S)             k
FFT        O(N)        O(N log2 N)     O(N log2 N / log2 S)   ~log2 k
Sort       O(N)        O(N log2 N)     O(N log2 N / log2 S)   ~log2 k
=========  ==========  ==============  =====================  ============

(The tiled matrix multiply bound is the classic 2 N^3 / L for L x L tiles
with S ~ L^2 [21, 29]; quadrupling S doubles L and halves traffic.)

The models expose exact functional forms so the Table 2 experiment can
check the asymptotics empirically against the trace generators, and so
Figure 2's processing-vs-bandwidth balance argument can be computed for a
technology schedule.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _check(n: int, s: int) -> None:
    if n <= 1:
        raise ConfigurationError(f"problem size must exceed 1, got {n}")
    if s <= 1:
        raise ConfigurationError(f"on-chip memory must exceed 1, got {s}")


class GrowthModel(ABC):
    """Computation/traffic scaling laws for one algorithm class."""

    name: str = ""
    memory_exponent: str = ""
    computation_formula: str = ""
    traffic_formula: str = ""
    gain_formula: str = ""

    @abstractmethod
    def memory_words(self, n: int) -> float:
        """Total data-set size (words) for problem size *n*."""

    @abstractmethod
    def computation(self, n: int) -> float:
        """Operation count C for problem size *n*."""

    @abstractmethod
    def traffic(self, n: int, s: int) -> float:
        """Minimal off-chip traffic D (words) with on-chip memory *s*."""

    def cd_ratio(self, n: int, s: int) -> float:
        """Operations per word of off-chip traffic."""
        _check(n, s)
        return self.computation(n) / self.traffic(n, s)

    def improvement(self, n: int, s: int, k: float) -> float:
        """Table 2's right column: C/D gain when S grows to k*S."""
        if k <= 1:
            raise ConfigurationError(f"memory growth factor must exceed 1, got {k}")
        return self.cd_ratio(n, int(s * k)) / self.cd_ratio(n, s)


class TiledMatrixMultiply(GrowthModel):
    """C = 2N^3, D = 2N^3/L + N^2 with L = sqrt(S/3) tiles [21, 29]."""

    name = "TMM"
    memory_exponent = "O(N^2)"
    computation_formula = "O(N^3)"
    traffic_formula = "O(N^3 / sqrt(S))"
    gain_formula = "sqrt(k)"

    def memory_words(self, n: int) -> float:
        return 3.0 * n * n

    def computation(self, n: int) -> float:
        return 2.0 * n ** 3

    def traffic(self, n: int, s: int) -> float:
        _check(n, s)
        tile = max(1.0, math.sqrt(s / 3.0))
        return 2.0 * n ** 3 / tile + n * n


class Stencil(GrowthModel):
    """Repeated neighbour updates over an N x N grid, tiled in time.

    With S words on chip a tile of S cells advances ~sqrt(S) timesteps per
    load, so traffic per sweep falls as 1/S — the paper's linear-in-k gain.
    """

    name = "Stencil"
    memory_exponent = "O(N^2)"
    computation_formula = "O(N^2)"
    traffic_formula = "O(N^2 / S)"
    gain_formula = "k"

    #: Number of timesteps folded into the analysis (constant w.r.t. N, S).
    #: Large enough that the time-tiled regime (T >> S) holds at the
    #: memory sizes the experiments sweep.
    timesteps = 1 << 17

    def memory_words(self, n: int) -> float:
        return float(n * n)

    def computation(self, n: int) -> float:
        return float(n * n) * self.timesteps

    def traffic(self, n: int, s: int) -> float:
        _check(n, s)
        return max(float(n * n), float(n * n) * self.timesteps / s)


class FFT(GrowthModel):
    """N-point FFT: C = N log2 N, D = N log2 N / log2 S [21]."""

    name = "FFT"
    memory_exponent = "O(N)"
    computation_formula = "O(N log2 N)"
    traffic_formula = "O(N log2 N / log2 S)"
    gain_formula = "~log2 k"

    def memory_words(self, n: int) -> float:
        return float(n)

    def computation(self, n: int) -> float:
        return n * math.log2(n)

    def traffic(self, n: int, s: int) -> float:
        _check(n, s)
        return max(float(n), n * math.log2(n) / math.log2(s))


class MergeSort(GrowthModel):
    """Merge sort shares the FFT's N log N / log S traffic law."""

    name = "Sort"
    memory_exponent = "O(N)"
    computation_formula = "O(N log2 N)"
    traffic_formula = "O(N log2 N / log2 S)"
    gain_formula = "~log2 k"

    def memory_words(self, n: int) -> float:
        return 2.0 * n  # double buffering

    def computation(self, n: int) -> float:
        return n * math.log2(n)

    def traffic(self, n: int, s: int) -> float:
        _check(n, s)
        # log2(S) levels of the merge tree fit on chip per pass.
        return max(2.0 * n, 2.0 * n * math.log2(n) / math.log2(s))


#: Table 2's rows, in paper order.
MODELS: tuple[GrowthModel, ...] = (
    TiledMatrixMultiply(),
    Stencil(),
    FFT(),
    MergeSort(),
)


@dataclass(frozen=True, slots=True)
class BalancePoint:
    """One year of Figure 2's processing-vs-bandwidth schedule."""

    year: int
    processor_ops_per_s: float
    pin_bytes_per_s: float
    onchip_words: int
    #: Ops the algorithm can sustain per second given traffic demands.
    achievable_ops_per_s: float

    @property
    def bandwidth_bound(self) -> bool:
        return self.achievable_ops_per_s < self.processor_ops_per_s


def balance_schedule(
    model: GrowthModel,
    n: int,
    *,
    start_year: int = 1984,
    years: int = 13,
    ops_growth: float = 1.6,
    pin_bw_growth: float = 1.25,
    memory_growth: float = 1.6,
    base_ops: float = 4e7,
    base_bandwidth: float = 1.6e7,
    base_memory_words: int = 1024,
) -> list[BalancePoint]:
    """Figure 2's two opposing trends, made quantitative.

    Processor bandwidth (arrow 1) grows faster than pin bandwidth, but
    growing on-chip memory (arrow 2) cuts traffic per operation. The
    schedule reports, per year, whether the algorithm is bandwidth-bound:
    achievable ops/s = pin bandwidth x (C/D ratio at that year's memory).
    """
    if years <= 0:
        raise ConfigurationError("years must be positive")
    points = []
    for offset in range(years):
        ops = base_ops * ops_growth ** offset
        bandwidth = base_bandwidth * pin_bw_growth ** offset
        memory = int(base_memory_words * memory_growth ** offset)
        cd = model.cd_ratio(n, max(2, memory))
        achievable = bandwidth / 4.0 * cd  # bytes/s -> words/s x ops/word
        points.append(
            BalancePoint(
                year=start_year + offset,
                processor_ops_per_s=ops,
                pin_bytes_per_s=bandwidth,
                onchip_words=memory,
                achievable_ops_per_s=achievable,
            )
        )
    return points
