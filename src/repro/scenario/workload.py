"""Scenarios as workloads: one interface for benchmarks and scenarios.

:class:`ScenarioWorkload` wraps a :class:`~repro.scenario.spec.ScenarioSpec`
in the :class:`~repro.workloads.base.SyntheticWorkload` interface, so every
consumer of named benchmarks — ``repro simulate``, the experiment grids,
the CPU decomposition, the serve layer — runs scenarios unchanged. The
instance's :meth:`key_material` injects the canonical spec into
:func:`repro.exec.keys.workload_key`, which (together with the distinct
class path) guarantees scenario cache keys never collide with named-
workload keys.

Seeds: a scenario carries its seed *in the spec* — the content address
covers it, so the same spec always names the same trace. ``generate``
therefore defaults to the spec's seed; callers that pass one explicitly
(the experiment grids do, uniformly with named workloads) re-seed the
same scenario shape.
"""

from __future__ import annotations

import numpy as np

from repro.scenario.mixer import mix_stream
from repro.scenario.spec import ScenarioSpec, resolve_spec_argument
from repro.trace.model import MemTrace
from repro.trace.synth import StreamPair
from repro.workloads.base import DEFAULT_SCALE, PaperFacts, SyntheticWorkload

__all__ = ["ScenarioWorkload", "resolve_workload"]


class ScenarioWorkload(SyntheticWorkload):
    """A declarative scenario in workload clothing.

    Unlike the paper benchmarks the footprint is explicit in the spec,
    so the scale knob is pinned at 1.0 — scenario columns never shrink
    with the reproduction scale.
    """

    suite = "SCENARIO"

    def __init__(self, spec: ScenarioSpec) -> None:
        super().__init__(scale=1.0)
        self.spec = spec
        self.name = spec.display_name
        self.paper = PaperFacts(
            refs_millions=spec.refs / 1e6,
            dataset_mb=spec.total_footprint_bytes() / (1024 * 1024),
            input_description=f"scenario {spec.scenario_id()}",
        )
        kinds = ",".join(spec.pattern_kinds())
        self.behaviour = (
            f"{len(spec.tenants)}-tenant scenario ({kinds}), "
            f"quantum {spec.quantum}"
        )

    def _build(self, rng: np.random.Generator) -> StreamPair:
        return mix_stream(self.spec, rng)

    def generate(
        self, *, seed: int | None = None, max_refs: int | None = None
    ) -> MemTrace:
        if seed is None:
            seed = self.spec.seed
        return super().generate(seed=seed, max_refs=max_refs)

    def dataset_bytes(self) -> int:
        # Exact, not via the float MB round-trip of the base class.
        return self.spec.total_footprint_bytes()

    def key_material(self) -> dict:
        """Extra exec-cache key material (see :func:`workload_key`)."""
        from repro.scenario.spec import SCENARIO_SCHEMA

        return {"schema": SCENARIO_SCHEMA, "scenario": self.spec.canonical()}

    def __repr__(self) -> str:
        return f"<ScenarioWorkload {self.name} ({self.spec.scenario_id()})>"


def resolve_workload(
    text: str, scale: float = DEFAULT_SCALE
) -> SyntheticWorkload:
    """A workload from a CLI argument: scenario reference or registry name.

    ``scenario:{...}``, ``@spec.json``, and ``spec.json`` build a
    :class:`ScenarioWorkload`; anything else is looked up in the named
    registry at *scale* (scenarios ignore the scale — their footprint is
    explicit).
    """
    spec = resolve_spec_argument(text)
    if spec is not None:
        return ScenarioWorkload(spec)
    from repro.workloads.registry import get_workload

    return get_workload(text, scale=scale)
