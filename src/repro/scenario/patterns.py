"""Composable access-pattern library: the :class:`TracePattern` protocol.

The paper's 14 workloads are fixed generators; this module supplies the
*parameterized* patterns that modern (datacenter-style) traffic is built
from — uniform-random, Zipfian, hotspot, bursty, sequential/strided, and
phase-switching compositions of those (cf. the CXL-fabric-sim workload
taxonomy). Every pattern is deterministic for a given ``rng`` and
vectorized like :mod:`repro.trace.synth`, whose builders do the actual
stream construction wherever one fits.

A pattern is anything with ``stream(rng) -> StreamPair``; the
:class:`~repro.workloads.base.SyntheticWorkload` base class implements
the same method, so named benchmarks and scenario patterns are
interchangeable wherever a trace source is needed.

Patterns are described declaratively as dicts (``{"kind": "zipfian",
"alpha": 1.2}``); :func:`canonical_pattern` validates a dict and fills
defaults, and :func:`build_pattern` instantiates the generator. The
canonical dict is what scenario content addresses hash, so equivalent
spellings of a pattern key identically into the exec cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScenarioError
from repro.trace import synth
from repro.trace.synth import StreamPair

__all__ = [
    "TracePattern",
    "PATTERN_KINDS",
    "build_pattern",
    "canonical_pattern",
    "pattern_catalog",
    "pattern_names",
]

try:  # pragma: no cover - version guard
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class TracePattern(Protocol):
    """Anything that can emit a reference stream deterministically.

    ``stream`` must be a pure function of the generator state: the same
    ``rng`` seed always yields a byte-identical :data:`StreamPair`.
    """

    def stream(self, rng: np.random.Generator) -> StreamPair: ...


#: Nesting bound for ``phased`` compositions (phases of phases).
MAX_PHASE_DEPTH = 4

#: Patterns address at most this many refs; guards accidental huge specs.
MAX_PATTERN_REFS = 50_000_000


def _require_fraction(value: object, field: str, *, kind: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(
            f"pattern {kind!r}: field {field!r} must be a number, got {value!r}"
        )
    value = float(value)
    if not 0.0 <= value <= 1.0 or value != value:
        raise ScenarioError(
            f"pattern {kind!r}: field {field!r} must be in [0, 1], got {value!r}"
        )
    return value


def _require_positive_number(value: object, field: str, *, kind: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(
            f"pattern {kind!r}: field {field!r} must be a number, got {value!r}"
        )
    value = float(value)
    if not value > 0 or value == float("inf"):
        raise ScenarioError(
            f"pattern {kind!r}: field {field!r} must be positive and finite, "
            f"got {value!r}"
        )
    return value


def _require_positive_int(value: object, field: str, *, kind: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise ScenarioError(
            f"pattern {kind!r}: field {field!r} must be a positive integer, "
            f"got {value!r}"
        )
    return value


@dataclass(frozen=True, slots=True)
class UniformRandomPattern:
    """Uniform random probes over the whole footprint: no locality at all."""

    footprint_words: int
    refs: int
    write_fraction: float

    def stream(self, rng: np.random.Generator) -> StreamPair:
        return synth.random_probes(
            rng, 0, self.footprint_words, self.refs,
            write_fraction=self.write_fraction,
        )


@dataclass(frozen=True, slots=True)
class ZipfianPattern:
    """Zipf(α)-skewed probes: a hot head over a long cold tail."""

    footprint_words: int
    refs: int
    write_fraction: float
    alpha: float

    def stream(self, rng: np.random.Generator) -> StreamPair:
        return synth.zipf_probes(
            rng, 0, self.footprint_words, self.refs,
            alpha=self.alpha, write_fraction=self.write_fraction,
        )


@dataclass(frozen=True, slots=True)
class HotspotPattern:
    """Hot-region probes: ``hot_prob`` of refs land in a ``hot_fraction``
    slice of the footprint, the rest are uniform over all of it."""

    footprint_words: int
    refs: int
    write_fraction: float
    hot_fraction: float
    hot_prob: float

    def stream(self, rng: np.random.Generator) -> StreamPair:
        hot_words = max(1, int(self.footprint_words * self.hot_fraction))
        return synth.random_probes(
            rng, 0, self.footprint_words, self.refs,
            write_fraction=self.write_fraction,
            hot_fraction=self.hot_prob,
            hot_words=hot_words,
        )


@dataclass(frozen=True, slots=True)
class BurstyPattern:
    """On/off phases: each burst hammers one random region, each gap
    wanders uniformly over the footprint.

    A burst picks a contiguous region of ``burst_fraction`` of the
    footprint and issues ``burst_refs`` uniform refs inside it (dense
    temporal locality); ``gap_refs`` uniform refs over the whole
    footprint separate consecutive bursts.
    """

    footprint_words: int
    refs: int
    write_fraction: float
    burst_refs: int
    gap_refs: int
    burst_fraction: float

    def stream(self, rng: np.random.Generator) -> StreamPair:
        burst_words = max(1, int(self.footprint_words * self.burst_fraction))
        cycle = self.burst_refs + self.gap_refs
        cycles = -(-self.refs // cycle)  # ceil
        starts = rng.integers(
            0, max(1, self.footprint_words - burst_words + 1),
            size=cycles, dtype=np.int64,
        )
        burst_offsets = rng.integers(
            0, burst_words, size=(cycles, self.burst_refs), dtype=np.int64
        )
        gap_indices = rng.integers(
            0, self.footprint_words, size=(cycles, self.gap_refs),
            dtype=np.int64,
        )
        per_cycle = np.concatenate(
            [starts[:, None] + burst_offsets, gap_indices], axis=1
        )
        indices = per_cycle.reshape(-1)[: self.refs]
        addresses = indices * synth.WORD_BYTES
        writes = rng.random(self.refs) < self.write_fraction
        return addresses, writes


@dataclass(frozen=True, slots=True)
class SequentialPattern:
    """Strided streaming passes over the footprint (the Swm idiom).

    Deterministic: the write mix comes from ``write_every`` (every n-th
    reference stores), derived from the tenant's ``write_fraction`` when
    not given explicitly. The rng is unused but accepted — sequential
    streams are the degenerate, fully-deterministic pattern.
    """

    footprint_words: int
    refs: int
    stride_words: int
    write_every: int

    def stream(self, rng: np.random.Generator) -> StreamPair:
        del rng  # a sweep has no random component
        per_pass = -(-self.footprint_words // self.stride_words)  # ceil
        passes = max(1, -(-self.refs // per_pass))
        pair = synth.sweep(
            0, self.footprint_words,
            passes=passes,
            stride_words=self.stride_words,
            write_every=self.write_every,
        )
        return synth.truncate(pair, self.refs)


@dataclass(frozen=True, slots=True)
class PhasedPattern:
    """Phase-switching composition: each sub-pattern runs as one program
    phase, back to back, in spec order."""

    phases: tuple[TracePattern, ...]

    def stream(self, rng: np.random.Generator) -> StreamPair:
        # One independent generator per phase, derived from the parent
        # stream: determinism survives any internal draw-count change in
        # an individual phase's builder.
        seeds = rng.integers(
            0, np.iinfo(np.int64).max, size=len(self.phases)
        )
        return synth.concat_streams(
            [
                phase.stream(np.random.default_rng(int(seed)))
                for phase, seed in zip(self.phases, seeds)
            ]
        )


def _canonical_uniform(params: dict, kind: str) -> dict:
    del params, kind
    return {}


def _canonical_zipfian(params: dict, kind: str) -> dict:
    alpha = _require_positive_number(
        params.get("alpha", 1.1), "alpha", kind=kind
    )
    return {"alpha": alpha}


def _canonical_hotspot(params: dict, kind: str) -> dict:
    hot_fraction = _require_fraction(
        params.get("hot_fraction", 0.1), "hot_fraction", kind=kind
    )
    if hot_fraction == 0.0:
        raise ScenarioError(
            f"pattern {kind!r}: field 'hot_fraction' must be > 0 "
            "(a zero-sized hot region is the uniform pattern)"
        )
    hot_prob = _require_fraction(
        params.get("hot_prob", 0.9), "hot_prob", kind=kind
    )
    return {"hot_fraction": hot_fraction, "hot_prob": hot_prob}


def _canonical_bursty(params: dict, kind: str) -> dict:
    burst_refs = _require_positive_int(
        params.get("burst_refs", 2048), "burst_refs", kind=kind
    )
    gap_refs = _require_positive_int(
        params.get("gap_refs", 256), "gap_refs", kind=kind
    )
    burst_fraction = _require_fraction(
        params.get("burst_fraction", 0.05), "burst_fraction", kind=kind
    )
    if burst_fraction == 0.0:
        raise ScenarioError(
            f"pattern {kind!r}: field 'burst_fraction' must be > 0"
        )
    return {
        "burst_refs": burst_refs,
        "gap_refs": gap_refs,
        "burst_fraction": burst_fraction,
    }


def _canonical_sequential(params: dict, kind: str) -> dict:
    stride_words = _require_positive_int(
        params.get("stride_words", 1), "stride_words", kind=kind
    )
    write_every = params.get("write_every")
    if write_every is not None:
        write_every = _require_positive_int(
            write_every, "write_every", kind=kind
        )
    return {"stride_words": stride_words, "write_every": write_every}


def _canonical_phased(params: dict, kind: str, *, depth: int = 0) -> dict:
    if depth >= MAX_PHASE_DEPTH:
        raise ScenarioError(
            f"pattern {kind!r}: phases nested deeper than {MAX_PHASE_DEPTH}"
        )
    phases = params.get("phases")
    if not isinstance(phases, list) or not phases:
        raise ScenarioError(
            f"pattern {kind!r}: field 'phases' must be a non-empty list of "
            f"pattern objects, got {phases!r}"
        )
    return {
        "phases": [
            canonical_pattern(phase, _depth=depth + 1) for phase in phases
        ]
    }


#: kind -> (canonicalizer, one-line description). The catalog order is
#: the documentation order.
PATTERN_KINDS: dict[str, tuple] = {
    "uniform": (
        _canonical_uniform,
        "uniform random probes over the footprint (no locality)",
    ),
    "zipfian": (
        _canonical_zipfian,
        "Zipf(alpha)-skewed probes: hot head, long cold tail",
    ),
    "hotspot": (
        _canonical_hotspot,
        "hot_prob of refs hit a hot_fraction slice of the footprint",
    ),
    "bursty": (
        _canonical_bursty,
        "on/off phases: bursts hammer one region, gaps wander the footprint",
    ),
    "sequential": (
        _canonical_sequential,
        "strided streaming passes over the footprint",
    ),
    "phased": (
        _canonical_phased,
        "phase-switching composition of sub-patterns, run back to back",
    ),
}


def pattern_names() -> list[str]:
    """The known pattern kinds, in catalog order."""
    return list(PATTERN_KINDS)


def pattern_catalog() -> list[dict[str, object]]:
    """Machine-readable pattern vocabulary (``repro list --json``)."""
    return [
        {
            "kind": kind,
            "description": description,
            "defaults": canonical_pattern({"kind": kind})
            if kind != "phased"
            else {"phases": []},
        }
        for kind, (_, description) in PATTERN_KINDS.items()
    ]


def canonical_pattern(spec: object, *, _depth: int = 0) -> dict:
    """Validate a pattern dict and return its fully-defaulted canonical form.

    The canonical form always carries ``kind`` plus every kind parameter
    at its resolved value, so equivalent spellings hash identically.
    Unknown fields are rejected — a typo must not silently become a
    default.
    """
    if not isinstance(spec, dict):
        raise ScenarioError(
            f"pattern must be an object like {{'kind': 'zipfian'}}, "
            f"got {spec!r}"
        )
    kind = spec.get("kind")
    if kind not in PATTERN_KINDS:
        raise ScenarioError(
            f"unknown pattern kind {kind!r}; known: "
            + ", ".join(pattern_names())
        )
    canonicalize = PATTERN_KINDS[kind][0]
    if kind == "phased":
        params = canonicalize(spec, kind, depth=_depth)
        known = {"kind", "phases"}
    else:
        params = canonicalize(spec, kind)
        known = {"kind"} | set(params)
    unknown = sorted(set(spec) - known)
    if unknown:
        raise ScenarioError(
            f"pattern {kind!r}: unknown field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return {"kind": kind, **params}


def build_pattern(
    spec: dict,
    *,
    footprint_words: int,
    refs: int,
    write_fraction: float,
) -> TracePattern:
    """Instantiate the generator for one canonical pattern dict.

    *footprint_words*, *refs*, and *write_fraction* come from the tenant
    that owns the pattern (the scenario spec resolves them); the pattern
    dict carries only the kind-specific shape parameters.
    """
    canonical = canonical_pattern(spec)
    if footprint_words <= 0:
        raise ScenarioError(
            f"footprint_words must be positive, got {footprint_words}"
        )
    if not 0 < refs <= MAX_PATTERN_REFS:
        raise ScenarioError(
            f"refs must be in [1, {MAX_PATTERN_REFS}], got {refs}"
        )
    kind = canonical["kind"]
    if kind == "uniform":
        return UniformRandomPattern(footprint_words, refs, write_fraction)
    if kind == "zipfian":
        return ZipfianPattern(
            footprint_words, refs, write_fraction, canonical["alpha"]
        )
    if kind == "hotspot":
        return HotspotPattern(
            footprint_words, refs, write_fraction,
            canonical["hot_fraction"], canonical["hot_prob"],
        )
    if kind == "bursty":
        return BurstyPattern(
            footprint_words, refs, write_fraction,
            canonical["burst_refs"], canonical["gap_refs"],
            canonical["burst_fraction"],
        )
    if kind == "sequential":
        write_every = canonical["write_every"]
        if write_every is None:
            # Derive the deterministic store cadence from the tenant's
            # write mix: every n-th reference stores.
            write_every = (
                round(1.0 / write_fraction) if write_fraction > 0 else 0
            )
        return SequentialPattern(
            footprint_words, refs, canonical["stride_words"], write_every
        )
    # phased: split the ref budget evenly across phases, remainder to the
    # earliest phases, so the total is exact.
    phases = canonical["phases"]
    share, extra = divmod(refs, len(phases))
    built = []
    for index, phase in enumerate(phases):
        phase_refs = share + (1 if index < extra else 0)
        if phase_refs == 0:
            raise ScenarioError(
                f"refs={refs} is too small for {len(phases)} phases"
            )
        built.append(
            build_pattern(
                phase,
                footprint_words=footprint_words,
                refs=phase_refs,
                write_fraction=write_fraction,
            )
        )
    return PhasedPattern(tuple(built))
