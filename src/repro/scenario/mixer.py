"""Deterministic N-tenant trace mixing with per-tenant attribution.

Generalises :func:`repro.mem.interference._interleave` (two-or-more
equal threads, fixed quantum) to weighted tenants: each round of the
interleave advances tenant *i* by ``quantum x weight_i`` references, in
spec order, until every tenant's stream is exhausted. Tenants occupy
disjoint 1 GB address windows — tenants do not share data, they share
the *hierarchy* — which is also what makes attribution exact: every
byte moved below the cache names its tenant in its address.

:func:`mix` renders a whole scenario into one :class:`MixedTrace`
(the shared trace plus a per-reference tenant-id array), and
:func:`attribute_traffic` replays a mixed trace through one cache,
splitting misses, fetch bytes, and write-back bytes (flush included)
per tenant. A solo baseline per tenant turns the split into the
interference story: how much traffic did sharing add, and who pays it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScenarioError
from repro.mem.cache import Cache, CacheConfig
from repro.scenario.patterns import build_pattern
from repro.scenario.spec import MAX_FOOTPRINT_BYTES, ScenarioSpec
from repro.trace.model import MemTrace
from repro.trace.synth import StreamPair

__all__ = [
    "MixedTrace",
    "TenantUsage",
    "AttributionReport",
    "mix",
    "interleave_weighted",
    "attribute_traffic",
]

#: Per-tenant address window (matches repro.mem.interference).
OFFSET_STEP = MAX_FOOTPRINT_BYTES


@dataclass(frozen=True, slots=True)
class MixedTrace:
    """A scenario's shared trace plus who issued each reference."""

    trace: MemTrace
    tenant_ids: np.ndarray            #: int16, parallel to the trace
    tenant_names: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.trace)

    def tenant_slice(self, index: int) -> MemTrace:
        """One tenant's references, in issue order, window offset removed."""
        mask = self.tenant_ids == index
        return MemTrace(
            self.trace.addresses[mask] - index * OFFSET_STEP,
            self.trace.is_write[mask],
            name=self.tenant_names[index],
        )


def interleave_weighted(
    streams: list[StreamPair],
    *,
    quantum: int,
    weights: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Weighted round-robin interleave onto disjoint address windows.

    Returns ``(addresses, is_write, tenant_ids)``. Deterministic: rounds
    visit tenants in list order, tenant *i* advancing ``quantum x
    weight_i`` references per round until exhausted — shorter streams
    simply drop out of later rounds, as in the interference model.
    """
    if not streams:
        raise ScenarioError("interleave needs at least one tenant stream")
    if len(weights) != len(streams):
        raise ScenarioError(
            f"{len(streams)} streams but {len(weights)} weights"
        )
    if quantum <= 0:
        raise ScenarioError(f"quantum must be positive, got {quantum}")
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    id_parts: list[np.ndarray] = []
    cursors = [0] * len(streams)
    live = set(range(len(streams)))
    while live:
        for index in sorted(live):
            addresses, writes = streams[index]
            start = cursors[index]
            stop = min(start + quantum * weights[index], addresses.size)
            addr_parts.append(addresses[start:stop] + index * OFFSET_STEP)
            write_parts.append(writes[start:stop])
            id_parts.append(
                np.full(stop - start, index, dtype=np.int16)
            )
            cursors[index] = stop
            if stop >= addresses.size:
                live.discard(index)
    return (
        np.concatenate(addr_parts),
        np.concatenate(write_parts),
        np.concatenate(id_parts),
    )


def build_streams(
    spec: ScenarioSpec, rng: np.random.Generator
) -> list[StreamPair]:
    """Each tenant's stream at its resolved ref share, pre-offset.

    Every tenant gets an independent child generator derived from the
    scenario generator, so one tenant's draw count never perturbs
    another's stream — adding a tenant leaves existing tenants'
    reference sequences byte-identical.
    """
    seeds = rng.integers(
        0, np.iinfo(np.int64).max, size=len(spec.tenants)
    )
    streams = []
    for tenant, refs, seed in zip(spec.tenants, spec.tenant_refs(), seeds):
        pattern = build_pattern(
            tenant.pattern,
            footprint_words=tenant.footprint_words,
            refs=refs,
            write_fraction=tenant.write_fraction,
        )
        streams.append(pattern.stream(np.random.default_rng(int(seed))))
    return streams


def mix_stream(spec: ScenarioSpec, rng: np.random.Generator) -> StreamPair:
    """The scenario's shared stream — the :class:`ScenarioWorkload` build."""
    addresses, writes, _ = interleave_weighted(
        build_streams(spec, rng),
        quantum=spec.quantum,
        weights=[tenant.weight for tenant in spec.tenants],
    )
    return addresses, writes


def mix(spec: ScenarioSpec, *, seed: int | None = None) -> MixedTrace:
    """Render a scenario into its mixed trace with tenant attribution ids.

    *seed* defaults to the spec's own seed; passing one explicitly
    re-seeds the same scenario shape (the workload path does exactly
    this with the CLI's ``--seed``).
    """
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    addresses, writes, tenant_ids = interleave_weighted(
        build_streams(spec, rng),
        quantum=spec.quantum,
        weights=[tenant.weight for tenant in spec.tenants],
    )
    return MixedTrace(
        trace=MemTrace(addresses, writes, name=spec.display_name),
        tenant_ids=tenant_ids,
        tenant_names=tuple(tenant.name for tenant in spec.tenants),
    )


@dataclass(frozen=True, slots=True)
class TenantUsage:
    """One tenant's share of a shared cache's work."""

    name: str
    refs: int
    misses: int
    traffic_bytes: int         #: fetches + write-backs + flush, this tenant
    solo_traffic_bytes: int    #: same tenant alone on the same cache

    @property
    def miss_rate(self) -> float:
        return self.misses / self.refs if self.refs else 0.0

    @property
    def traffic_expansion(self) -> float:
        """Shared over solo: > 1 means interference added traffic."""
        if not self.solo_traffic_bytes:
            return 1.0
        return self.traffic_bytes / self.solo_traffic_bytes


@dataclass(frozen=True, slots=True)
class AttributionReport:
    """Per-tenant split of one shared-cache run, with solo baselines."""

    tenants: tuple[TenantUsage, ...]
    total_traffic_bytes: int
    total_misses: int

    @property
    def traffic_expansion(self) -> float:
        solo = sum(tenant.solo_traffic_bytes for tenant in self.tenants)
        if not solo:
            return 1.0
        return self.total_traffic_bytes / solo


def attribute_traffic(
    mixed: MixedTrace, config: CacheConfig
) -> AttributionReport:
    """Replay a mixed trace, splitting misses and traffic per tenant.

    Uses the scalar per-access path with a traffic listener: the
    listener sees every byte moved below the cache (fetches, write-backs,
    the end-of-run flush) and the address names the owning tenant via
    its 1 GB window. The totals are therefore exactly the shared-cache
    :class:`~repro.mem.cache.CacheStats` — nothing is sampled or
    estimated — and each tenant's solo baseline runs the same config on
    its own slice of the mix.
    """
    n_tenants = len(mixed.tenant_names)
    traffic = [0] * n_tenants
    misses = [0] * n_tenants
    refs = [0] * n_tenants

    def listener(kind: str, address: int, nbytes: int) -> None:
        del kind
        traffic[address // OFFSET_STEP] += nbytes

    cache = Cache(config, listener=listener)
    ids = mixed.tenant_ids.tolist()
    for address, is_write, tenant in zip(
        mixed.trace.addresses.tolist(), mixed.trace.is_write.tolist(), ids
    ):
        refs[tenant] += 1
        if not cache.access(address, is_write):
            misses[tenant] += 1
    cache.flush()

    tenants = []
    for index, name in enumerate(mixed.tenant_names):
        solo = Cache(config).simulate(mixed.tenant_slice(index))
        tenants.append(
            TenantUsage(
                name=name,
                refs=refs[index],
                misses=misses[index],
                traffic_bytes=traffic[index],
                solo_traffic_bytes=solo.total_traffic_bytes,
            )
        )
    return AttributionReport(
        tenants=tuple(tenants),
        total_traffic_bytes=sum(traffic),
        total_misses=sum(misses),
    )
