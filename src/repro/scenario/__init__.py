"""Scenario engine: parameterized patterns + multi-tenant trace mixing.

The paper measures 14 fixed SPEC traces; this package opens the question
its Section 6 could not ask — does the pin-bandwidth wall move under
datacenter-style traffic? It provides:

* :mod:`repro.scenario.patterns` — the :class:`TracePattern` protocol and
  the composable pattern library (uniform / zipfian / hotspot / bursty /
  sequential / phased),
* :mod:`repro.scenario.spec` — declarative, validated
  :class:`ScenarioSpec` dicts with a canonical content address,
* :mod:`repro.scenario.mixer` — deterministic weighted N-tenant
  interleaving with exact per-tenant traffic attribution,
* :mod:`repro.scenario.workload` — :class:`ScenarioWorkload`, the
  adapter that lets every existing consumer (CLI, experiments, serving)
  run scenarios through the named-workload interface.

See docs/scenarios.md for the spec schema and worked examples, and
``repro scenario list|run|mix`` for the CLI surface.
"""

from repro.scenario.mixer import (
    AttributionReport,
    MixedTrace,
    TenantUsage,
    attribute_traffic,
    mix,
)
from repro.scenario.patterns import (
    PATTERN_KINDS,
    TracePattern,
    build_pattern,
    canonical_pattern,
    pattern_catalog,
    pattern_names,
)
from repro.scenario.spec import (
    SCENARIO_DEFAULTS,
    SCENARIO_SCHEMA,
    ScenarioSpec,
    TenantSpec,
    resolve_spec_argument,
)
from repro.scenario.workload import ScenarioWorkload, resolve_workload

__all__ = [
    "AttributionReport",
    "MixedTrace",
    "PATTERN_KINDS",
    "SCENARIO_DEFAULTS",
    "SCENARIO_SCHEMA",
    "ScenarioSpec",
    "ScenarioWorkload",
    "TenantSpec",
    "TenantUsage",
    "TracePattern",
    "attribute_traffic",
    "build_pattern",
    "canonical_pattern",
    "mix",
    "pattern_catalog",
    "pattern_names",
    "resolve_spec_argument",
    "resolve_workload",
]
