"""Declarative scenario specs: validation and content addressing.

A :class:`ScenarioSpec` is the JSON-friendly description of one traffic
scenario: which patterns run, over what footprint, with what read/write
mix, how many tenants share the hierarchy and at what weights, the
interleave quantum, and the seed. Two spellings of the same scenario
(string sizes vs byte counts, omitted vs explicit defaults, single-
pattern shorthand vs a one-tenant list) normalise to one *canonical*
dict, and :func:`ScenarioSpec.scenario_id` is the SHA-256 content
address of that dict — which is how scenarios key into the exec cache
and the serve coalescer exactly like named workloads.

Spec shape (JSON)::

    {
      "name": "checkout-mix",          // optional display name
      "footprint": "1MB",              // default per-tenant footprint
      "write_fraction": 0.25,          // default per-tenant write mix
      "refs": 200000,                  // total refs across tenants
      "quantum": 64,                   // interleave quantum (refs/switch)
      "seed": 0,                       // the scenario's trace seed
      "tenants": [                     // or shorthand: "pattern": {...}
        {"pattern": {"kind": "zipfian", "alpha": 1.1},
         "weight": 2,                  // share of refs and of each round
         "footprint": "2MB",           // optional per-tenant overrides
         "write_fraction": 0.1,
         "name": "frontend"},
        ...
      ]
    }

Validation raises :class:`repro.errors.ScenarioError` with messages that
name the offending field, mirroring the CLI's parse-time errors.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import ConfigurationError, ScenarioError
from repro.exec.keys import canonical_key, stable_hash
from repro.scenario.patterns import canonical_pattern
from repro.trace.model import WORD_BYTES
from repro.util import parse_size

__all__ = [
    "SCENARIO_SCHEMA",
    "SCENARIO_DEFAULTS",
    "ScenarioSpec",
    "TenantSpec",
    "resolve_spec_argument",
]

#: Version tag hashed into every scenario content address; bump on
#: incompatible spec changes so old cache entries stop matching.
SCENARIO_SCHEMA = "repro.scenario/v1"

#: Optional top-level fields and their defaults (documented above; a
#: test pins these equal to the canonicalised empty spec).
SCENARIO_DEFAULTS = {
    "footprint": "1MB",
    "write_fraction": 0.25,
    "refs": 200_000,
    "quantum": 64,
    "seed": 0,
}

#: Tenants get disjoint 1 GB address windows when mixed (matching
#: :mod:`repro.mem.interference`), so a footprint must fit one window.
MAX_FOOTPRINT_BYTES = 1 << 30

MAX_TENANTS = 32
MAX_WEIGHT = 1024
MAX_REFS = 50_000_000

_TOP_FIELDS = {"name", "pattern", "tenants"} | set(SCENARIO_DEFAULTS)
_TENANT_FIELDS = {"name", "pattern", "weight", "footprint", "write_fraction"}


def _fraction(value: object, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"field {field!r} must be a number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0 or value != value:
        raise ScenarioError(
            f"field {field!r} must be in [0, 1], got {value!r}"
        )
    return value


def _positive_int(value: object, field: str, *, maximum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise ScenarioError(
            f"field {field!r} must be a positive integer, got {value!r}"
        )
    if value > maximum:
        raise ScenarioError(
            f"field {field!r} must be at most {maximum}, got {value}"
        )
    return value


def _footprint_bytes(value: object, field: str) -> int:
    try:
        nbytes = parse_size(value)
    except (ConfigurationError, TypeError) as exc:
        raise ScenarioError(f"field {field!r}: {exc}") from exc
    if nbytes < 4 * WORD_BYTES:
        raise ScenarioError(
            f"field {field!r} must be at least {4 * WORD_BYTES} bytes, "
            f"got {value!r}"
        )
    if nbytes > MAX_FOOTPRINT_BYTES:
        raise ScenarioError(
            f"field {field!r} must be at most 1GB (tenants occupy disjoint "
            f"1GB address windows), got {value!r}"
        )
    return nbytes


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """One tenant's resolved slice of a scenario."""

    name: str
    pattern: dict          #: canonical pattern dict (hashable via JSON)
    weight: int            #: share of refs and of each interleave round
    footprint_bytes: int
    write_fraction: float

    @property
    def footprint_words(self) -> int:
        return self.footprint_bytes // WORD_BYTES

    def canonical(self) -> dict:
        return {
            "name": self.name,
            "pattern": self.pattern,
            "weight": self.weight,
            "footprint": self.footprint_bytes,
            "write_fraction": self.write_fraction,
        }


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A validated, fully-resolved scenario description."""

    tenants: tuple[TenantSpec, ...]
    refs: int
    quantum: int
    seed: int
    name: str | None = None

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_dict(cls, body: object) -> "ScenarioSpec":
        """Validate a raw (JSON-decoded) spec into its resolved form."""
        if not isinstance(body, dict):
            raise ScenarioError(
                f"scenario spec must be a JSON object, got "
                f"{type(body).__name__}"
            )
        unknown = sorted(set(body) - _TOP_FIELDS)
        if unknown:
            raise ScenarioError(
                f"unknown scenario field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_TOP_FIELDS))})"
            )
        name = body.get("name")
        if name is not None and (not isinstance(name, str) or not name):
            raise ScenarioError(
                f"field 'name' must be a non-empty string, got {name!r}"
            )
        merged = dict(SCENARIO_DEFAULTS, **body)
        refs = _positive_int(merged["refs"], "refs", maximum=MAX_REFS)
        quantum = _positive_int(merged["quantum"], "quantum", maximum=refs)
        seed = merged["seed"]
        if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
            raise ScenarioError(
                f"field 'seed' must be a non-negative integer, got {seed!r}"
            )
        default_footprint = _footprint_bytes(merged["footprint"], "footprint")
        default_wf = _fraction(merged["write_fraction"], "write_fraction")

        raw_tenants = body.get("tenants")
        if raw_tenants is not None and "pattern" in body:
            raise ScenarioError(
                "give either 'pattern' (single-tenant shorthand) or "
                "'tenants', not both"
            )
        if raw_tenants is None:
            if "pattern" not in body:
                raise ScenarioError(
                    "scenario spec needs a 'pattern' (single tenant) or a "
                    "'tenants' list"
                )
            raw_tenants = [{"pattern": body["pattern"]}]
        if not isinstance(raw_tenants, list) or not raw_tenants:
            raise ScenarioError(
                f"field 'tenants' must be a non-empty list, got "
                f"{raw_tenants!r}"
            )
        if len(raw_tenants) > MAX_TENANTS:
            raise ScenarioError(
                f"at most {MAX_TENANTS} tenants supported, got "
                f"{len(raw_tenants)}"
            )

        tenants = []
        for index, raw in enumerate(raw_tenants):
            if not isinstance(raw, dict):
                raise ScenarioError(
                    f"tenant #{index} must be an object, got {raw!r}"
                )
            unknown = sorted(set(raw) - _TENANT_FIELDS)
            if unknown:
                raise ScenarioError(
                    f"tenant #{index}: unknown field(s): "
                    f"{', '.join(unknown)} "
                    f"(known: {', '.join(sorted(_TENANT_FIELDS))})"
                )
            if "pattern" not in raw:
                raise ScenarioError(f"tenant #{index} needs a 'pattern'")
            tenant_name = raw.get("name", f"t{index}")
            if not isinstance(tenant_name, str) or not tenant_name:
                raise ScenarioError(
                    f"tenant #{index}: field 'name' must be a non-empty "
                    f"string, got {tenant_name!r}"
                )
            tenants.append(
                TenantSpec(
                    name=tenant_name,
                    pattern=canonical_pattern(raw["pattern"]),
                    weight=_positive_int(
                        raw.get("weight", 1), f"tenants[{index}].weight",
                        maximum=MAX_WEIGHT,
                    ),
                    footprint_bytes=(
                        _footprint_bytes(
                            raw["footprint"], f"tenants[{index}].footprint"
                        )
                        if "footprint" in raw
                        else default_footprint
                    ),
                    write_fraction=(
                        _fraction(
                            raw["write_fraction"],
                            f"tenants[{index}].write_fraction",
                        )
                        if "write_fraction" in raw
                        else default_wf
                    ),
                )
            )
        names = [tenant.name for tenant in tenants]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ScenarioError(
                f"duplicate tenant name(s): {', '.join(duplicates)}"
            )
        spec = cls(
            tenants=tuple(tenants),
            refs=refs,
            quantum=quantum,
            seed=seed,
            name=name,
        )
        # Every tenant must get at least one reference per share.
        if min(spec.tenant_refs()) < 1:
            raise ScenarioError(
                f"refs={refs} is too small for the tenant weights "
                f"(every tenant needs at least one reference)"
            )
        return spec

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            body = json.loads(text)
        except ValueError as exc:
            raise ScenarioError(f"scenario spec is not valid JSON: {exc}") from exc
        return cls.from_dict(body)

    # -- canonical form and content address ------------------------------------------

    def canonical(self) -> dict:
        """The fully-resolved dict this spec normalises to.

        Round-trips: ``ScenarioSpec.from_dict(spec.canonical())`` yields
        an equal spec, and every equivalent input spelling yields this
        exact dict — the property the content address relies on.
        """
        body: dict = {
            "refs": self.refs,
            "quantum": self.quantum,
            "seed": self.seed,
            "tenants": [tenant.canonical() for tenant in self.tenants],
        }
        if self.name is not None:
            body["name"] = self.name
        return body

    def scenario_id(self) -> str:
        """Truncated SHA-256 content address of the canonical form."""
        return stable_hash(
            {"schema": SCENARIO_SCHEMA, "scenario": self.canonical()}
        )[:12]

    @property
    def display_name(self) -> str:
        return self.name or f"scenario-{self.scenario_id()}"

    def to_argument(self) -> str:
        """The inline CLI spelling of this spec (``scenario:{...}``).

        This is what :func:`repro.serve.protocol.request_argv` embeds in
        a served job's argv, so the served run replays through the CLI
        byte-identically.
        """
        return "scenario:" + canonical_key(self.canonical())

    # -- derived quantities -----------------------------------------------------------

    def tenant_refs(self) -> list[int]:
        """Each tenant's reference budget: ``refs`` split by weight.

        Largest-remainder-free deterministic split: floor shares first,
        then the remainder goes to the earliest tenants, so the total is
        exactly ``refs`` on every platform.
        """
        total_weight = sum(tenant.weight for tenant in self.tenants)
        shares = [
            self.refs * tenant.weight // total_weight
            for tenant in self.tenants
        ]
        for index in range(self.refs - sum(shares)):
            shares[index % len(shares)] += 1
        return shares

    def total_footprint_bytes(self) -> int:
        return sum(tenant.footprint_bytes for tenant in self.tenants)

    def pattern_kinds(self) -> list[str]:
        return [tenant.pattern["kind"] for tenant in self.tenants]


def resolve_spec_argument(text: str) -> ScenarioSpec | None:
    """Interpret a CLI workload argument as a scenario reference.

    Three spellings name a scenario:

    * ``scenario:{...json...}`` — inline canonical form (the serve path),
    * ``@path.json`` — spec file,
    * ``path.json`` — spec file, bare (convenience).

    Anything else returns ``None`` and the caller falls back to the
    named-workload registry, so benchmark names keep working unchanged.
    """
    if text.startswith("scenario:"):
        return ScenarioSpec.from_json(text[len("scenario:"):])
    path = None
    if text.startswith("@"):
        path = text[1:]
    elif text.endswith(".json"):
        path = text
    if path is None:
        return None
    if not os.path.exists(path):
        raise ScenarioError(f"scenario spec file not found: {path}")
    try:
        with open(path, encoding="utf-8") as handle:
            return ScenarioSpec.from_json(handle.read())
    except OSError as exc:
        raise ScenarioError(
            f"cannot read scenario spec {path!r}: {exc}"
        ) from exc
