"""Tomcatv (SPEC92 052.tomcatv, vectorized mesh generation) workload.

Tomcatv's 3.67 MB data set is the largest in the paper's SPEC92 set; its
traffic ratio is flat around 0.71-0.75 through the middle cache sizes, then
drops to 0.33 at 1 MB and 0.24 at 2 MB as the residual arrays begin to fit.
Its traffic inefficiency is tiny (1.6-6.4) — a streaming scientific code
with "little temporal locality" leaves a minimal gap for the MTC to exploit.

The model is a nine-point stencil over two coordinate meshes plus sweeps
over the residual arrays, with one smaller, repeatedly reused error array
providing the working set that fits at the 1 MB mark.
"""

from __future__ import annotations

import math

import numpy as np

from repro.trace.synth import (
    StreamPair,
    column_sweep,
    concat_streams,
    interleave_streams,
    stencil_sweeps,
    sweep,
)
from repro.workloads.base import PaperFacts, SyntheticWorkload


class Tomcatv(SyntheticWorkload):
    name = "Tomcatv"
    suite = "SPEC92"
    paper = PaperFacts(
        refs_millions=104.2,
        dataset_mb=3.67,
        input_description="256x256, 10 iter",
    )
    behaviour = "streaming 9-point stencil over large meshes"

    _REFS_PER_SCALE = 3_800_000

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        mesh_words = self._scaled_words(1.4 * 1024 * 1024)
        side = max(16, int(math.sqrt(mesh_words)))
        residual_words = self._scaled_words(0.7 * 1024 * 1024)
        error_words = self._scaled_words(0.17 * 1024 * 1024, minimum=64)

        mesh_x_base = 0
        mesh_y_base = (mesh_words + 512) * 4
        residual_base = mesh_y_base + (mesh_words + 512) * 4
        error_base = residual_base + (residual_words + 512) * 4

        # Tomcatv's TRIDIB phase runs *along columns* of the row-major
        # meshes: no spatial locality for small caches (one 32-byte block
        # fetched per 4-byte reference), collapsing once a cache holds one
        # block per row. The meshes are treated as stacked planes of a
        # fixed 128-row geometry so that the column-reuse onset (one block
        # per row = rows x 32 B) lands at the same scaled cache size as the
        # paper's (Table 7 flattens out between 8 KB and 16 KB).
        plane_rows = 128
        # Fortran codes pad leading dimensions to avoid set aliasing; an
        # unpadded power-of-two stride would alias every column into a few
        # sets of a direct-mapped cache and never flatten out.
        row_words = plane_rows + 1
        plane_words = plane_rows * row_words
        planes = max(1, mesh_words // plane_words)
        column_passes = max(1, int(total_refs * 0.30) // (planes * plane_words))
        tridiagonal_planes = [
            column_sweep(
                mesh_x_base + p * plane_words * 4,
                plane_rows,
                row_words,
                passes=column_passes,
                write_every=3,
            )
            for p in range(planes)
        ]
        tridiagonal = concat_streams(tridiagonal_planes)
        stencil_refs_per_iter = (side - 2) ** 2 * 9
        iterations = max(1, int(total_refs * 0.46) // stencil_refs_per_iter)
        relaxation = stencil_sweeps(
            mesh_y_base, side, iterations=iterations, points=9
        )
        residual_passes = max(1, int(total_refs * 0.16) // residual_words)
        residuals = sweep(
            residual_base, residual_words, passes=residual_passes, write_every=4
        )
        error_passes = max(2, int(total_refs * 0.08) // error_words)
        errors = sweep(
            error_base, error_words, passes=error_passes, write_every=2
        )
        return interleave_streams(
            rng, [tridiagonal, relaxation, residuals, errors], chunk=128
        )
