"""Eqntott (SPEC92 023.eqntott) workload model.

Eqntott converts boolean equations to truth tables; most of its time is a
quicksort over large arrays of short "PTERM" records. The paper's
measurements show a smoothly declining traffic ratio (1.04 at 1 KB to 0.06
at 1 MB — reuse at every granularity, the signature of a recursive sort)
and the largest write-validate gap of any benchmark (31x, Table 9): it
writes large output structures that are rarely read back before eviction.

The model therefore combines:

* depth-first quicksort partition scans over the record array (reuse at
  every power-of-two granularity — the logarithmically declining R),
* Zipf-hot probes into a small parse/compare stack,
* store-only sweeps over an output truth-table region (write-validate's
  opportunity), and
* one full partition sweep (most of the data set stays cold).
"""

from __future__ import annotations

import numpy as np

from repro.trace.synth import (
    StreamPair,
    column_sweep,
    interleave_streams,
    quicksort_scans,
    truncate,
    zipf_probes,
)
from repro.workloads.base import PaperFacts, SyntheticWorkload


class Eqntott(SyntheticWorkload):
    name = "Eqntott"
    suite = "SPEC92"
    paper = PaperFacts(
        refs_millions=221.1,
        dataset_mb=1.63,
        input_description="int_pri_3.eqn",
    )
    behaviour = "recursive sorting of short records; never-read output writes"

    _REFS_PER_SCALE = 4_000_000

    #: PTERM records are four words; quicksort recursion bottoms out at a
    #: 16-record insertion sort.
    _RECORD_WORDS = 4

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        record_words = self._scaled_words(1_200 * 1024)
        output_words = self._scaled_words(100 * 1024)

        record_base = 0
        output_base = (record_words + 2048) * 4

        scans = quicksort_scans(
            record_base,
            record_words,
            min_run_words=16 * self._RECORD_WORDS,
            write_every=24,
        )
        probes = truncate(scans, max(1, int(total_refs * 0.62)))

        # Truth-table output is written along *columns*: strided stores.
        # A write-allocate cache fetches and writes back a 32-byte block
        # per 4-byte store and cannot keep the spanning blocks resident; a
        # write-validate word-grain MTC pays 4 bytes once — the engine of
        # Eqntott's 31x write-validate factor in the paper's Table 9.
        output_rows = 128
        output_row_words = max(9, output_words // output_rows) | 1
        output_refs = int(total_refs * 0.05)
        output_passes = max(
            1, output_refs // (output_rows * output_row_words)
        )
        output_writes = column_sweep(
            output_base,
            output_rows,
            output_row_words,
            passes=output_passes,
            write_every=1,
        )
        stack_words = self._scaled_words(6 * 1024, minimum=64)
        stack_base = output_base + (output_words + 1024) * 4
        stack = zipf_probes(
            rng,
            stack_base,
            stack_words,
            max(1, int(total_refs * 0.04)),
            alpha=1.5,
            write_fraction=0.35,
        )
        # Single-word probes into the BDD bit tables: Zipf-hot words
        # scattered through a large region. A 32-byte-block cache wastes
        # 7/8 of every fetch and thrashes its few sets on them, while an
        # optimally-managed word-grain memory keeps exactly the hot words —
        # the main source of Eqntott's huge Table 8 inefficiency.
        bit_words = self._scaled_words(240 * 1024)
        bit_base = stack_base + (stack_words + 1024) * 4
        bits = zipf_probes(
            rng,
            bit_base,
            bit_words,
            max(1, int(total_refs * 0.27)),
            alpha=1.30,
            write_fraction=0.12,
        )
        return interleave_streams(
            rng, [probes, stack, bits, output_writes], chunk=32
        )
