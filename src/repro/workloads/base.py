"""Workload base class.

A :class:`SyntheticWorkload` stands in for one SPEC92/SPEC95 benchmark. It
records the paper's published metadata for the benchmark (Table 3: trace
length in millions of references, data-set size, input) and knows how to
generate a memory trace whose *locality structure* matches the paper's
description of that benchmark.

Scaling
-------
Python simulation is orders of magnitude slower than the authors' C tools,
so workloads generate at a configurable ``scale``: a scale of ``1/16``
shrinks the benchmark footprint 16x. Experiments shrink their cache-size
axes by the same factor, so cache-size/working-set crossovers land in the
same table columns as the paper. ``scale=1.0`` generates at the paper's
full footprint (slow, but supported).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.trace.model import MemTrace, WORD_BYTES
from repro.trace.synth import StreamPair

#: Default footprint scale for reproduction runs (see module docstring).
#: 1/4 keeps even the smallest scaled cache column (1 KB -> 256 B) at a
#: meaningful eight sets of 32-byte blocks.
DEFAULT_SCALE = 1.0 / 4.0


@dataclass(frozen=True, slots=True)
class PaperFacts:
    """Published Table 3 metadata for one benchmark."""

    refs_millions: float
    dataset_mb: float
    input_description: str


class SyntheticWorkload(ABC):
    """One benchmark model. Subclasses set the class attributes and
    implement :meth:`_build`."""

    #: Benchmark name as the paper spells it (e.g. ``"Compress"``).
    name: str = ""
    #: ``"SPEC92"`` or ``"SPEC95"``.
    suite: str = ""
    #: Published metadata from Table 3 of the paper.
    paper: PaperFacts = PaperFacts(0.0, 0.0, "")
    #: One-line description of the access behaviour being modelled.
    behaviour: str = ""

    def __init__(self, scale: float = DEFAULT_SCALE) -> None:
        # isfinite also rejects NaN, which passes every comparison check.
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise WorkloadError(f"scale must be a number, got {scale!r}")
        if not math.isfinite(scale) or scale <= 0:
            raise WorkloadError(f"scale must be positive and finite, got {scale}")
        self.scale = scale

    # -- to be provided by each benchmark model ------------------------------------

    @abstractmethod
    def _build(self, rng: np.random.Generator) -> StreamPair:
        """Return the full (addresses, is_write) stream at ``self.scale``."""

    # -- public API -----------------------------------------------------------------

    def stream(self, rng: np.random.Generator) -> StreamPair:
        """The :class:`repro.scenario.patterns.TracePattern` interface.

        Benchmarks and scenario patterns share this one streaming
        surface: anything holding a workload can draw its raw
        ``(addresses, is_write)`` stream from a generator it controls.
        Deterministic for a given ``(scale, rng state)`` — and exactly
        what :meth:`generate` consumes, so the two can never diverge.
        """
        return self._build(rng)

    def generate(self, *, seed: int = 0, max_refs: int | None = None) -> MemTrace:
        """Generate this benchmark's memory trace.

        The trace is deterministic for a given ``(scale, seed)`` pair. When
        *max_refs* is given the trace is truncated to that many references
        (useful to bound simulation time in tests).
        """
        rng = np.random.default_rng(seed)
        addresses, writes = self.stream(rng)
        if addresses.size == 0:
            raise WorkloadError(f"workload {self.name} generated an empty trace")
        if max_refs is not None:
            if max_refs <= 0:
                raise WorkloadError(f"max_refs must be positive, got {max_refs}")
            addresses = addresses[:max_refs]
            writes = writes[:max_refs]
        return MemTrace(addresses, writes, name=self.name)

    def dataset_bytes(self) -> int:
        """Designed data-set footprint at this scale, in bytes.

        This is the scaled analogue of Table 3's data-set size column and
        is what experiments compare cache sizes against when deciding the
        paper's "<<<" (cache larger than data set) marking.
        """
        return int(self.paper.dataset_mb * 1024 * 1024 * self.scale)

    # -- helpers for subclasses -----------------------------------------------------

    def _scaled_words(self, paper_bytes: float, *, minimum: int = 64) -> int:
        """Scale a paper-sized structure (bytes) to words at this scale."""
        return max(minimum, int(paper_bytes * self.scale) // WORD_BYTES)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} scale={self.scale:g}>"
