"""SPEC95 floating-point workload models: Applu, Hydro2d, Su2cor95, Swim95.

These four grid codes feed the SPEC95 panel of the paper's Figure 3
(execution-time decomposition). Their data sets are an order of magnitude
larger than SPEC92's (8-32 MB, Table 3), which is why the paper's SPEC95
runs double the L2 and split the L1; the models reproduce the same
large-footprint streaming structure at scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.trace.synth import (
    StreamPair,
    interleave_streams,
    interleaved_sweep,
    stencil_sweeps,
    sweep,
)
from repro.workloads.base import PaperFacts, SyntheticWorkload


class _GridCode(SyntheticWorkload):
    """Shared machinery: stencil over a main grid + lockstep field sweeps."""

    suite = "SPEC95"
    _REFS_PER_SCALE = 3_200_000
    #: (grid fraction, per-field fraction, field count, stencil points)
    _GRID_SHARE = 0.5
    _FIELDS = 4
    _POINTS = 5

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        dataset = self.paper.dataset_mb * 1024 * 1024
        grid_words = self._scaled_words(dataset * self._GRID_SHARE)
        side = max(16, int(math.sqrt(grid_words)))
        field_words = self._scaled_words(
            dataset * (1.0 - self._GRID_SHARE) / self._FIELDS
        )
        alignment = 1 << max(12, (field_words * 4).bit_length())
        bases = [alignment * (j + 4) for j in range(self._FIELDS)]

        stencil_refs = (side - 2) ** 2 * self._POINTS
        iterations = max(1, int(total_refs * 0.55) // max(1, stencil_refs))
        grid_phase = stencil_sweeps(
            0, side, iterations=iterations, points=self._POINTS
        )
        passes = max(1, int(total_refs * 0.45) // (field_words * self._FIELDS))
        field_phase = interleaved_sweep(
            bases, field_words, passes=passes, write_last_array=True
        )
        return interleave_streams(rng, [grid_phase, field_phase], chunk=48)


class Applu(_GridCode):
    name = "Applu"
    paper = PaperFacts(383.7, 32.38, "33x33x33 grid, 2 iter.")
    behaviour = "implicit CFD solver: huge grids, streaming SSOR sweeps"
    _FIELDS = 5
    _POINTS = 5


class Hydro2d(_GridCode):
    name = "Hydro2D"
    paper = PaperFacts(263.7, 8.71, "test data set, 1 iter.")
    behaviour = "hydrodynamical Navier-Stokes: 2-D grid sweeps"
    _FIELDS = 4
    _POINTS = 9


class Su2cor95(_GridCode):
    name = "Su2cor95"
    paper = PaperFacts(533.8, 22.53, "test data set")
    behaviour = "quantum-physics Monte Carlo over large lattices"
    _FIELDS = 6
    _POINTS = 5

    def _build(self, rng: np.random.Generator) -> StreamPair:
        # Keep Su2cor's signature conflict behaviour from the SPEC92 model:
        # the lattice fields collide in small direct-mapped caches.
        base_stream = super()._build(rng)
        conflict_stride = max(256, int(64 * 1024 * self.scale))
        field_words = self._scaled_words(
            self.paper.dataset_mb * 1024 * 1024 * 0.2 / 4
        )
        spacing = ((field_words * 4) // conflict_stride + 1) * conflict_stride
        conflict = interleaved_sweep(
            [j * spacing for j in range(4)], field_words, passes=1
        )
        return interleave_streams(rng, [base_stream, conflict], chunk=64)


class Swim95(_GridCode):
    name = "Swim95"
    paper = PaperFacts(267.4, 14.46, "test data set")
    behaviour = "shallow-water model, 512x512 grids"
    _FIELDS = 4
    _POINTS = 5
