"""Su2cor (SPEC92 089.su2cor) workload model.

The paper: "Su2cor iterates over several large arrays, several of which
conflict heavily in its main routine until the cache size reaches 64KB"
(Section 4.2). Its Table 7 row is the most bandwidth-hostile of the suite:
traffic ratios above 7 for 1-4 KB caches, still 1.43 at 64 KB, declining to
0.13 at 1 MB.

The model interleaves element-wise sweeps over several large arrays whose
base addresses are congruent modulo the (scaled) 64 KB conflict distance:
in any direct-mapped cache of that size or less, the arrays' i-th elements
map to the same set and thrash; in larger caches only capacity misses
remain.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synth import (
    StreamPair,
    interleave_streams,
    interleaved_sweep,
    sweep,
)
from repro.workloads.base import PaperFacts, SyntheticWorkload


class Su2cor(SyntheticWorkload):
    name = "Su2cor"
    suite = "SPEC92"
    paper = PaperFacts(
        refs_millions=163.4,
        dataset_mb=1.53,
        input_description="in.short",
    )
    behaviour = "lockstep sweeps over arrays conflicting below 64KB"

    _REFS_PER_SCALE = 3_600_000
    #: Full conflicts persist up to this (paper-scale) cache size; partial
    #: conflicts linger one or two doublings beyond it (see below).
    _CONFLICT_BYTES = 16 * 1024
    _ARRAYS = 4

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        conflict_stride = max(256, int(self._CONFLICT_BYTES * self.scale))
        array_words = self._scaled_words(1.53 * 1024 * 1024 * 0.55 / self._ARRAYS)

        # Bases at odd multiples of the conflict stride: in caches <= the
        # stride, element i of every array maps to the same set (full
        # thrash); at 2x the stride the arrays fall into two groups (half
        # the conflicts); at 4x they separate completely — reproducing the
        # paper's gradual decline from R=7.4 to R=0.8 across Table 7.
        multiples = (array_words * 4) // conflict_stride + 1
        if multiples % 2 == 0:
            multiples += 1
        spacing = multiples * conflict_stride
        bases = [j * spacing for j in range(self._ARRAYS)]

        refs_per_pass = array_words * self._ARRAYS
        main_passes = max(1, int(total_refs * 0.72) // refs_per_pass)
        main_loop = interleaved_sweep(
            bases, array_words, passes=main_passes, write_last_array=True
        )
        # The Monte-Carlo update loop: a smaller, heavily reused gauge
        # array — the working set that fits from ~256 KB (paper scale) on.
        hot_words = self._scaled_words(0.10 * 1024 * 1024)
        hot_base = self._ARRAYS * spacing + conflict_stride // 2
        hot_passes = max(2, int(total_refs * 0.28) // hot_words)
        hot = sweep(hot_base, hot_words, passes=hot_passes, write_every=4)
        return interleave_streams(rng, [main_loop, hot], chunk=48)
