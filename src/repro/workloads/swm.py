"""Swm (SPEC92 052.swm256, shallow-water model) workload.

The paper: "Swm iterates over large arrays, with a reference pattern that
contains little locality and no small working sets"; its traffic ratio is
remarkably flat (~0.56-0.63) from 16 KB through 512 KB caches, and its
traffic inefficiency is the smallest of the irregular codes (2.7-3.5 in the
flat region) — there is simply little for a smarter cache to exploit until
the whole data set fits (G jumps to 124 at 1 MB, where the fully-
associative MTC holds everything but a direct-mapped cache still conflicts).

The model runs the shallow-water timestep: a five-point stencil over the
height field (intra-row reuse pulls the ratio below 1) interleaved with
lockstep sweeps over the velocity arrays. Array bases are deliberately
placed at multiples of a large power of two so that direct-mapped caches
keep conflicting even when a fully-associative memory of the same size
would capture the whole footprint — reproducing the 1 MB G spike.
"""

from __future__ import annotations

import math

import numpy as np

from repro.trace.synth import StreamPair
from repro.workloads.base import PaperFacts, SyntheticWorkload


class Swm(SyntheticWorkload):
    name = "Swm"
    suite = "SPEC92"
    paper = PaperFacts(
        refs_millions=50.6,
        dataset_mb=0.93,
        input_description="180x180, 50 iter.",
    )
    behaviour = "flat working set: stencil + lockstep array sweeps"

    _REFS_PER_SCALE = 3_200_000
    #: Shallow water keeps ~13 state arrays (u, v, p, old/new copies, cu,
    #: cv, z, h, psi) that the timestep loops walk in lockstep.
    _ARRAYS = 13

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        array_words = self._scaled_words(0.93 * 1024 * 1024 / self._ARRAYS)

        # Arrays scattered across a region ~4x the data set (separate
        # Fortran COMMON blocks): base residues modulo a near-data-set-size
        # cache overlap by the birthday effect, so a direct-mapped cache
        # keeps conflicting even when its capacity exceeds the footprint —
        # the paper's G spike at 1 MB, where the fully-associative MTC
        # holds everything ("caches with associativities less than four
        # require 4 MB to contain the data set"). For caches well below
        # the footprint this placement is indistinguishable from packed
        # layout, so the flat region is unaffected.
        array_bytes = ((array_words * 4) // 32) * 32 + 32
        slot_count = 4 * self._ARRAYS
        slots = rng.permutation(slot_count)[: self._ARRAYS]
        bases = sorted(int(s) * array_bytes for s in slots)

        # Each update loop references neighbour rows as well as the current
        # element (U(i+1,j), P(i,j+1), ...); the live set is therefore a
        # few rows of every array, which is what keeps small caches missing
        # until the ~8-16 KB (paper scale) flattening point of Table 7.
        # Several arrays are read by more than one loop (CU, CV, Z, H),
        # pulling the flat-region ratio below 1 (paper: ~0.6).
        row_words = 24
        pattern = [(base, 0) for base in bases]
        pattern += [(bases[j], row_words) for j in (2, 3, 4)]
        pattern += [(bases[j], -row_words) for j in (5, 6)]
        group = len(pattern)
        refs_per_pass = array_words * group
        passes = max(2, total_refs // refs_per_pass)
        return _lockstep_with_offsets(
            pattern, array_words, passes=passes, write_last=True
        )


def _lockstep_with_offsets(
    pattern: list[tuple[int, int]],
    array_words: int,
    *,
    passes: int,
    write_last: bool,
) -> StreamPair:
    """Element-wise lockstep sweep where each stream has a word offset.

    For each element index i, touches ``base + (i + offset) * 4`` for every
    (base, offset) in *pattern*; offsets wrap modulo the array length.
    """
    index = np.arange(array_words, dtype=np.int64)
    columns = [
        base + ((index + offset) % array_words) * 4
        for base, offset in pattern
    ]
    one_pass = np.stack(columns, axis=1).reshape(-1)
    addresses = np.tile(one_pass, passes)
    writes_one = np.zeros(len(pattern), dtype=bool)
    if write_last:
        writes_one[len(pattern) - 1] = True
    writes = np.tile(np.tile(writes_one, array_words), passes)
    return addresses, writes
