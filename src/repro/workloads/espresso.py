"""Espresso (SPEC92 008.espresso) workload model.

Espresso minimizes boolean functions over small cube/cover structures. Its
data set is tiny (0.04 MB with the ``mlp4`` input) and intensely reused:
the paper's Table 7 shows the traffic ratio collapsing from 1.43 at 1 KB to
0.01 at 32 KB, with every larger cache marked "<<<" (bigger than the data
set).

The model makes many passes over a small cube matrix, with Zipf-hot probes
into set registers and unate-leaf structures, and a modest write fraction.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synth import (
    StreamPair,
    interleave_streams,
    sweep,
    zipf_probes,
)
from repro.workloads.base import PaperFacts, SyntheticWorkload


class Espresso(SyntheticWorkload):
    name = "Espresso"
    suite = "SPEC92"
    paper = PaperFacts(
        refs_millions=22.3,
        dataset_mb=0.04,
        input_description="mlp4 only",
    )
    behaviour = "many passes over a tiny, heavily reused cube matrix"

    _REFS_PER_SCALE = 3_200_000

    #: One cube row: a handful of bit-vector words swept together.
    _ROW_WORDS = 32

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        cube_words = self._scaled_words(24 * 1024, minimum=4 * self._ROW_WORDS)
        register_words = self._scaled_words(4 * 1024, minimum=64)
        rows = max(2, cube_words // self._ROW_WORDS)

        cube_base = 0
        # The register/unate structures sit at a 16 KB-aligned (paper
        # scale) offset from the cube matrix: in direct-mapped caches up
        # to that size the hot registers alias the hot cube rows — the
        # associativity factor of 73x the paper isolates for Espresso in
        # Table 9. A fully-associative MTC is immune.
        alias_stride = max(512, int(16 * 1024 * self.scale))
        register_base = ((cube_words * 4 // alias_stride) + 1) * alias_stride

        # The cover loop: pick two cube rows (Zipf-hot — a few covers are
        # compared constantly) and sweep both. Rows are small, so hit rate
        # rises quickly with cache size, collapsing R from ~1.4 at 1 KB to
        # ~0.01 once the matrix fits (paper Table 7).
        pair_steps = max(1, int(total_refs * 0.72) // (2 * self._ROW_WORDS))
        chosen = _zipf_rows(rng, rows, 2 * pair_steps, alpha=1.35)
        offsets = np.arange(self._ROW_WORDS, dtype=np.int64)
        row_addr = (
            cube_base + (chosen[:, None] * self._ROW_WORDS + offsets[None, :]) * 4
        ).reshape(-1)
        row_writes = np.zeros(row_addr.size, dtype=bool)
        row_writes[2 * self._ROW_WORDS - 1 :: 2 * self._ROW_WORDS] = True
        cover_loop = (row_addr, row_writes)

        full_passes = max(1, int(total_refs * 0.1) // cube_words)
        matrix_sweep = sweep(cube_base, cube_words, passes=full_passes, write_every=6)
        register_probes = zipf_probes(
            rng,
            register_base,
            register_words,
            int(total_refs * 0.18),
            alpha=1.5,
            write_fraction=0.15,
        )
        return interleave_streams(
            rng, [cover_loop, matrix_sweep, register_probes], chunk=64
        )


def _zipf_rows(
    rng: np.random.Generator, n: int, count: int, alpha: float
) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    permutation = rng.permutation(n)
    return permutation[rng.choice(n, size=count, p=weights)].astype(np.int64)
