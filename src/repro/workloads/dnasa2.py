"""Dnasa2 (two kernels of SPEC92 093.nasa7) workload model.

The paper uses "two of the Dnasa7 kernels — the two-dimensional FFT and the
4-way unrolled matrix multiply" with a 0.18 MB data set (FFT,
MxM = 128x64x64). Both kernels are exactly the algorithms analysed in the
paper's Table 2 growth-rate derivations, so this workload doubles as the
empirical check on those I/O-complexity models.

The model concatenates an in-place radix-2 FFT phase with a tiled
matrix-multiply phase, sized to the scaled data set.
"""

from __future__ import annotations

import math

import numpy as np

from repro.trace.synth import (
    StreamPair,
    concat_streams,
    fft2d_passes,
    tiled_matrix_multiply,
)
from repro.workloads.base import PaperFacts, SyntheticWorkload


def _round_down_pow2(value: int) -> int:
    return 1 << max(0, value.bit_length() - 1)


class Dnasa2(SyntheticWorkload):
    name = "Dnasa2"
    suite = "SPEC92"
    paper = PaperFacts(
        refs_millions=181.0,
        dataset_mb=0.18,
        input_description="FFT, MxM=128x64x64",
    )
    behaviour = "radix-2 FFT butterflies + tiled matrix multiply"

    _REFS_PER_SCALE = 2_400_000

    def _build(self, rng: np.random.Generator) -> StreamPair:
        del rng  # fully deterministic workload
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        # Split the scaled footprint between the 2-D FFT working grid
        # (complex points, 2 words each) and three MxM matrices.
        fft_words = self._scaled_words(0.10 * 1024 * 1024, minimum=256)
        grid_points = _round_down_pow2(max(64, fft_words // 2))
        fft_cols = _round_down_pow2(max(8, int(math.sqrt(grid_points))))
        fft_rows = max(2, grid_points // fft_cols)

        matrix_words_each = self._scaled_words(0.027 * 1024 * 1024, minimum=64)
        matrix_side = _round_down_pow2(max(8, int(math.sqrt(matrix_words_each))))
        tile = max(4, matrix_side // 8)

        fft_base = 0
        grid_extent = fft_rows * (fft_cols * 2 + 1)  # padded rows
        a_base = (grid_extent + 512) * 4
        b_base = a_base + (matrix_side * matrix_side + 512) * 4
        c_base = b_base + (matrix_side * matrix_side + 512) * 4

        fft_phase = fft2d_passes(fft_base, fft_rows, fft_cols)
        mxm_phase = tiled_matrix_multiply(a_base, b_base, c_base, matrix_side, tile)
        # NASA7 invokes each kernel repeatedly (181M refs over 0.18 MB in
        # the paper); repeat the two phases to reach the reference budget.
        refs_per_round = fft_phase[0].size + mxm_phase[0].size
        rounds = max(1, total_refs // refs_per_round)
        return concat_streams([fft_phase, mxm_phase] * rounds)
