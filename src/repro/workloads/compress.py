"""Compress (SPEC92 129.compress) workload model.

The paper: "Compress repeatedly accesses a hash table, so its memory
reference stream contains little spatial locality (a larger block size will
consequently waste bandwidth)" (Section 4.2), with a 0.41 MB data set over a
1,000,000-byte input file.

The model mixes three components, matching the LZW structure of compress:

* uniform random probes into the large hash/code table (no spatial
  locality; traffic ratios above 1 for small and medium caches),
* probes into a small hot region (recently-inserted codes and counters),
* sequential streaming over the input and output buffers.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synth import (
    StreamPair,
    interleave_streams,
    sweep,
    zipf_probes,
)
from repro.workloads.base import PaperFacts, SyntheticWorkload


class Compress(SyntheticWorkload):
    name = "Compress"
    suite = "SPEC92"
    paper = PaperFacts(
        refs_millions=21.9,
        dataset_mb=0.41,
        input_description="1000000 byte file",
    )
    behaviour = "hash-table probes with little spatial locality"

    #: Reference-count budget per unit scale (tuned so the default 1/4
    #: scale produces a ~0.8M-reference trace).
    _REFS_PER_SCALE = 3_300_000

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(2_000, int(self._REFS_PER_SCALE * self.scale))
        table_words = self._scaled_words(340 * 1024)
        hot_words = self._scaled_words(6 * 1024, minimum=32)
        buffer_words = self._scaled_words(30 * 1024)

        table_base = 0
        hot_base = (table_words + 256) * 4
        input_base = hot_base + (hot_words + 256) * 4
        output_base = input_base + (buffer_words + 1024) * 4

        # LZW hash probes are skewed (common prefixes recur), not uniform:
        # a mild Zipf makes hit rate grow steadily with cache size, the way
        # the paper's Table 7 row declines from 3.03 to 0.43.
        cold_probes = zipf_probes(
            rng,
            table_base,
            table_words,
            int(total_refs * 0.14),
            alpha=0.80,
            write_fraction=0.30,
        )
        hot_probes = zipf_probes(
            rng,
            hot_base,
            hot_words,
            int(total_refs * 0.22),
            alpha=1.25,
            write_fraction=0.30,
        )
        # The input and output loops process data byte by byte: the word-
        # granularity trace sees four consecutive references per word, so
        # streams cost the cache (and the MTC) a quarter of a fetch per
        # reference.
        stream_refs_each = int(total_refs * 0.32)
        input_passes = max(1, stream_refs_each // (buffer_words * 4))
        input_stream = sweep(
            input_base, buffer_words, passes=input_passes, repeats=4
        )
        output_stream = sweep(
            output_base,
            buffer_words,
            passes=input_passes,
            write_every=3,
            repeats=4,
        )
        return interleave_streams(
            rng, [cold_probes, hot_probes, input_stream, output_stream], chunk=16
        )
