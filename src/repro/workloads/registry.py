"""Benchmark registry: name -> workload class, plus Table 3 metadata.

The registry is the single source of truth for which benchmarks exist and
which suite each belongs to; every experiment looks workloads up here.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.base import DEFAULT_SCALE, SyntheticWorkload
from repro.workloads.compress import Compress
from repro.workloads.dnasa2 import Dnasa2
from repro.workloads.eqntott import Eqntott
from repro.workloads.espresso import Espresso
from repro.workloads.spec95fp import Applu, Hydro2d, Su2cor95, Swim95
from repro.workloads.spec95int import Li, Perl, Vortex
from repro.workloads.su2cor import Su2cor
from repro.workloads.swm import Swm
from repro.workloads.tomcatv import Tomcatv

_WORKLOADS: tuple[type[SyntheticWorkload], ...] = (
    # SPEC92, in the paper's Table 3 order.
    Compress,
    Dnasa2,
    Eqntott,
    Espresso,
    Su2cor,
    Swm,
    Tomcatv,
    # SPEC95, in the paper's Table 3 order.
    Applu,
    Hydro2d,
    Li,
    Perl,
    Su2cor95,
    Swim95,
    Vortex,
)

_BY_NAME = {cls.name.lower(): cls for cls in _WORKLOADS}


def workload_names(suite: str | None = None) -> list[str]:
    """Benchmark names, optionally filtered to ``"SPEC92"`` or ``"SPEC95"``."""
    if suite is not None and suite not in ("SPEC92", "SPEC95"):
        raise WorkloadError(f"unknown suite {suite!r}")
    return [cls.name for cls in _WORKLOADS if suite is None or cls.suite == suite]


def get_workload(name: str, scale: float = DEFAULT_SCALE) -> SyntheticWorkload:
    """Instantiate the named workload at the given scale."""
    cls = _BY_NAME.get(name.lower())
    if cls is None:
        import difflib

        close = difflib.get_close_matches(name.lower(), _BY_NAME, n=3)
        suggestion = (
            "did you mean "
            + " or ".join(_BY_NAME[match].name for match in close)
            + "? "
            if close
            else ""
        )
        known = ", ".join(sorted(_BY_NAME))
        raise WorkloadError(
            f"unknown workload {name!r}; {suggestion}known: {known}"
        )
    return cls(scale=scale)


def all_workloads(
    suite: str | None = None, scale: float = DEFAULT_SCALE
) -> list[SyntheticWorkload]:
    """Instantiate every workload (optionally one suite) at *scale*."""
    return [get_workload(name, scale=scale) for name in workload_names(suite)]


def table3_rows(scale: float = DEFAULT_SCALE) -> list[dict[str, object]]:
    """Rows of the paper's Table 3, augmented with reproduction-scale data.

    Each row carries the published reference count and data-set size next to
    the scaled footprint this library actually generates, so EXPERIMENTS.md
    can print paper-vs-measured side by side.
    """
    rows = []
    for cls in _WORKLOADS:
        workload = cls(scale=scale)
        rows.append(
            {
                "benchmark": cls.name,
                "suite": cls.suite,
                "paper_refs_millions": cls.paper.refs_millions,
                "paper_dataset_mb": cls.paper.dataset_mb,
                "input": cls.paper.input_description,
                "scaled_dataset_bytes": workload.dataset_bytes(),
            }
        )
    return rows
