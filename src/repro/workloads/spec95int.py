"""SPEC95 integer workload models: Li, Perl, Vortex.

These feed the SPEC95 panel of Figure 3. The paper's own characterization
guides each model: Li is cache-bound (0.12 MB data set — the paper lists it
with Espresso and Eqntott as "not ... non-cache-bound"); Perl and Vortex
are the two benchmarks whose latency stalls still exceed bandwidth stalls
under the most aggressive processor (experiment F), i.e. pointer-heavy
codes with large footprints but low memory-level parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synth import (
    StreamPair,
    interleave_streams,
    pointer_chain,
    sweep,
    zipf_probes,
)
from repro.workloads.base import PaperFacts, SyntheticWorkload


class Li(SyntheticWorkload):
    name = "Li"
    suite = "SPEC95"
    paper = PaperFacts(471.3, 0.12, "test.lsp")
    behaviour = "lisp interpreter: cons-cell chasing in a tiny heap"

    _REFS_PER_SCALE = 3_200_000

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        heap_words = self._scaled_words(0.10 * 1024 * 1024, minimum=256)
        cells = pointer_chain(
            rng,
            0,
            nodes=max(16, heap_words // 3),
            node_words=3,
            count=max(1, int(total_refs * 0.75) // 3),
            write_fraction=0.12,
            locality=0.3,
        )
        stack_words = self._scaled_words(12 * 1024, minimum=64)
        stack = zipf_probes(
            rng,
            (heap_words + 256) * 4,
            stack_words,
            int(total_refs * 0.25),
            alpha=1.3,
            write_fraction=0.4,
        )
        return interleave_streams(rng, [cells, stack], chunk=20)


class Perl(SyntheticWorkload):
    name = "Perl"
    suite = "SPEC95"
    paper = PaperFacts(1280.8, 25.70, "jumble.pl")
    behaviour = "interpreter: hot opcode tables over a huge cold heap"

    _REFS_PER_SCALE = 3_600_000

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        heap_words = self._scaled_words(22 * 1024 * 1024)
        heap = zipf_probes(
            rng,
            0,
            heap_words,
            int(total_refs * 0.55),
            alpha=1.05,
            write_fraction=0.2,
        )
        string_words = self._scaled_words(3 * 1024 * 1024)
        string_base = (heap_words + 4096) * 4
        passes = max(1, int(total_refs * 0.45) // string_words)
        strings = sweep(string_base, string_words, passes=passes, write_every=5)
        return interleave_streams(rng, [heap, strings], chunk=28)


class Vortex(SyntheticWorkload):
    name = "Vortex"
    suite = "SPEC95"
    paper = PaperFacts(1180.3, 19.87, "test data set")
    behaviour = "object database: record sweeps + index probes"

    _REFS_PER_SCALE = 3_600_000

    def _build(self, rng: np.random.Generator) -> StreamPair:
        total_refs = max(4_000, int(self._REFS_PER_SCALE * self.scale))
        db_words = self._scaled_words(16 * 1024 * 1024)
        index_words = self._scaled_words(3 * 1024 * 1024)
        index_base = (db_words + 4096) * 4

        records = pointer_chain(
            rng,
            0,
            nodes=max(16, db_words // 16),
            node_words=16,
            count=max(1, int(total_refs * 0.5) // 16),
            write_fraction=0.15,
            locality=0.45,
        )
        index = zipf_probes(
            rng,
            index_base,
            index_words,
            int(total_refs * 0.35),
            alpha=1.0,
            write_fraction=0.1,
        )
        log_words = self._scaled_words(0.8 * 1024 * 1024)
        log_base = index_base + (index_words + 4096) * 4
        log_passes = max(1, int(total_refs * 0.15) // log_words)
        log_writes = sweep(log_base, log_words, passes=log_passes, write_every=1)
        return interleave_streams(rng, [records, index, log_writes], chunk=28)
