"""Synthetic SPEC92/SPEC95 benchmark models.

Each workload generates a memory trace whose locality structure matches the
paper's description of the corresponding SPEC benchmark (see DESIGN.md for
the substitution argument). Use :func:`get_workload` /
:func:`all_workloads` rather than the classes directly.
"""

from repro.workloads.base import DEFAULT_SCALE, PaperFacts, SyntheticWorkload
from repro.workloads.compress import Compress
from repro.workloads.dnasa2 import Dnasa2
from repro.workloads.eqntott import Eqntott
from repro.workloads.espresso import Espresso
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    table3_rows,
    workload_names,
)
from repro.workloads.spec95fp import Applu, Hydro2d, Su2cor95, Swim95
from repro.workloads.spec95int import Li, Perl, Vortex
from repro.workloads.su2cor import Su2cor
from repro.workloads.swm import Swm
from repro.workloads.tomcatv import Tomcatv

__all__ = [
    "DEFAULT_SCALE",
    "PaperFacts",
    "SyntheticWorkload",
    "Compress",
    "Dnasa2",
    "Eqntott",
    "Espresso",
    "Su2cor",
    "Swm",
    "Tomcatv",
    "Applu",
    "Hydro2d",
    "Li",
    "Perl",
    "Su2cor95",
    "Swim95",
    "Vortex",
    "all_workloads",
    "get_workload",
    "table3_rows",
    "workload_names",
]
