"""Metrics registry: counters, gauges, timers, and latency histograms.

The registry is the *aggregate* half of the observability layer (the
per-event half lives in :mod:`repro.obs.events`). Simulators increment
counters and observe timer samples; at the end of a run the registry is
snapshotted into a plain ``dict`` that is stable under a fixed seed —
counter and gauge values are deterministic; timer *durations* are wall
clock and therefore excluded from determinism guarantees (only their
sample counts are deterministic).

Four instrument kinds share one namespace:

* :class:`Counter` — monotonically increasing integers;
* :class:`Gauge` — last-value-wins floats;
* :class:`Timer` — keeps every sample, summarised with exact
  interpolated percentiles (suits bounded runs like one experiment);
* :class:`~repro.obs.hist.Histogram` — fixed buckets, O(1) per
  observation forever (suits a server that never restarts: queue waits,
  service times, per-engine-stage durations).

The registry is thread-safe for the serve layer's access pattern: the
scheduler thread updates counters and histograms while the asyncio event
loop renders ``/metrics`` (:meth:`MetricsRegistry.exposition`) and
``/healthz`` concurrently.

Metric naming convention: dotted lowercase paths, ``<layer>.<what>``
(``cache.accesses``, ``bus.l2_mem.busy_cycles``, ``core.mispredictions``).
Instrument names are created on first use; reading an absent metric via
:meth:`MetricsRegistry.snapshot` simply omits it.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs.hist import Histogram, percentile_interpolated

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "percentile_interpolated",
]


def percentile(samples: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of *samples* (q in [0, 100]).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.0
    """
    items = sorted(samples)
    if not items:
        raise ConfigurationError("percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    if q == 0.0:
        return items[0]
    rank = math.ceil(q / 100.0 * len(items))
    return items[rank - 1]


class Counter:
    """A monotonically increasing integer metric.

    ``inc`` is thread-safe: a read-modify-write on an attribute is not
    atomic under the interpreter, and the serve layer increments from
    both the event loop and the scheduler thread.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value-wins metric (window occupancy, configured sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Timer:
    """A duration histogram summarised by count/total/percentiles.

    Samples are seconds. Use :meth:`observe` with a measured duration or
    the :meth:`time` context manager around the timed section.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[float] = []

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError(
                f"timer {self.name} observed negative duration {seconds}"
            )
        self.samples.append(seconds)

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total_seconds(self) -> float:
        return sum(self.samples)

    def summary(self) -> dict[str, float]:
        """count/total/mean/p50/p90/p95/p99/max of the observed samples.

        Percentiles are linearly interpolated
        (:func:`~repro.obs.hist.percentile_interpolated`): nearest-rank
        p99 collapses onto the max for small sample counts, which made
        bench reports claim ``p99 == max`` on 40-sample runs.
        """
        if not self.samples:
            return {"count": 0, "total_s": 0.0}
        return {
            "count": self.count,
            "total_s": self.total_seconds,
            "mean_s": self.total_seconds / self.count,
            "p50_s": percentile_interpolated(self.samples, 50),
            "p90_s": percentile_interpolated(self.samples, 90),
            "p95_s": percentile_interpolated(self.samples, 95),
            "p99_s": percentile_interpolated(self.samples, 99),
            "max_s": max(self.samples),
        }

    def __repr__(self) -> str:
        return f"<Timer {self.name} n={self.count} total={self.total_seconds:.4f}s>"


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Create-on-first-use store of counters, gauges, timers, histograms.

    Registries are cheap; the profiler builds a fresh one per run so that
    snapshots describe exactly one experiment. A name may hold only one
    instrument kind — asking for ``counter(n)`` after ``gauge(n)`` raises.

    Instrument *creation* is serialised by one lock so two threads racing
    on the same name get the same instance; snapshot/exposition copy the
    name tables under that lock, then read instruments lock-free (each
    instrument guards its own state where needed).
    """

    __slots__ = ("_counters", "_gauges", "_timers", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            with self._lock:
                found = self._counters.get(name)
                if found is None:
                    self._check_free(
                        name, self._gauges, self._timers, self._histograms
                    )
                    found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            with self._lock:
                found = self._gauges.get(name)
                if found is None:
                    self._check_free(
                        name, self._counters, self._timers, self._histograms
                    )
                    found = self._gauges[name] = Gauge(name)
        return found

    def timer(self, name: str) -> Timer:
        found = self._timers.get(name)
        if found is None:
            with self._lock:
                found = self._timers.get(name)
                if found is None:
                    self._check_free(
                        name, self._counters, self._gauges, self._histograms
                    )
                    found = self._timers[name] = Timer(name)
        return found

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None
    ) -> Histogram:
        """The fixed-bucket histogram *name*, created on first use."""
        found = self._histograms.get(name)
        if found is None:
            with self._lock:
                found = self._histograms.get(name)
                if found is None:
                    self._check_free(
                        name, self._counters, self._gauges, self._timers
                    )
                    found = self._histograms[name] = Histogram(name, bounds)
        return found

    @staticmethod
    def _check_free(name: str, *tables: dict[str, object]) -> None:
        for table in tables:
            if name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered with a different kind"
                )

    def _tables(
        self,
    ) -> tuple[
        dict[str, Counter],
        dict[str, Gauge],
        dict[str, Timer],
        dict[str, Histogram],
    ]:
        """Consistent copies of the name tables (safe to iterate)."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                dict(self._timers),
                dict(self._histograms),
            )

    def snapshot(self) -> dict[str, object]:
        """All metric values as one JSON-serialisable dict, sorted names."""
        counters, gauges, timers, histograms = self._tables()
        return {
            "counters": {name: counters[name].value for name in sorted(counters)},
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "timers": {name: timers[name].summary() for name in sorted(timers)},
            "histograms": {
                name: histograms[name].snapshot() for name in sorted(histograms)
            },
        }

    def counter_values(self) -> dict[str, int]:
        """Just the counters — the deterministic part of a snapshot."""
        counters = self._tables()[0]
        return {name: counters[name].value for name in sorted(counters)}

    @staticmethod
    def _escape_name(name: str) -> str:
        """Metric name made line-format-safe for :meth:`exposition`.

        The format is ``<name> <value>``, one per line, parsed back with
        ``rpartition(" ")`` — so a space, newline, or backslash in a
        name would corrupt the stream. Escaped in that order:
        ``\\`` → ``\\\\``, newline → ``\\n``, space → ``\\_``.
        """
        return (
            name.replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace(" ", "\\_")
        )

    def exposition(self) -> str:
        """The registry as a line-oriented text export (``GET /metrics``).

        One ``<name> <value>`` pair per line, grouped by instrument kind
        under ``#`` comment headers, names sorted within each group so
        the output is diffable and greppable. Timers and histograms
        flatten their summaries into ``<name>.<stat>`` lines (``count``
        first). Floats render via ``repr`` so no precision is invented
        or dropped; names are escaped per :meth:`_escape_name`. Safe to
        call while other threads update instruments.

        >>> registry = MetricsRegistry()
        >>> registry.counter("serve.requests").inc(3)
        >>> print(registry.exposition())
        # counters
        serve.requests 3
        """
        counters, gauges, timers, histograms = self._tables()
        lines: list[str] = []

        def value_text(value: object) -> str:
            return repr(value) if isinstance(value, float) else str(value)

        def summary_lines(name: str, summary: dict[str, float]) -> None:
            safe = self._escape_name(name)
            for stat in sorted(summary, key=lambda s: (s != "count", s)):
                lines.append(f"{safe}.{stat} {value_text(summary[stat])}")

        if counters:
            lines.append("# counters")
            for name in sorted(counters):
                lines.append(f"{self._escape_name(name)} {counters[name].value}")
        if gauges:
            lines.append("# gauges")
            for name in sorted(gauges):
                lines.append(
                    f"{self._escape_name(name)} {value_text(gauges[name].value)}"
                )
        if timers:
            lines.append("# timers")
            for name in sorted(timers):
                summary_lines(name, timers[name].summary())
        if histograms:
            lines.append("# histograms")
            for name in sorted(histograms):
                summary_lines(name, histograms[name].snapshot())
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (names included)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} timers={len(self._timers)} "
            f"histograms={len(self._histograms)}>"
        )
