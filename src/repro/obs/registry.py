"""Metrics registry: counters, gauges, and timers with percentile summaries.

The registry is the *aggregate* half of the observability layer (the
per-event half lives in :mod:`repro.obs.events`). Simulators increment
counters and observe timer samples; at the end of a run the registry is
snapshotted into a plain ``dict`` that is stable under a fixed seed —
counter and gauge values are deterministic; timer *durations* are wall
clock and therefore excluded from determinism guarantees (only their
sample counts are deterministic).

Metric naming convention: dotted lowercase paths, ``<layer>.<what>``
(``cache.accesses``, ``bus.l2_mem.busy_cycles``, ``core.mispredictions``).
Instrument names are created on first use; reading an absent metric via
:meth:`MetricsRegistry.snapshot` simply omits it.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "percentile",
]


def percentile(samples: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of *samples* (q in [0, 100]).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.0
    """
    items = sorted(samples)
    if not items:
        raise ConfigurationError("percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    if q == 0.0:
        return items[0]
    rank = math.ceil(q / 100.0 * len(items))
    return items[rank - 1]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value-wins metric (window occupancy, configured sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Timer:
    """A duration histogram summarised by count/total/percentiles.

    Samples are seconds. Use :meth:`observe` with a measured duration or
    the :meth:`time` context manager around the timed section.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[float] = []

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError(
                f"timer {self.name} observed negative duration {seconds}"
            )
        self.samples.append(seconds)

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total_seconds(self) -> float:
        return sum(self.samples)

    def summary(self) -> dict[str, float]:
        """count/total/mean/p50/p90/p99/max of the observed samples."""
        if not self.samples:
            return {"count": 0, "total_s": 0.0}
        return {
            "count": self.count,
            "total_s": self.total_seconds,
            "mean_s": self.total_seconds / self.count,
            "p50_s": percentile(self.samples, 50),
            "p90_s": percentile(self.samples, 90),
            "p99_s": percentile(self.samples, 99),
            "max_s": max(self.samples),
        }

    def __repr__(self) -> str:
        return f"<Timer {self.name} n={self.count} total={self.total_seconds:.4f}s>"


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Create-on-first-use store of named counters, gauges, and timers.

    Registries are cheap; the profiler builds a fresh one per run so that
    snapshots describe exactly one experiment. A name may hold only one
    instrument kind — asking for ``counter(n)`` after ``gauge(n)`` raises.
    """

    __slots__ = ("_counters", "_gauges", "_timers")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            self._check_free(name, self._gauges, self._timers)
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            self._check_free(name, self._counters, self._timers)
            found = self._gauges[name] = Gauge(name)
        return found

    def timer(self, name: str) -> Timer:
        found = self._timers.get(name)
        if found is None:
            self._check_free(name, self._counters, self._gauges)
            found = self._timers[name] = Timer(name)
        return found

    @staticmethod
    def _check_free(name: str, *tables: dict[str, object]) -> None:
        for table in tables:
            if name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered with a different kind"
                )

    def snapshot(self) -> dict[str, object]:
        """All metric values as one JSON-serialisable dict, sorted names."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "timers": {
                name: self._timers[name].summary()
                for name in sorted(self._timers)
            },
        }

    def counter_values(self) -> dict[str, int]:
        """Just the counters — the deterministic part of a snapshot."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def exposition(self) -> str:
        """The registry as a line-oriented text export (``GET /metrics``).

        One ``<name> <value>`` pair per line, grouped by instrument kind
        under ``#`` comment headers, names sorted within each group so
        the output is diffable and greppable. Timers flatten their
        summary into ``<name>.<stat>`` lines (``count`` first). Floats
        render via ``repr`` so no precision is invented or dropped.

        >>> registry = MetricsRegistry()
        >>> registry.counter("serve.requests").inc(3)
        >>> print(registry.exposition())
        # counters
        serve.requests 3
        """
        lines: list[str] = []

        def value_text(value: object) -> str:
            return repr(value) if isinstance(value, float) else str(value)

        if self._counters:
            lines.append("# counters")
            for name in sorted(self._counters):
                lines.append(f"{name} {self._counters[name].value}")
        if self._gauges:
            lines.append("# gauges")
            for name in sorted(self._gauges):
                lines.append(f"{name} {value_text(self._gauges[name].value)}")
        if self._timers:
            lines.append("# timers")
            for name in sorted(self._timers):
                summary = self._timers[name].summary()
                for stat in sorted(summary, key=lambda s: (s != "count", s)):
                    lines.append(f"{name}.{stat} {value_text(summary[stat])}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (names included)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} timers={len(self._timers)}>"
        )
