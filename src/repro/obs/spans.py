"""Request-scoped span tracing: propagated trace/span ids and JSONL logs.

Where :mod:`repro.obs.events` answers "what happened, in what order"
(deterministic, seq-numbered), spans answer "where did this request's
*time* go". A span is one timed region with identity::

    {"trace": "t3f2a-1", "span": "3f2a-2", "parent": "3f2a-1",
     "name": "serve.exec", "start": 1754..., "end": 1754...,
     "pid": 16170, "attrs": {"job": "83afc21b9f02f1fd"}}

* ``trace`` groups every span of one request (created at HTTP admission
  or at CLI dispatch);
* ``parent`` links the tree together — including across *process
  boundaries*: the serve scheduler serializes the current context into
  each :class:`repro.exec.Task`, and the pool worker re-hydrates it
  before running, so worker-side spans (engine stages, per-chunk
  simulation) are children of the parent-side request span;
* ``start``/``end`` are epoch seconds (``time.time()``), the one clock
  that is comparable across forked processes.

The process-wide :data:`TRACER` starts **disabled**; hot paths guard
every hook behind ``if TRACER.enabled`` so the disabled cost is one
attribute load and a branch, and disabled output is byte-identical to a
build without this module. When enabled (``--trace-spans PATH``), each
process appends complete lines to the shared log with an
``O_APPEND`` handle it opened itself (re-opened after fork), so
concurrent writers never interleave partial records.

The second half of the module reads span logs back: :func:`build_trees`
reconstructs the per-trace span trees, :func:`critical_path` extracts
the chain that determined a request's latency, and
:func:`folded_stacks` emits folded-stack lines consumable by
``flamegraph.pl`` / speedscope. ``repro spans`` is the CLI over these.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError

__all__ = [
    "SPAN_SCHEMA",
    "Span",
    "SpanTracer",
    "TRACER",
    "SpanNode",
    "configure_tracing",
    "disable_tracing",
    "read_spans",
    "build_trees",
    "select_trace",
    "render_tree",
    "critical_path",
    "render_critical_path",
    "folded_stacks",
]

#: Version tag for the span JSONL schema (every record carries it).
SPAN_SCHEMA = "repro.spans/v1"

#: The ambient span context: ``{"trace": ..., "span": ...}`` or None.
_CURRENT: ContextVar[dict | None] = ContextVar("repro_span_context",
                                              default=None)


class Span:
    """One open span; mutate ``attrs`` before the block exits."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attrs: dict,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.time()
        self.attrs = attrs

    def context(self) -> dict:
        """The serializable context naming this span as parent.

        Ship this dict alongside a task (it is plain JSON data) and
        re-hydrate it in the worker with :meth:`SpanTracer.adopt`.
        """
        return {"trace": self.trace_id, "span": self.span_id}


class SpanTracer:
    """The process-wide span writer (:data:`TRACER`).

    Disabled by default; :meth:`configure` points it at a JSONL path and
    enables it. Forked children inherit the enabled flag and path but
    re-open the file on first emit (the parent owns the inherited
    handle), appending whole lines so writers never corrupt each other.
    """

    __slots__ = ("enabled", "_path", "_file", "_file_pid", "_seq", "_lock")

    def __init__(self) -> None:
        self.enabled = False
        self._path: str | None = None
        self._file = None
        self._file_pid = 0
        self._seq = 0
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def configure(self, path: str) -> None:
        """Start tracing into *path* (truncated first)."""
        with self._lock:
            self._close_locked()
            try:
                with open(path, "w", encoding="utf-8"):
                    pass
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot open span log {path!r}: {exc}"
                ) from exc
            self._path = path
            self._seq = 0
            self.enabled = True

    def deactivate(self) -> None:
        """Stop tracing and release the log handle."""
        with self._lock:
            self.enabled = False
            self._path = None
            self._close_locked()

    @property
    def path(self) -> str | None:
        return self._path

    def flush(self) -> None:
        """Flush the log handle (called before forking workers)."""
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()

    def _close_locked(self) -> None:
        if self._file is not None and self._file_pid == os.getpid():
            try:
                self._file.close()
            except OSError:
                pass
        self._file = None
        self._file_pid = 0

    # -- identity ----------------------------------------------------------------

    def _next_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{os.getpid():x}-{self._seq}"

    def current(self) -> dict | None:
        """The ambient context (``{"trace", "span"}``) or None."""
        return _CURRENT.get()

    def context(self) -> dict | None:
        """Alias of :meth:`current` — the dict to serialize into a task."""
        return _CURRENT.get()

    @contextmanager
    def adopt(self, ctx: dict | None) -> Iterator[None]:
        """Re-hydrate a serialized context as the ambient one (workers)."""
        token = _CURRENT.set(dict(ctx) if ctx else None)
        try:
            yield
        finally:
            _CURRENT.reset(token)

    # -- emission ----------------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, *, ctx: dict | None = None, **attrs: object
    ) -> Iterator[Span]:
        """Open a span around a code region.

        The parent is *ctx* when given, else the ambient context; with
        neither, this span roots a fresh trace. The ambient context is
        set to this span for the duration, so nested spans (including
        ones opened by library code that never saw *ctx*) chain onto it.
        """
        if not self.enabled:
            yield Span(name, "", "", None, attrs)
            return
        parent = ctx if ctx is not None else _CURRENT.get()
        span_id = self._next_id()
        if parent:
            trace_id = parent["trace"]
            parent_id = parent["span"]
        else:
            trace_id = f"t{span_id}"
            parent_id = None
        span = Span(name, trace_id, span_id, parent_id, attrs)
        token = _CURRENT.set(span.context())
        try:
            yield span
        finally:
            _CURRENT.reset(token)
            self._write(
                span.name,
                span.trace_id,
                span.span_id,
                span.parent_id,
                span.start,
                time.time(),
                span.attrs,
            )

    def begin(
        self, name: str, *, ctx: dict | None = None, **attrs: object
    ) -> Span | None:
        """Open a long-lived span without scoping it to a code block.

        Used for spans whose start and end live in different callbacks —
        the ``serve.request`` root opens at HTTP admission and closes
        when the scheduler marks the job terminal. The record is only
        written at :meth:`finish`, but the ids are fixed here, so child
        spans emitted in between (and in worker processes) already carry
        valid parent links. Returns ``None`` when tracing is disabled.
        """
        if not self.enabled:
            return None
        parent = ctx if ctx is not None else _CURRENT.get()
        span_id = self._next_id()
        if parent:
            trace_id, parent_id = parent["trace"], parent["span"]
        else:
            trace_id, parent_id = f"t{span_id}", None
        return Span(name, trace_id, span_id, parent_id, attrs)

    def finish(self, span: Span | None, end: float | None = None) -> None:
        """Write a span opened with :meth:`begin` (no-op on ``None``)."""
        if span is None or not self.enabled:
            return
        self._write(
            span.name,
            span.trace_id,
            span.span_id,
            span.parent_id,
            span.start,
            end if end is not None else time.time(),
            span.attrs,
        )

    def emit_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        ctx: dict | None = None,
        **attrs: object,
    ) -> None:
        """Record a span whose interval was measured elsewhere.

        Used for retroactive regions like queue wait, where the start
        was stamped at admission and the end is only known when the
        scheduler picks the job up.
        """
        if not self.enabled:
            return
        parent = ctx if ctx is not None else _CURRENT.get()
        span_id = self._next_id()
        if parent:
            trace_id, parent_id = parent["trace"], parent["span"]
        else:
            trace_id, parent_id = f"t{span_id}", None
        self._write(name, trace_id, span_id, parent_id, start, end, attrs)

    def _write(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start: float,
        end: float,
        attrs: dict,
    ) -> None:
        record = {
            "schema": SPAN_SCHEMA,
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "name": name,
            "start": start,
            "end": end,
            "pid": os.getpid(),
            "attrs": {key: attrs[key] for key in sorted(attrs)},
        }
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            if self._path is None:
                return
            if self._file is None or self._file_pid != os.getpid():
                # First emit in this process (or post-fork): open our own
                # O_APPEND handle; whole-line appends never interleave.
                self._file = open(self._path, "a", encoding="utf-8")
                self._file_pid = os.getpid()
            self._file.write(line)
            self._file.flush()


#: The process-wide tracer every layer imports. Disabled by default; the
#: CLI (``--trace-spans``) and the server turn it on for one run.
TRACER = SpanTracer()


def configure_tracing(path: str) -> SpanTracer:
    """Enable :data:`TRACER` on *path* and return it."""
    TRACER.configure(path)
    return TRACER


def disable_tracing() -> None:
    """Disable :data:`TRACER` and close its log."""
    TRACER.deactivate()


# -- span-log analysis ------------------------------------------------------------


@dataclass(slots=True)
class SpanNode:
    """One span record plus its reconstructed children."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def span_id(self) -> str:
        return self.record["span"]

    @property
    def trace_id(self) -> str:
        return self.record["trace"]

    @property
    def start(self) -> float:
        return self.record["start"]

    @property
    def end(self) -> float:
        return self.record["end"]

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def self_seconds(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(
            0.0, self.seconds - sum(child.seconds for child in self.children)
        )

    def attr(self, key: str) -> object:
        return (self.record.get("attrs") or {}).get(key)


def read_spans(path: str) -> list[dict]:
    """Parse one span JSONL log; non-span lines are rejected loudly."""
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"{path}:{number}: not valid JSON: {exc}"
                    ) from exc
                if record.get("schema") != SPAN_SCHEMA:
                    raise ConfigurationError(
                        f"{path}:{number}: not a {SPAN_SCHEMA} record "
                        f"(schema={record.get('schema')!r}); is this an "
                        f"event log rather than a span log?"
                    )
                records.append(record)
    except OSError as exc:
        raise ConfigurationError(f"cannot read span log {path!r}: {exc}") from exc
    return records


def build_trees(records: list[dict]) -> list[SpanNode]:
    """Reconstruct span trees; returns the roots sorted by start time.

    A span whose parent id never appears in the log (e.g. the log was
    truncated, or the parent process died before closing its span) is
    promoted to a root rather than dropped, so partial logs still render.
    """
    nodes = {record["span"]: SpanNode(record) for record in records}
    roots: list[SpanNode] = []
    for record in records:
        node = nodes[record["span"]]
        parent = nodes.get(record.get("parent") or "")
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: (child.start, child.span_id))
    roots.sort(key=lambda root: (root.start, root.span_id))
    return roots


def select_trace(
    roots: list[SpanNode],
    *,
    trace: str | None = None,
    job: str | None = None,
) -> SpanNode:
    """The root matching a trace id or a ``job`` attribute, validated."""
    if trace is not None:
        matches = [root for root in roots if root.trace_id == trace]
        what = f"trace {trace!r}"
    elif job is not None:
        if not job:
            # An empty prefix would "match" every root, including spans
            # with no job attribute at all.
            raise ConfigurationError("--job needs a non-empty id or prefix")
        matches = [root for root in roots if root.attr("job") == job]
        if not matches:
            # Job ids are long content hashes; accept an unambiguous
            # prefix (roots without a job attribute never match).
            matches = [
                root
                for root in roots
                if str(root.attr("job") or "").startswith(job)
            ]
            distinct = sorted({str(root.attr("job")) for root in matches})
            if len(distinct) > 1:
                raise ConfigurationError(
                    f"job prefix {job!r} is ambiguous: " + ", ".join(distinct)
                )
        what = f"job {job!r}"
    else:
        raise ConfigurationError("select_trace needs a trace id or a job id")
    if not matches:
        known = sorted({root.trace_id for root in roots})
        raise ConfigurationError(
            f"no spans for {what} in this log (traces: "
            + (", ".join(known[:8]) if known else "none")
            + (", ..." if len(known) > 8 else "")
            + ")"
        )
    return matches[0]


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.1f}ms"


def _describe(node: SpanNode) -> str:
    attrs = node.record.get("attrs") or {}
    shown = " ".join(
        f"{key}={attrs[key]}" for key in sorted(attrs) if attrs[key] is not None
    )
    pid = node.record.get("pid")
    tag = f" [pid {pid}]" if pid is not None else ""
    return f"{node.name}{tag}" + (f" {shown}" if shown else "")


def render_tree(root: SpanNode) -> str:
    """Indented tree view with total and self time per span."""
    lines = [f"trace {root.trace_id}"]

    def walk(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{_describe(node)}  "
            f"total={_format_ms(node.seconds)} "
            f"self={_format_ms(node.self_seconds)}"
        )
        for child in node.children:
            walk(child, depth + 1)

    walk(root, 1)
    return "\n".join(lines)


def critical_path(root: SpanNode) -> list[SpanNode]:
    """The chain of spans that determined the trace's end-to-end time.

    Standard last-finisher extraction: starting at the root, repeatedly
    descend into the child whose *end* is latest — the one the parent
    was still waiting on when it closed. The returned list runs root to
    leaf; each node's :attr:`~SpanNode.self_seconds` is its contribution.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: (child.end, child.start))
        path.append(node)
    return path


def render_critical_path(root: SpanNode) -> str:
    """The critical path as one line per hop with share-of-total."""
    path = critical_path(root)
    total = root.seconds or 1e-12
    lines = [
        f"critical path of trace {root.trace_id} "
        f"({_format_ms(root.seconds)} end to end):"
    ]
    for node in path:
        share = node.self_seconds / total
        lines.append(
            f"  {_format_ms(node.self_seconds):>10s}  {share:>6.1%}  "
            f"{_describe(node)}"
        )
    covered = sum(node.self_seconds for node in path)
    lines.append(
        f"  {_format_ms(covered):>10s}  {covered / total:>6.1%}  (path total)"
    )
    return "\n".join(lines)


def folded_stacks(roots: list[SpanNode]) -> list[str]:
    """Folded-stack lines (``a;b;c <microseconds>``) for flamegraph tools.

    Each span contributes its *self* time under its ancestry path, so
    the flame widths sum to real wall clock per trace. Identical stacks
    across traces are merged (summed), matching ``flamegraph.pl`` input
    expectations; speedscope imports the same format.
    """
    weights: dict[str, int] = {}

    def walk(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{node.name}" if prefix else node.name
        micros = round(node.self_seconds * 1e6)
        if micros > 0:
            weights[stack] = weights.get(stack, 0) + micros
        for child in node.children:
            walk(child, stack)

    for root in roots:
        walk(root, "")
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]
