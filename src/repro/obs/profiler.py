"""Experiment profiling harness: wall-clock, throughput, per-stage timing.

Wraps one experiment module (``repro.experiments.<name>``) in the
instrumentation layer, times its import/run/render stages, and produces a
:class:`RunProfile` — printed as a human table by :func:`render_profile`
and written as machine-readable JSON (``BENCH_profile.json``) by
:func:`write_profile`. The JSON trail is the repo's performance
trajectory: each committed baseline lets a later PR prove a hot path got
faster (or catch that it got slower).

Schema ``repro.profile/v2``::

    {
      "schema": "repro.profile/v2",
      "experiment": "table2",
      "max_refs": 5000,
      "engine": "auto",              # resolved engine selection
      "wall_seconds": 1.234,
      "stages": [{"name": "run", "seconds": 1.2,
                  "references": 123456,          # refs in this stage
                  "refs_per_second": 102880.0}, ...],
      "references": 123456,          # word refs simulated (cache + MTC)
      "refs_per_second": 101234.5,   # references / run-stage seconds
      "counters": {...},             # deterministic under a fixed seed
      "timers": {...},               # percentile summaries, wall clock
      "gauges": {...},               # e.g. exec.jobs for parallel runs
      "histograms": {...},           # fixed-bucket latency snapshots
      "python": "3.12.3"
    }

v2 over v1: the ``timers`` table is now guaranteed non-empty — each
profiled stage records a ``profile.stage.<name>`` registry timer (v1
only ever saw timers from the pool path, so serial profiles wrote an
empty ``{}``); timer summaries gained an interpolated ``p95_s``; and
``histograms`` carries the fixed-bucket latency snapshots the
instrumented engines record (``sim.cache.<engine>.time`` etc.).

Profiled runs never use the execution layer's result cache — a profile
must measure real simulation work, not disk reads — but they do honour
``jobs`` so multi-worker throughput can be compared against the serial
baseline (the ``exec.worker.time`` timer and ``exec.jobs`` gauge feed
the worker-utilization line).
"""

from __future__ import annotations

import importlib
import inspect
import json
import platform
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs import OBS, EventSink, instrumented
from repro.util import fraction

__all__ = [
    "PROFILE_SCHEMA",
    "StageTiming",
    "RunProfile",
    "profile_experiment",
    "render_profile",
    "write_profile",
]

PROFILE_SCHEMA = "repro.profile/v2"

#: Counters summed into the profile's simulated-reference throughput.
_REFERENCE_COUNTERS = ("cache.accesses", "mtc.accesses")


@dataclass(frozen=True, slots=True)
class StageTiming:
    """Wall-clock seconds spent in one named stage of a run.

    *references* counts the word references simulated while the stage
    ran (cache + MTC engines combined), so per-stage throughput shows
    which stage the simulation kernels actually ran in.
    """

    name: str
    seconds: float
    references: int = 0

    @property
    def refs_per_second(self) -> float:
        return fraction(self.references, self.seconds)


@dataclass(slots=True)
class RunProfile:
    """Everything measured about one profiled experiment run."""

    experiment: str
    max_refs: int | None
    wall_seconds: float
    stages: list[StageTiming]
    counters: dict[str, int]
    timers: dict[str, dict[str, float]] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    engine: str = "auto"

    @property
    def references(self) -> int:
        """Word references simulated, summed over all cache engines."""
        return sum(self.counters.get(name, 0) for name in _REFERENCE_COUNTERS)

    @property
    def run_seconds(self) -> float:
        for stage in self.stages:
            if stage.name == "run":
                return stage.seconds
        return self.wall_seconds

    @property
    def refs_per_second(self) -> float:
        return fraction(self.references, self.run_seconds)

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": PROFILE_SCHEMA,
            "experiment": self.experiment,
            "max_refs": self.max_refs,
            "engine": self.engine,
            "wall_seconds": self.wall_seconds,
            "stages": [
                {
                    "name": stage.name,
                    "seconds": stage.seconds,
                    "references": stage.references,
                    "refs_per_second": stage.refs_per_second,
                }
                for stage in self.stages
            ],
            "references": self.references,
            "refs_per_second": self.refs_per_second,
            "counters": self.counters,
            "timers": self.timers,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "python": platform.python_version(),
        }


def _run_kwargs(run, max_refs: int | None) -> dict[str, object]:
    """Pass ``max_refs`` only to experiments whose run() accepts it."""
    if max_refs is None:
        return {}
    parameters = inspect.signature(run).parameters
    return {"max_refs": max_refs} if "max_refs" in parameters else {}


def profile_experiment(
    name: str,
    *,
    max_refs: int | None = None,
    sink: EventSink | None = None,
    jobs: int = 1,
) -> tuple[RunProfile, str]:
    """Run experiment *name* under full instrumentation.

    Returns ``(profile, rendered_table)`` where *rendered_table* is the
    experiment's normal output (so a profiled run still shows its
    results). A fresh metrics registry is installed for the duration; the
    previous :data:`~repro.obs.OBS` state is restored afterwards. When
    *sink* is None, any sink already attached to OBS (for example by the
    CLI's ``--trace-events``) keeps receiving events. *jobs* > 1 runs the
    experiment's sweeps on a process pool; the result cache stays off so
    every profiled second is simulation, not disk.
    """
    from repro.exec import execution
    from repro.mem import engines

    module_path = f"repro.experiments.{name}"
    overall_start = time.perf_counter()
    stages: list[StageTiming] = []

    def simulated_references() -> int:
        counters = OBS.registry.snapshot()["counters"]
        return sum(counters.get(key, 0) for key in _REFERENCE_COUNTERS)

    def staged(stage_name: str, fn):
        with OBS.span("stage", stage=stage_name):
            start = time.perf_counter()
            before = simulated_references()
            result = fn()
            seconds = time.perf_counter() - start
            # The same duration also lands in a registry timer so the
            # machine-readable profile's "timers" table is never empty.
            OBS.observe(f"profile.stage.{stage_name}", seconds)
            stages.append(
                StageTiming(
                    stage_name,
                    seconds,
                    references=simulated_references() - before,
                )
            )
        return result

    with instrumented(sink=sink), execution(jobs=jobs):
        try:
            module = staged(
                "import", lambda: importlib.import_module(module_path)
            )
        except ImportError as exc:
            raise ConfigurationError(f"no experiment named {name!r}") from exc
        result = staged(
            "run", lambda: module.run(**_run_kwargs(module.run, max_refs))
        )
        rendered = staged("render", lambda: module.render(result))
        snapshot = OBS.registry.snapshot()

    profile = RunProfile(
        experiment=name,
        max_refs=max_refs,
        wall_seconds=time.perf_counter() - overall_start,
        stages=stages,
        counters=snapshot["counters"],
        timers=snapshot["timers"],
        gauges=snapshot["gauges"],
        histograms=snapshot["histograms"],
        engine=engines.resolve_engine(),
    )
    return profile, rendered


def render_profile(profile: RunProfile) -> str:
    """The human-readable run profile printed by ``repro profile``."""
    from repro.util import format_table

    lines = [
        f"profile: {profile.experiment}"
        + (f" (max_refs={profile.max_refs:,})" if profile.max_refs else "")
        + f" [engine={profile.engine}]",
        "",
    ]
    rows = [
        [
            stage.name,
            f"{stage.seconds:.3f}s",
            f"{fraction(stage.seconds, profile.wall_seconds):.1%}",
            f"{stage.refs_per_second:,.0f}" if stage.references else "-",
        ]
        for stage in profile.stages
    ]
    rows.append(
        ["total", f"{profile.wall_seconds:.3f}s", "100.0%", "-"]
    )
    lines.append(format_table(["stage", "seconds", "share", "refs/s"], rows))
    lines.append("")
    lines.append(
        f"references simulated: {profile.references:,} "
        f"({profile.refs_per_second:,.0f} refs/sec)"
    )
    worker = profile.timers.get("exec.worker.time")
    jobs = int(profile.gauges.get("exec.jobs", 0))
    if worker and jobs:
        busy = worker.get("total_s", 0.0)
        budget = jobs * profile.run_seconds
        lines.append(
            f"workers: {jobs} ({busy:.3f}s busy, "
            f"{fraction(busy, budget):.1%} utilization)"
        )
    hot = sorted(
        profile.counters.items(), key=lambda item: item[1], reverse=True
    )[:8]
    if hot:
        lines.append("top counters:")
        width = max(len(name) for name, _ in hot)
        for counter_name, value in hot:
            lines.append(f"  {counter_name:<{width}s}  {value:,}")
    return "\n".join(lines)


def write_profile(profile: RunProfile, path: str) -> None:
    """Write the machine-readable profile JSON (sorted keys, indented)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
