"""Fixed-bucket latency histograms with interpolated percentile snapshots.

Two related pieces live here:

* :func:`percentile_interpolated` — the *exact* linearly-interpolated
  percentile of a raw sample list. This replaces nearest-rank percentiles
  everywhere a full sample set is held (``Timer.summary``,
  ``scripts/load_serve.py``): with small sample counts nearest-rank p99
  degenerates to the max, which made ``BENCH_serve.json`` report
  ``p99 == max`` for a 40-sample run.
* :class:`Histogram` — a fixed-bucket duration histogram for metrics that
  must stay O(1) per observation and O(buckets) in memory no matter how
  many samples arrive (queue waits and service times on a server that
  never restarts). Snapshots estimate p50/p95/p99 by linear interpolation
  *within* the owning bucket, clamped to the observed min/max so a
  sparsely-filled histogram never invents values outside the data.

Buckets are latency-shaped by default: a 1-2-5 decade series from 10 µs
to 100 s (:data:`DEFAULT_LATENCY_BUCKETS`), with an implicit +inf
overflow bucket. Both pieces are deliberately dependency-free — the
registry (:mod:`repro.obs.registry`) embeds :class:`Histogram` as its
fourth instrument kind, and the span tooling reuses the percentile
helper for its self-time summaries.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "percentile_interpolated",
]


def _decade_series(lowest: float, highest: float) -> tuple[float, ...]:
    """The 1-2-5 bucket ladder covering [lowest, highest]."""
    bounds: list[float] = []
    magnitude = lowest
    while magnitude <= highest * 1.0000001:
        for step in (1.0, 2.0, 5.0):
            bound = magnitude * step
            if lowest <= bound <= highest * 1.0000001:
                bounds.append(bound)
        magnitude *= 10.0
    return tuple(bounds)


#: Upper bounds (seconds) of the default latency buckets: 10 µs to 100 s
#: in a 1-2-5 series; anything larger lands in the +inf overflow bucket.
DEFAULT_LATENCY_BUCKETS = _decade_series(1e-5, 100.0)


def percentile_interpolated(samples: Iterable[float], q: float) -> float:
    """Linearly-interpolated percentile of *samples* (q in [0, 100]).

    Uses the "linear" (inclusive) method: rank ``(n - 1) * q / 100``
    interpolated between its neighbouring order statistics — the method
    numpy's default ``percentile`` uses, so p99 of a small sample set
    lands *between* the top samples instead of collapsing onto the max.

    >>> percentile_interpolated([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    """
    items = sorted(samples)
    if not items:
        raise ConfigurationError("percentile of no samples")
    if any(math.isnan(item) for item in items):
        # NaN is unordered: sorted() leaves it wherever it started and
        # every comparison-based rank silently becomes garbage.
        raise ConfigurationError("percentile of NaN samples")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    rank = (len(items) - 1) * q / 100.0
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return items[lower]
    weight = rank - lower
    return items[lower] * (1.0 - weight) + items[upper] * weight


class Histogram:
    """A fixed-bucket duration histogram (seconds).

    Observations are O(1) (a bisect into the bound list); memory is
    O(buckets) forever. ``observe`` is thread-safe — the serve layer
    records queue waits from the scheduler thread while ``/metrics``
    scrapes from the event loop.
    """

    __slots__ = (
        "name",
        "bounds",
        "counts",
        "count",
        "total",
        "min",
        "max",
        "_lock",
    )

    def __init__(
        self, name: str, bounds: Sequence[float] | None = None
    ) -> None:
        self.name = name
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BUCKETS
        if not chosen or list(chosen) != sorted(chosen) or chosen[0] <= 0:
            raise ConfigurationError(
                f"histogram {name!r} bounds must be positive and ascending, "
                f"got {chosen!r}"
            )
        self.bounds = chosen
        #: counts[i] is the samples with value <= bounds[i]; the final
        #: slot is the +inf overflow bucket.
        self.counts = [0] * (len(chosen) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        if not math.isfinite(seconds):
            # NaN would fall through every bucket comparison into the
            # first bucket and poison total/mean forever; inf likewise.
            raise ConfigurationError(
                f"histogram {self.name} observed non-finite duration "
                f"{seconds}"
            )
        if seconds < 0:
            raise ConfigurationError(
                f"histogram {self.name} observed negative duration {seconds}"
            )
        index = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    def quantile(self, q: float) -> float:
        """Estimated q-th percentile, interpolated within its bucket.

        The estimate is exact to within one bucket width and clamped to
        the observed [min, max], so sparse histograms never report a
        latency outside the recorded data.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(
                f"percentile q must be in [0, 100], got {q}"
            )
        with self._lock:
            counts = list(self.counts)
            count = self.count
            low, high = self.min, self.max
        if count == 0:
            raise ConfigurationError(f"histogram {self.name} has no samples")
        target = q / 100.0 * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index] if index < len(self.bounds) else high
                )
                position = (target - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * position
                return min(max(estimate, low), high)
        return high

    def snapshot(self) -> dict[str, float]:
        """count/total/mean/min/max plus interpolated p50/p95/p99."""
        if self.count == 0:
            return {"count": 0, "total_s": 0.0}
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count,
            "min_s": self.min,
            "max_s": self.max,
            "p50_s": self.quantile(50),
            "p95_s": self.quantile(95),
            "p99_s": self.quantile(99),
        }

    def bucket_counts(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +inf bucket last."""
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        with self._lock:
            counts = list(self.counts)
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            bound = (
                self.bounds[index] if index < len(self.bounds) else math.inf
            )
            pairs.append((bound, cumulative))
        return pairs

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} total={self.total:.4f}s>"
