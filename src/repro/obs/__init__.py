"""repro.obs — instrumentation layer: metrics, events, spans, profiling.

The layer has five pieces:

* :mod:`repro.obs.registry` — aggregate metrics (counters, gauges, timers
  with percentile summaries, fixed-bucket latency histograms);
* :mod:`repro.obs.hist` — the histogram type and interpolated-percentile
  helper shared by timers, benches, and span analysis;
* :mod:`repro.obs.events` — structured event sinks (JSONL spans/events,
  stderr structured logging, a no-op default);
* :mod:`repro.obs.spans` — request-scoped tracing (:data:`TRACER`):
  trace/span ids propagated serve → scheduler → pool worker → engine,
  logged as JSONL with parent links for ``repro spans`` analysis;
* :mod:`repro.obs.profiler` — the experiment profiling harness behind
  ``python -m repro profile`` and ``BENCH_profile.json``.

Hot simulator code talks to one process-wide facade, :data:`OBS`::

    from repro.obs import OBS
    ...
    if OBS.enabled:
        OBS.count("cache.accesses", stats.accesses)
        OBS.emit("cache.simulate", config=config.describe(), misses=stats.misses)

``OBS`` starts *disabled*: ``OBS.enabled`` is a plain attribute, so the
disabled cost of a hook is one attribute load and a branch — bounded and
far below the 5% wall-clock budget. The facade is injectable for tests
and embedders: :func:`configure` swaps in a fresh registry/sink (or build
an independent :class:`Instrumentation` and pass it around explicitly).

Determinism contract: every field of every emitted event, and every
counter/gauge value, is a pure function of the simulated inputs (seed,
trace, configuration). Wall-clock time only ever enters timer samples
and profiler output, never the event stream.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import (
    EventSink,
    JsonlSink,
    MemorySink,
    MultiSink,
    NullSink,
    StderrSink,
)
from repro.obs.hist import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    percentile_interpolated,
)
from repro.obs.registry import Counter, Gauge, MetricsRegistry, Timer, percentile
from repro.obs.spans import (
    SPAN_SCHEMA,
    TRACER,
    SpanTracer,
    configure_tracing,
    disable_tracing,
)

__all__ = [
    "OBS",
    "Instrumentation",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "percentile",
    "percentile_interpolated",
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "StderrSink",
    "MultiSink",
    "TRACER",
    "SpanTracer",
    "SPAN_SCHEMA",
    "configure",
    "disable",
    "instrumented",
    "configure_tracing",
    "disable_tracing",
]


class Instrumentation:
    """A metrics registry plus an event sink behind one cheap gate.

    ``enabled`` gates everything; when False the facade's methods are
    never supposed to be called (call sites guard with ``if OBS.enabled``)
    but remain safe no-ops if they are.
    """

    __slots__ = ("registry", "sink", "enabled", "_seq")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        *,
        enabled: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink if sink is not None else NullSink()
        self.enabled = enabled
        self._seq = 0

    # -- metrics -----------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.gauge(name).set(value)

    def observe(self, name: str, seconds: float) -> None:
        if self.enabled:
            self.registry.timer(name).observe(seconds)

    def hist(self, name: str, seconds: float) -> None:
        """Record *seconds* into the fixed-bucket histogram *name*.

        Prefer this over :meth:`observe` for long-lived processes (the
        server): memory stays O(buckets) however many samples arrive.
        """
        if self.enabled:
            self.registry.histogram(name).observe(seconds)

    # -- events ------------------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> None:
        """Emit one structured event (if a real sink is attached)."""
        if not (self.enabled and self.sink.enabled):
            return
        self._seq += 1
        event: dict[str, object] = {"seq": self._seq, "kind": kind}
        event.update(fields)
        self.sink.emit(event)

    @contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:
        """A begin/end event pair around a code region.

        The pair carries no durations (events must stay deterministic);
        wall time for the same region belongs in a registry timer.
        """
        self.emit(f"{name}.begin", **fields)
        try:
            yield
        finally:
            self.emit(f"{name}.end", **fields)

    # -- lifecycle -----------------------------------------------------------------

    def activate(
        self,
        *,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
    ) -> None:
        """Enable with a fresh (or given) registry and sink; resets seq."""
        self.registry = registry if registry is not None else MetricsRegistry()
        if sink is not None:
            self.sink.close()
            self.sink = sink
        self.enabled = True
        self._seq = 0

    def deactivate(self) -> None:
        """Return to the zero-overhead default state (fresh registry)."""
        self.sink.close()
        self.sink = NullSink()
        self.registry = MetricsRegistry()
        self.enabled = False
        self._seq = 0

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Instrumentation {state} sink={type(self.sink).__name__}>"


#: The process-wide facade every simulator layer imports. Disabled by
#: default; the CLI (and the profiler) turn it on for one run at a time.
OBS = Instrumentation()


def configure(
    *,
    registry: MetricsRegistry | None = None,
    sink: EventSink | None = None,
) -> Instrumentation:
    """Enable :data:`OBS` (fresh registry unless one is given) and return it."""
    OBS.activate(registry=registry, sink=sink)
    return OBS


def disable() -> None:
    """Disable :data:`OBS` and detach its sink."""
    OBS.deactivate()


@contextmanager
def instrumented(
    *,
    registry: MetricsRegistry | None = None,
    sink: EventSink | None = None,
) -> Iterator[Instrumentation]:
    """Context manager: enable :data:`OBS` for a block, then restore.

    The previous registry/sink/enabled state is restored on exit, so
    nesting and test isolation both work.
    """
    prev_registry, prev_sink = OBS.registry, OBS.sink
    prev_enabled, prev_seq = OBS.enabled, OBS._seq
    OBS.activate(registry=registry, sink=sink)
    try:
        yield OBS
    finally:
        if OBS.sink is not prev_sink:
            OBS.sink.close()
        OBS.registry, OBS.sink = prev_registry, prev_sink
        OBS.enabled, OBS._seq = prev_enabled, prev_seq
