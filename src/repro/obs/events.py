"""Structured event-trace sinks: JSONL spans/events for simulation runs.

An *event* is one flat JSON object::

    {"seq": 17, "kind": "cache.evict", "block": 4096, "dirty": true, ...}

``seq`` is a logical sequence number assigned by the
:class:`~repro.obs.Instrumentation` facade, not wall-clock time — event
streams must be byte-identical across two runs with the same seed, so no
sink field may depend on timing. Kinds are dotted lowercase paths
(``cache.simulate``, ``bus.transfer``, ``mshr.stall``, ``core.run``,
``stage.begin``/``stage.end``); see docs/observability.md for the schema.

Sinks:

* :class:`NullSink` — the default; ``enabled`` is False so hot paths skip
  event construction entirely (near-zero disabled overhead).
* :class:`MemorySink` — collects events in a list (tests, ad-hoc use).
* :class:`JsonlSink` — one ``json.dumps(..., sort_keys=True)`` line per
  event (the ``--trace-events PATH`` CLI flag).
* :class:`StderrSink` — human-oriented ``key=value`` lines (``--verbose``).
* :class:`MultiSink` — fan-out to several sinks.
"""

from __future__ import annotations

import io
import json
import sys
from collections.abc import Sequence

__all__ = [
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "StderrSink",
    "MultiSink",
]


class EventSink:
    """Base class: receives fully-formed event dicts from the facade."""

    #: Hot paths check this before building the event dict at all.
    enabled: bool = True

    def emit(self, event: dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (files); idempotent."""

    def flush(self) -> None:
        """Push buffered output to its destination; idempotent.

        The execution layer flushes sinks before forking worker
        processes so children never inherit (and later replay) buffered
        parent bytes into a shared file descriptor.
        """


class NullSink(EventSink):
    """Swallows everything; the near-zero-overhead default."""

    enabled = False

    def emit(self, event: dict[str, object]) -> None:
        pass


class MemorySink(EventSink):
    """Keeps events in memory; ``events`` is the list itself."""

    def __init__(self) -> None:
        self.events: list[dict[str, object]] = []

    def emit(self, event: dict[str, object]) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[dict[str, object]]:
        return [e for e in self.events if e.get("kind") == kind]


class JsonlSink(EventSink):
    """Writes one sorted-keys JSON line per event to a path or stream."""

    def __init__(self, target: str | io.TextIOBase) -> None:
        if isinstance(target, str):
            self._file = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False

    def emit(self, event: dict[str, object]) -> None:
        self._file.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()


class StderrSink(EventSink):
    """Structured-logging sink: ``[repro] kind key=value ...`` per event."""

    def __init__(self, stream: io.TextIOBase | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: dict[str, object]) -> None:
        kind = event.get("kind", "?")
        fields = " ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in ("kind", "seq")
        )
        print(f"[repro] {event.get('seq', 0):>6} {kind} {fields}".rstrip(),
              file=self._stream)


class MultiSink(EventSink):
    """Fans each event out to every child sink."""

    def __init__(self, sinks: Sequence[EventSink]) -> None:
        self.sinks = tuple(sinks)

    def emit(self, event: dict[str, object]) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()
