"""Determinism suite: parallel and cached runs match serial bit-for-bit.

The execution layer's core promise (docs/performance.md) is that
``--jobs N`` and the result cache are pure performance knobs — every
SweepResult cell and every rendered report byte is identical to a serial
uncached run. These tests pin that promise on real experiments at small
reference budgets.
"""

from __future__ import annotations

import pytest

from repro.exec import EXEC, execution
from repro.experiments import table7, table8

MAX_REFS = 4_000


def _table7_fingerprint(result) -> tuple:
    sweep = result.sweep
    return (
        tuple(sweep.row_names),
        tuple(sweep.column_sizes),
        tuple(tuple(row) for row in sweep.cells),
        result.mean_ratio_64kb_up,
        table7.render(result),
    )


def _table8_fingerprint(result) -> tuple:
    return tuple(
        (
            tuple(grid.row_names),
            tuple(grid.column_sizes),
            tuple(tuple(row) for row in grid.cells),
        )
        for grid in (result.sweep, result.cache_traffic, result.mtc_traffic)
    ) + (table8.render(result),)


@pytest.fixture(scope="module")
def serial_table7():
    with execution(jobs=1):
        return _table7_fingerprint(table7.run(max_refs=MAX_REFS))


class TestParallelDeterminism:
    def test_table7_jobs4_matches_serial(self, serial_table7):
        with execution(jobs=4):
            parallel = _table7_fingerprint(table7.run(max_refs=MAX_REFS))
        assert parallel == serial_table7

    def test_table8_jobs4_matches_serial(self):
        with execution(jobs=1):
            serial = _table8_fingerprint(table8.run(max_refs=2_000))
        with execution(jobs=4):
            parallel = _table8_fingerprint(table8.run(max_refs=2_000))
        assert parallel == serial


class TestCacheDeterminism:
    def test_cold_and_warm_match_serial(self, serial_table7, tmp_path):
        with execution(jobs=1, cache_dir=tmp_path / "cache"):
            cold = _table7_fingerprint(table7.run(max_refs=MAX_REFS))
            stores = EXEC.cache.stores
            warm = _table7_fingerprint(table7.run(max_refs=MAX_REFS))
            hits = EXEC.cache.hits
        assert stores > 0
        assert hits == stores  # every row came back from disk
        assert cold == serial_table7
        assert warm == serial_table7

    def test_parallel_cold_cache_matches_serial(self, serial_table7, tmp_path):
        with execution(jobs=4, cache_dir=tmp_path / "cache"):
            combined = _table7_fingerprint(table7.run(max_refs=MAX_REFS))
        assert combined == serial_table7

    def test_different_max_refs_do_not_collide(self, tmp_path):
        with execution(jobs=1, cache_dir=tmp_path / "cache"):
            first = table7.run(max_refs=2_000)
            second = table7.run(max_refs=3_000)
        assert _table7_fingerprint(first) != _table7_fingerprint(second)
