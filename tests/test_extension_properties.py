"""Property-based tests (hypothesis) for the extension mechanisms."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mem.cache import Cache, CacheConfig
from repro.mem.flexible import FlexibleCache, FlexibleCacheConfig, RegionPolicy
from repro.mem.sector import SectorCache, SectorCacheConfig
from repro.mem.victim import VictimCache, VictimCacheConfig
from repro.trace.model import MemTrace


def traces(max_words: int = 256, max_len: int = 500):
    return st.builds(
        lambda addrs, writes: MemTrace(
            np.asarray(addrs, dtype=np.int64) * 4,
            np.asarray(writes[: len(addrs)] + [False] * len(addrs))[: len(addrs)],
        ),
        st.lists(st.integers(0, max_words - 1), min_size=1, max_size=max_len),
        st.lists(st.booleans(), min_size=0, max_size=max_len),
    )


@settings(max_examples=50, deadline=None)
@given(trace=traces(), size=st.sampled_from([128, 256, 512, 1024]))
def test_sector_cache_degenerates_to_plain_cache(trace, size):
    """subblock == sector == 32B must equal the ordinary cache exactly."""
    sector = SectorCache(
        SectorCacheConfig(size_bytes=size, sector_bytes=32, subblock_bytes=32)
    ).simulate(trace)
    plain = Cache(CacheConfig(size_bytes=size, block_bytes=32)).simulate(trace)
    assert sector.misses == plain.misses
    assert sector.fetch_bytes == plain.fetch_bytes
    assert (
        sector.writeback_bytes + sector.flush_writeback_bytes
        == plain.writeback_bytes + plain.flush_writeback_bytes
    )


@settings(max_examples=50, deadline=None)
@given(trace=traces(), size=st.sampled_from([256, 512, 1024]))
def test_smaller_subblocks_never_fetch_more(trace, size):
    """Halving the transfer unit can only reduce fetched bytes."""
    big = SectorCache(
        SectorCacheConfig(size_bytes=size, sector_bytes=32, subblock_bytes=32)
    ).simulate(trace)
    small = SectorCache(
        SectorCacheConfig(size_bytes=size, sector_bytes=32, subblock_bytes=4)
    ).simulate(trace)
    assert small.fetch_bytes <= big.fetch_bytes


@settings(max_examples=50, deadline=None)
@given(trace=traces(), size=st.sampled_from([128, 256, 512]))
def test_victim_cache_never_fetches_more_than_plain(trace, size):
    """The victim buffer only absorbs misses, never creates them."""
    plain = Cache(CacheConfig(size_bytes=size, block_bytes=32)).simulate(trace)
    victim = VictimCache(
        VictimCacheConfig(size_bytes=size, block_bytes=32, victim_entries=4)
    ).simulate(trace)
    assert victim.fetch_bytes <= plain.fetch_bytes


@settings(max_examples=50, deadline=None)
@given(trace=traces())
def test_victim_hits_are_conserved(trace):
    """accesses == hits + misses, and victim hits are a subset of hits."""
    cache = VictimCache(
        VictimCacheConfig(size_bytes=256, block_bytes=32, victim_entries=4)
    )
    stats = cache.simulate(trace)
    assert stats.hits + stats.misses == stats.accesses
    assert cache.victim_hits <= stats.hits


@settings(max_examples=50, deadline=None)
@given(trace=traces())
def test_flexible_word_transfers_fetch_at_most_requested(trace):
    """With 4-byte transfers everywhere, fetched bytes never exceed the
    distinct read words (write-validate never fetches)."""
    cache = FlexibleCache(
        FlexibleCacheConfig(size_bytes=1024, sector_bytes=16),
        [RegionPolicy(0, 1 << 40, 4)],
    )
    stats = cache.simulate(trace)
    reads = trace.addresses[~trace.is_write]
    assert stats.fetch_bytes <= max(1, reads.size) * 4


@settings(max_examples=50, deadline=None)
@given(trace=traces())
def test_flexible_traffic_conservation(trace):
    """Written-back words never exceed written words (coalescing only)."""
    cache = FlexibleCache(FlexibleCacheConfig(size_bytes=512))
    stats = cache.simulate(trace)
    written_words = int(trace.is_write.sum())
    written_back = (
        stats.writeback_bytes + stats.flush_writeback_bytes
    ) // 4
    assert written_back <= written_words


@settings(max_examples=50, deadline=None)
@given(trace=traces(), entries=st.sampled_from([1, 2, 8]))
def test_more_victim_entries_never_hurt(trace, entries):
    small = VictimCache(
        VictimCacheConfig(size_bytes=256, victim_entries=entries)
    ).simulate(trace)
    large = VictimCache(
        VictimCacheConfig(size_bytes=256, victim_entries=entries * 2)
    ).simulate(trace)
    assert large.fetch_bytes <= small.fetch_bytes
