"""Address-dtype pinning: traces must stay int64 end to end.

The paper-scale experiments shrink footprints, but nothing in the trace
layer may assume addresses fit 32 bits: synthetic generators are pinned
to ``int64`` and the simulation engines must agree bit-for-bit on traces
whose addresses live above 4 GiB (where an accidental int32 intermediate
would wrap).
"""

import numpy as np

from repro.mem import engines
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mtc import MinimalTrafficCache, MTCConfig
from repro.trace import synth
from repro.trace.model import MemTrace
from repro.trace.qpt import split_doublewords
from repro.workloads.registry import all_workloads

FOUR_GIB = 1 << 32


def stats_key(stats):
    return (
        stats.accesses,
        stats.read_hits,
        stats.write_hits,
        stats.fetch_bytes,
        stats.writeback_bytes,
        stats.writethrough_bytes,
        stats.flush_writeback_bytes,
    )


def test_synth_generators_emit_int64_addresses():
    high = 5 * FOUR_GIB  # a base no int32 pipeline survives
    rng = np.random.default_rng(1)
    pairs = {
        "sweep": synth.sweep(high, 64),
        "column_sweep": synth.column_sweep(high, rows=8, row_words=8),
        "interleaved": synth.interleaved_sweep(
            [high, high + FOUR_GIB], length_words=32
        ),
        "random_probes": synth.random_probes(rng, high, 64, 100),
        "zipf_probes": synth.zipf_probes(rng, high, 64, 100),
        "pointer_chain": synth.pointer_chain(rng, high, 32, 2, 100),
        "matmul": synth.tiled_matrix_multiply(
            high, high + FOUR_GIB, high + 2 * FOUR_GIB, n=8, tile=4
        ),
        "fft": synth.fft_butterflies(high, 16),
        "stencil": synth.stencil_sweeps(high, n=8),
        "quicksort": synth.quicksort_scans(high, 64),
        "fft2d": synth.fft2d_passes(high, rows=8, cols=8),
        "merge_sort": synth.merge_sort_passes(high, 32),
    }
    for name, (addresses, writes) in pairs.items():
        assert addresses.dtype == np.int64, name
        assert int(addresses.min()) >= high, name
        trace = synth.to_trace((addresses, writes), name=name)
        assert trace.addresses.dtype == np.int64, name


def test_workload_traces_are_int64():
    for workload in all_workloads("SPEC92"):
        trace = workload.generate(seed=0, max_refs=2000)
        assert trace.addresses.dtype == np.int64, workload.name
        assert trace.is_write.dtype == np.bool_, workload.name


def test_qpt_expansion_preserves_wide_addresses():
    trace = split_doublewords(
        [7 * FOUR_GIB, 7 * FOUR_GIB + 16], [False, True], [8, 4]
    )
    assert trace.addresses.dtype == np.int64
    assert int(trace.addresses.min()) >= 7 * FOUR_GIB
    # The 8-byte access expands to two adjacent words.
    assert len(trace) == 3


def test_engines_agree_above_four_gib():
    """Engines stay bit-identical when the footprint sits above 4 GiB."""
    rng = np.random.default_rng(17)
    n = 4000
    offsets = rng.integers(0, 2048, size=n) * 4
    addrs = (9 * FOUR_GIB) + offsets
    trace = MemTrace(addrs, rng.random(n) < 0.3, name="high-memory")
    assert int(trace.addresses.max()) > 8 * FOUR_GIB

    for assoc in (1, 4):
        config = CacheConfig(
            size_bytes=2048, block_bytes=32, associativity=assoc
        )
        scalar = Cache(config).simulate(trace, engine="scalar")
        fast = Cache(config).simulate(trace, engine="vector")
        assert stats_key(scalar) == stats_key(fast), assoc

    family = engines.direct_mapped_family(trace, [1024, 4096], block_bytes=32)
    for size in (1024, 4096):
        per_size = Cache(
            CacheConfig(size_bytes=size, block_bytes=32)
        ).simulate(trace, engine="scalar")
        assert stats_key(family[size]) == stats_key(per_size), size

    mtc_config = MTCConfig(size_bytes=1024)
    scalar = MinimalTrafficCache(mtc_config).simulate(trace, engine="scalar")
    fast = MinimalTrafficCache(
        MTCConfig(size_bytes=1024)
    ).simulate(trace, engine="vector")
    assert stats_key(scalar) == stats_key(fast)
