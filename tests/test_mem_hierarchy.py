"""Tests for the multi-level trace hierarchy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import TraceHierarchy
from repro.trace.model import MemTrace

from conftest import make_trace


def _l1_l2_configs():
    return [
        CacheConfig(size_bytes=256, block_bytes=32, name="L1"),
        CacheConfig(size_bytes=2048, block_bytes=64, associativity=4, name="L2"),
    ]


class TestConstruction:
    def test_needs_levels(self):
        with pytest.raises(ConfigurationError):
            TraceHierarchy([])


class TestSingleLevel:
    def test_matches_plain_cache(self, small_trace):
        config = CacheConfig(size_bytes=512, block_bytes=32)
        direct = Cache(config).simulate(small_trace)
        result = TraceHierarchy([config]).simulate(small_trace)
        assert result.level_stats[0].total_traffic_bytes == direct.total_traffic_bytes
        assert result.traffic_ratios[0] == pytest.approx(direct.traffic_ratio)


class TestTwoLevel:
    def test_l2_request_stream_is_l1_below_traffic(self, small_trace):
        result = TraceHierarchy(_l1_l2_configs()).simulate(small_trace)
        l1, l2 = result.level_stats
        # L2 sees exactly L1's below-traffic, decomposed into words.
        assert l2.accesses * 4 == l1.total_traffic_bytes

    def test_ratios_compose(self, small_trace):
        result = TraceHierarchy(_l1_l2_configs()).simulate(small_trace)
        r1, r2 = result.traffic_ratios
        assert result.cumulative_ratio == pytest.approx(r1 * r2)
        # and the cumulative ratio is D2 / processor requests
        expected = result.level_stats[1].total_traffic_bytes / small_trace.request_bytes
        assert result.cumulative_ratio == pytest.approx(expected)

    def test_l2_filters_l1_misses(self, small_trace):
        """A big L2 behind a small L1 absorbs most of its misses."""
        result = TraceHierarchy(_l1_l2_configs()).simulate(small_trace)
        r1, r2 = result.traffic_ratios
        assert r1 > 0.5   # small L1 passes much through
        assert r2 < r1    # L2 filters further

    def test_writeback_addresses_reach_l2(self):
        """Dirty L1 victims must appear as L2 writes at the victim address."""
        configs = [
            CacheConfig(size_bytes=64, block_bytes=32, name="L1"),  # 2 sets
            CacheConfig(size_bytes=4096, block_bytes=32, name="L2"),
        ]
        # Write block 0, then evict it via block 128 (same L1 set).
        trace = make_trace([0, 128], [True, False])
        result = TraceHierarchy(configs).simulate(trace)
        l2 = result.level_stats[1]
        assert l2.writes >= 8  # the 32-byte write-back as 8 word writes

    def test_empty_l2_stream_when_l1_absorbs_everything(self):
        configs = [
            CacheConfig(size_bytes=4096, block_bytes=32, name="L1"),
            CacheConfig(size_bytes=8192, block_bytes=32, name="L2"),
        ]
        trace = make_trace([0] * 100)  # one cold miss only
        result = TraceHierarchy(configs).simulate(trace)
        assert result.level_stats[1].accesses == 8  # one 32B fetch

    def test_flush_propagates(self):
        configs = _l1_l2_configs()
        trace = make_trace([0], [True])
        result = TraceHierarchy(configs).simulate(trace, flush=True)
        # L1 flush pushes the dirty block into L2's request stream.
        assert result.level_stats[1].writes >= 8


class TestThreeLevel:
    def test_monotone_filtering_for_looping_trace(self):
        configs = [
            CacheConfig(size_bytes=128, block_bytes=32, name="L1"),
            CacheConfig(size_bytes=1024, block_bytes=32, name="L2"),
            CacheConfig(size_bytes=8192, block_bytes=32, name="L3"),
        ]
        loop = np.tile(np.arange(512) * 4, 10)
        trace = MemTrace(loop, np.zeros(loop.size, dtype=bool))
        result = TraceHierarchy(configs).simulate(trace)
        below = result.traffic_below
        # 2 KB loop: misses L1, partially misses L2, fits under L3.
        assert below[0] >= below[1] >= below[2]
        assert len(result.traffic_ratios) == 3
