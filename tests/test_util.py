"""Tests for repro.util helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.util import (
    arithmetic_mean,
    clamp,
    format_size,
    format_table,
    fraction,
    geometric_mean,
    is_power_of_two,
    log2_int,
    parse_size,
    powers_of_two,
    require_power_of_two,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(512) == 512

    def test_kilobytes(self):
        assert parse_size("64KB") == 64 * 1024

    def test_megabytes(self):
        assert parse_size("2MB") == 2 * 1024 * 1024

    def test_short_suffixes(self):
        assert parse_size("1K") == 1024
        assert parse_size("1M") == 1024 * 1024
        assert parse_size("1G") == 1024 ** 3

    def test_bare_bytes_suffix(self):
        assert parse_size("32B") == 32

    def test_lower_case_and_whitespace(self):
        assert parse_size("  16kb ") == 16 * 1024

    def test_fractional_that_resolves_to_whole_bytes(self):
        assert parse_size("0.5KB") == 512

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size("0.3B")

    def test_negative_int_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(-1)

    def test_negative_string_rejected(self):
        # "-1KB" used to parse to -1024 because only the int path
        # checked the sign; a negative byte count is never a valid size.
        with pytest.raises(ConfigurationError):
            parse_size("-1KB")
        with pytest.raises(ConfigurationError):
            parse_size("-5")

    def test_bool_rejected(self):
        # bool is a subclass of int: parse_size(True) == 1 would hide a
        # caller bug (e.g. a misplaced flag) as a 1-byte cache.
        with pytest.raises(ConfigurationError):
            parse_size(True)
        with pytest.raises(ConfigurationError):
            parse_size(False)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size("lots")


class TestFormatSize:
    def test_round_trip_with_parse(self):
        for size in (32, 1024, 64 * 1024, 2 * 1024 * 1024):
            assert parse_size(format_size(size)) == size

    def test_non_multiple_stays_in_bytes(self):
        assert format_size(1536) == "1536B"

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            format_size(-4)


#: The paper's Table 7/8 cache sizes, 1KB..2MB.
PAPER_SIZES = [1024 * 2 ** k for k in range(12)]

#: Every accepted spelling for each multiplier.
SUFFIX_SPELLINGS = {
    1: ["", "B"],
    1024: ["KB", "K"],
    1024 ** 2: ["MB", "M"],
    1024 ** 3: ["GB", "G"],
}


class TestSizeRoundTrip:
    """Round-trip properties pinning the rstrip("KMGB") suffix splitting.

    ``parse_size`` separates number from suffix with ``rstrip("KMGB")``,
    which is easy to get subtly wrong (a trailing ``B`` is also a suffix
    *letter*, so ``"64KB"`` must split as ``64``/``KB`` and ``"32B"`` as
    ``32``/``B``, never ``""``/anything). These tests nail the behaviour
    over every paper cache size and every accepted suffix spelling.
    """

    @pytest.mark.parametrize("size", PAPER_SIZES)
    def test_format_parse_round_trip_paper_sizes(self, size):
        assert parse_size(format_size(size)) == size

    @pytest.mark.parametrize("multiplier,spellings", SUFFIX_SPELLINGS.items())
    def test_every_suffix_spelling(self, multiplier, spellings):
        for spelling in spellings:
            for text in (f"3{spelling}", f"3{spelling.lower()}"):
                assert parse_size(text) == 3 * multiplier, text

    @pytest.mark.parametrize("size", PAPER_SIZES)
    def test_paper_sizes_in_every_spelling(self, size):
        for multiplier, spellings in SUFFIX_SPELLINGS.items():
            if size % multiplier:
                continue
            value = size // multiplier
            for spelling in spellings:
                if multiplier == 1 and spelling == "":
                    continue  # bare string of digits tested separately
                assert parse_size(f"{value}{spelling}") == size
                assert parse_size(f"{value}{spelling}".lower()) == size

    def test_bare_digit_strings(self):
        for size in PAPER_SIZES:
            assert parse_size(str(size)) == size

    @given(st.integers(min_value=0, max_value=2 ** 40))
    def test_format_parse_round_trip_any_size(self, nbytes):
        assert parse_size(format_size(nbytes)) == nbytes

    @given(
        st.integers(min_value=1, max_value=4096),
        st.sampled_from(
            [s for spellings in SUFFIX_SPELLINGS.values() for s in spellings]
        ),
        st.booleans(),
    )
    def test_parse_any_spelling(self, value, suffix, lower):
        text = f"{value}{suffix}"
        if lower:
            text = text.lower()
        multiplier = next(
            m for m, spellings in SUFFIX_SPELLINGS.items() if suffix in spellings
        )
        assert parse_size(text) == value * multiplier

    def test_suffix_only_rejected(self):
        # rstrip eats the whole string: no number part remains.
        for text in ("KB", "B", "MGB", "kmgb"):
            with pytest.raises(ConfigurationError):
                parse_size(text)

    def test_shuffled_suffix_letters_rejected(self):
        # Valid letters in an invalid order must not parse.
        for text in ("1BK", "1KBB", "1BKB", "1MK"):
            with pytest.raises(ConfigurationError):
                parse_size(text)

    def test_format_prefers_largest_exact_suffix(self):
        assert format_size(1024) == "1KB"
        assert format_size(1024 ** 2) == "1MB"
        assert format_size(1024 ** 3) == "1GB"
        assert format_size(1024 + 512) == "1536B"


class TestPowersOfTwo:
    def test_predicate(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-8)

    def test_require_returns_value(self):
        assert require_power_of_two(64, "x") == 64

    def test_require_raises_with_name(self):
        with pytest.raises(ConfigurationError, match="blocks"):
            require_power_of_two(48, "blocks")

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(65536) == 16

    def test_range(self):
        assert powers_of_two(1024, 8192) == [1024, 2048, 4096, 8192]

    def test_single_element_range(self):
        assert powers_of_two(64, 64) == [64]

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError):
            powers_of_two(4096, 1024)


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            arithmetic_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([])

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestSmallHelpers:
    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10

    def test_clamp_empty_interval(self):
        with pytest.raises(ConfigurationError):
            clamp(1, 2, 0)

    def test_fraction_zero_denominator(self):
        assert fraction(5, 0) == 0.0
        assert fraction(1, 2) == 0.5

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")
        assert "----" in lines[1]
