"""Tests for trace statistics (reuse distances, locality measures)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.stats import (
    compute_stats,
    reuse_distances,
    reuse_fraction,
    sequential_fraction,
)

from conftest import make_trace


class TestReuseDistances:
    def test_no_reuse_gives_empty(self):
        trace = make_trace([0, 4, 8, 12])
        assert reuse_distances(trace).size == 0

    def test_immediate_reuse_distance_zero(self):
        trace = make_trace([0, 0])
        assert reuse_distances(trace).tolist() == [0]

    def test_counts_distinct_intervening_blocks(self):
        # A, B, C, B, A: A's reuse skips B and C (distance 2); B skips C (1).
        trace = make_trace([0, 4, 8, 4, 0])
        assert sorted(reuse_distances(trace).tolist()) == [1, 2]

    def test_duplicates_between_touches_counted_once(self):
        # A, B, B, A: only one distinct block between A's touches.
        trace = make_trace([0, 4, 4, 0])
        assert sorted(reuse_distances(trace).tolist()) == [0, 1]

    def test_block_granularity(self):
        # 0 and 4 share a 32-byte block: at block granularity this is reuse.
        trace = make_trace([0, 4])
        assert reuse_distances(trace, block_bytes=32).tolist() == [0]
        assert reuse_distances(trace, block_bytes=4).size == 0

    def test_invalid_block_size(self):
        with pytest.raises(TraceError):
            reuse_distances(make_trace([0]), block_bytes=0)

    def test_matches_naive_on_random_trace(self, rng):
        addresses = rng.integers(0, 64, size=400) * 4
        trace = make_trace(addresses)
        fast = sorted(reuse_distances(trace).tolist())
        # naive O(N^2) recomputation
        last = {}
        naive = []
        words = (addresses // 4).tolist()
        for i, w in enumerate(words):
            if w in last:
                naive.append(len(set(words[last[w] + 1 : i])))
            last[w] = i
        assert fast == sorted(naive)


class TestLocalityMeasures:
    def test_sequential_fraction_of_stream(self):
        trace = make_trace(np.arange(100) * 4)
        assert sequential_fraction(trace) == pytest.approx(1.0)

    def test_sequential_fraction_of_random(self, rng):
        trace = make_trace(rng.integers(0, 100_000, size=5000) * 4)
        assert sequential_fraction(trace) < 0.01

    def test_sequential_fraction_short_trace(self):
        assert sequential_fraction(make_trace([0])) == 0.0

    def test_reuse_fraction_bounds(self):
        assert reuse_fraction(make_trace([0, 4, 8])) == pytest.approx(0.0)
        assert reuse_fraction(make_trace([0, 0, 0, 0])) == pytest.approx(0.75)


class TestComputeStats:
    def test_basic_fields(self, streaming_trace):
        stats = compute_stats(streaming_trace)
        assert stats.references == len(streaming_trace)
        assert stats.reads + stats.writes == stats.references
        assert stats.footprint_bytes == streaming_trace.footprint_bytes
        assert stats.sequential_fraction > 0.9

    def test_write_fraction(self, streaming_trace):
        stats = compute_stats(streaming_trace)
        assert stats.write_fraction == pytest.approx(1 / 8, rel=0.01)

    def test_no_reuse_gives_infinite_median(self):
        stats = compute_stats(make_trace([0, 4, 8, 12]))
        assert stats.median_reuse_distance == float("inf")

    def test_sampling_path_for_long_traces(self, rng):
        addresses = rng.integers(0, 1024, size=50_000) * 4
        trace = make_trace(addresses)
        stats = compute_stats(trace, reuse_sample_limit=1_000)
        assert stats.references == 50_000
        assert np.isfinite(stats.median_reuse_distance)
