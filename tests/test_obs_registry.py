"""Tests for the metrics registry (counters, gauges, timers, snapshots)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    percentile,
)


class TestPercentile:
    def test_median_of_even_count(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_p0_is_min_p100_is_max(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 5.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("occupancy")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestTimer:
    def test_observe_and_summary(self):
        timer = Timer("t")
        for seconds in (0.1, 0.2, 0.3, 0.4):
            timer.observe(seconds)
        summary = timer.summary()
        assert summary["count"] == 4
        assert summary["total_s"] == pytest.approx(1.0)
        assert summary["mean_s"] == pytest.approx(0.25)
        assert summary["p50_s"] == pytest.approx(0.2)
        assert summary["max_s"] == pytest.approx(0.4)

    def test_empty_summary(self):
        assert Timer("t").summary() == {"count": 0, "total_s": 0.0}

    def test_context_manager_records_a_sample(self):
        timer = Timer("t")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.samples[0] >= 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Timer("t").observe(-0.1)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.timer("t") is registry.timer("t")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.timer("x")

    def test_snapshot_structure_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(4.0)
        registry.timer("t").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"] == {"a": 1, "b": 2}
        assert snapshot["gauges"] == {"g": 4.0}
        assert snapshot["timers"]["t"]["count"] == 1

    def test_counter_values_is_just_the_counters(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        registry.gauge("g").set(1.0)
        assert registry.counter_values() == {"n": 3}

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }
